"""repro — reproduction of "Is Approximation Universally Defensive Against
Adversarial Attacks in Deep Neural Networks?" (Siddique & Hoque, DATE 2022).

The package is organised as a stack of substrates, mirroring the paper's
experimental stack:

``repro.circuits``
    Bit-level, vectorised gate models of exact and approximate adders,
    compressors and array multipliers (the EvoApprox8b / defensive-
    approximation substrate).
``repro.multipliers``
    The approximate multiplier library: behavioural and circuit-backed 8-bit
    multipliers, LUT construction, error metrics and an energy model.
``repro.quantization``
    Fixed-point (8-bit) quantization schemes and calibration.
``repro.nn``
    A from-scratch NumPy deep-learning framework (layers, losses, optimizers,
    training, input gradients) used to train the accurate float models.
``repro.axnn``
    The approximate inference engine: quantized conv/dense layers whose
    products are routed through a multiplier look-up table (the TFApprox
    substitute).
``repro.attacks``
    Foolbox-style adversarial attacks (FGM/BIM/PGD, contrast reduction,
    repeated additive Gaussian/uniform noise) and distance metrics.
``repro.datasets``
    Deterministic synthetic MNIST-like and CIFAR-10-like datasets.
``repro.models``
    LeNet-5, AlexNet-style CNN and FFNN builders plus a train-and-cache zoo.
``repro.robustness``
    The robustness-evaluation harness (Algorithm 1), multiplier/epsilon
    sweeps, transferability and quantization analyses.
``repro.analysis``
    ASCII heat-map tables, digitised paper data and paper-vs-measured checks.
``repro.experiments``
    The declarative experiment API: frozen ``ExperimentSpec`` trees with
    content hashes, a content-addressed artifact store, and the ``Session``
    facade that runs specs with caching — the public entry point for
    running anything in the repo.
"""

from repro.version import __version__

__all__ = ["__version__"]
