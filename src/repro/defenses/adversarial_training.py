"""Adversarial training for the accurate float models.

Every mini-batch is augmented with adversarial examples generated on the
current model state (FGM or PGD, configurable), following the standard
adversarial-training recipe.  The hardened float model can then be quantized
and approximated with :func:`repro.axnn.build_axdnn` exactly like a normally
trained model, which is how the "does adversarial training survive
approximation?" follow-up question can be studied with this package.

The training step runs on the same runtime as :class:`repro.nn.trainer.
Trainer`: workspace-arena buffers, the fused ``value_and_gradient`` loss
path (one shifted-exp pass instead of three, one shared loss object instead
of per-call instances) and the fused flat optimizer step — all bit-identical
to the allocating loop they replace.  Attack crafting runs *outside* the
workspace scope, so the perturbation search never aliases training buffers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.fgm import FGMLinf
from repro.errors import ConfigurationError
from repro.nn.engine import (
    FlatParameterView,
    Workspace,
    ensure_training_engine,
    fused_training_step,
)
from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Optimizer
from repro.nn.trainer import TrainingHistory


class AdversarialTrainer:
    """Mini-batch adversarial training.

    Parameters
    ----------
    model:
        The float model to harden (built).
    attack:
        Attack used to craft the training-time adversarial examples
        (default: linf FGM, the fast single-step recipe).
    epsilon:
        Perturbation budget used during training.
    adversarial_ratio:
        Fraction of each batch replaced by adversarial examples (0.5 is the
        classic half-clean / half-adversarial mix).
    """

    def __init__(
        self,
        model: Sequential,
        attack: Optional[Attack] = None,
        epsilon: float = 0.1,
        adversarial_ratio: float = 0.5,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ) -> None:
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
        if not 0.0 <= adversarial_ratio <= 1.0:
            raise ConfigurationError(
                f"adversarial_ratio must be in [0, 1], got {adversarial_ratio}"
            )
        self.model = model
        self.attack = attack if attack is not None else FGMLinf()
        self.epsilon = epsilon
        self.adversarial_ratio = adversarial_ratio
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.optimizer = optimizer if optimizer is not None else SGD(0.01, momentum=0.9)
        self._rng = np.random.default_rng(seed)
        self._arena: Optional[Workspace] = None
        self._flat: Optional[FlatParameterView] = None

    def _augment_batch(
        self, images: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Replace a fraction of the batch with adversarial examples."""
        if self.epsilon == 0 or self.adversarial_ratio == 0:
            return images, labels
        count = int(round(images.shape[0] * self.adversarial_ratio))
        if count == 0:
            return images, labels
        indices = self._rng.choice(images.shape[0], size=count, replace=False)
        # the engine reseeds per crafting call, so stochastic attacks (PGD
        # starts, noise draws) need a fresh seed per minibatch — drawn from
        # the trainer's own RNG to keep the whole run deterministic.  The
        # hot loop pins workers=1: per-step sub-batches are too small to
        # amortise process sharding and the model changes every step.
        adversarial = self.attack.generate(
            self.model,
            images[indices],
            labels[indices],
            self.epsilon,
            workers=1,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )
        augmented = images.copy()
        augmented[indices] = adversarial
        return augmented, labels

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        shuffle: bool = True,
    ) -> TrainingHistory:
        """Adversarially train the model; returns the training history."""
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        history = TrainingHistory()
        n_samples = x.shape[0]
        self._arena, self._flat = ensure_training_engine(
            self.model, self._arena, self._flat
        )
        try:
            for _ in range(epochs):
                order = np.arange(n_samples)
                if shuffle:
                    self._rng.shuffle(order)
                losses = []
                correct = 0
                for start in range(0, n_samples, batch_size):
                    batch_idx = order[start : start + batch_size]
                    # crafting differentiates through the model outside the
                    # workspace scope: gradients it holds across attack
                    # steps must not alias reusable training buffers
                    xb, yb = self._augment_batch(x[batch_idx], y[batch_idx])
                    value, n_correct = fused_training_step(
                        self.model,
                        self.loss,
                        self.optimizer,
                        self._arena,
                        self._flat,
                        xb,
                        yb,
                    )
                    losses.append(value)
                    correct += n_correct
                history.train_loss.append(float(np.mean(losses)))
                history.train_accuracy.append(correct / n_samples)
        finally:
            Workspace.unbind(self.model)
        return history

    def robust_accuracy(
        self, x: np.ndarray, y: np.ndarray, epsilon: Optional[float] = None
    ) -> float:
        """Accuracy of the model on adversarial examples of the given budget."""
        budget = self.epsilon if epsilon is None else epsilon
        adversarial = self.attack.generate(self.model, x, y, budget)
        return accuracy(self.model.predict_classes(adversarial), np.asarray(y))
