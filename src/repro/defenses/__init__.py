"""Defence strategies for AxDNNs (extension beyond the paper).

The paper's conclusion — approximation is not a universal defence — raises
the obvious follow-up: what *does* help an AxDNN?  This package implements
three standard defences so that follow-up studies can be run with the same
harness:

* :class:`repro.defenses.adversarial_training.AdversarialTrainer` — augments
  every training batch with FGM/PGD examples (Goodfellow et al. / Madry et
  al. style);
* :func:`repro.defenses.ensemble.majority_vote` /
  :class:`repro.defenses.ensemble.AxEnsemble` — an ensemble of AxDNNs with
  *different* approximate multipliers, exploiting the fact that their error
  patterns are decorrelated;
* :class:`repro.defenses.preprocessing.FeatureSqueezingDefense` — input
  bit-depth reduction and smoothing (Xu et al., 2018), the classic
  preprocessing defence the quantization discussion in the paper alludes to.
"""

from repro.defenses.adversarial_training import AdversarialTrainer
from repro.defenses.ensemble import AxEnsemble, majority_vote
from repro.defenses.preprocessing import FeatureSqueezingDefense

__all__ = [
    "AdversarialTrainer",
    "AxEnsemble",
    "majority_vote",
    "FeatureSqueezingDefense",
]
