"""Input-preprocessing defences (feature squeezing).

Feature squeezing (Xu et al., NDSS 2018) reduces the attacker's input space
by re-quantizing pixel intensities to a few bits and applying local
smoothing.  The paper discusses quantization of the *inference path*; this
module provides the complementary input-side squeeze so both can be combined
with any victim model (float, quantized or approximate).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class FeatureSqueezingDefense:
    """Bit-depth reduction plus optional mean smoothing of input images."""

    def __init__(self, bit_depth: int = 4, smoothing_window: int = 0) -> None:
        if not 1 <= bit_depth <= 8:
            raise ConfigurationError(f"bit_depth must be in [1, 8], got {bit_depth}")
        if smoothing_window not in (0, 2, 3):
            raise ConfigurationError(
                f"smoothing_window must be 0 (off), 2 or 3, got {smoothing_window}"
            )
        self.bit_depth = bit_depth
        self.smoothing_window = smoothing_window

    # ----------------------------------------------------------- squeezing
    def squeeze(self, images: np.ndarray) -> np.ndarray:
        """Apply bit-depth reduction (and smoothing) to a batch of images."""
        images = np.asarray(images, dtype=np.float64)
        levels = (1 << self.bit_depth) - 1
        squeezed = np.round(images * levels) / levels
        if self.smoothing_window:
            squeezed = self._mean_filter(squeezed, self.smoothing_window)
        return np.clip(squeezed, 0.0, 1.0)

    @staticmethod
    def _mean_filter(images: np.ndarray, window: int) -> np.ndarray:
        """Simple local mean filter over the spatial dimensions (NHWC)."""
        padded = np.pad(
            images, ((0, 0), (0, window - 1), (0, window - 1), (0, 0)), mode="edge"
        )
        result = np.zeros_like(images)
        for di in range(window):
            for dj in range(window):
                result += padded[
                    :, di : di + images.shape[1], dj : dj + images.shape[2], :
                ]
        return result / (window * window)

    # ------------------------------------------------------------- victims
    def wrap(self, victim, name: Optional[str] = None) -> "SqueezedVictim":
        """Return a victim whose inputs are squeezed before inference."""
        return SqueezedVictim(victim, self, name=name)


class SqueezedVictim:
    """A victim model guarded by a :class:`FeatureSqueezingDefense`."""

    def __init__(self, victim, defense: FeatureSqueezingDefense, name: Optional[str] = None):
        self.victim = victim
        self.defense = defense
        self.name = name or f"squeezed_{getattr(victim, 'name', 'victim')}"

    def predict_classes(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        return self.victim.predict_classes(
            self.defense.squeeze(images), batch_size=batch_size
        )

    def accuracy_percent(self, images: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.int64)
        return float(np.mean(self.predict_classes(images) == labels)) * 100.0
