"""Ensembles of AxDNNs with diverse approximate multipliers.

The paper observes that approximation errors are input dependent ("masked or
unmasked").  An ensemble of AxDNNs built with *different* multipliers sees
decorrelated error patterns, so a majority vote can recover accuracy that an
individual AxDNN loses — a cheap, hardware-friendly defence candidate that
this module makes easy to evaluate with the existing robustness harness.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


def majority_vote(predictions: Sequence[np.ndarray]) -> np.ndarray:
    """Majority vote over per-model label vectors (ties break to the first model)."""
    if not predictions:
        raise ConfigurationError("majority_vote needs at least one prediction vector")
    stacked = np.stack([np.asarray(p, dtype=np.int64) for p in predictions])
    n_models, n_samples = stacked.shape
    voted = np.empty(n_samples, dtype=np.int64)
    for index in range(n_samples):
        votes = np.bincount(stacked[:, index])
        best = int(np.flatnonzero(votes == votes.max())[0])
        # ties resolve in favour of the first model's prediction when it is tied
        first = int(stacked[0, index])
        voted[index] = first if votes[first] == votes.max() else best
    return voted


class AxEnsemble:
    """An ensemble of victims (AxDNNs and/or quantized models) with majority voting."""

    def __init__(self, members: Sequence, name: str = "ax_ensemble") -> None:
        if not members:
            raise ConfigurationError("an ensemble needs at least one member")
        self.members: List = list(members)
        self.name = name

    def predict_classes(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Majority-voted class labels."""
        per_member = [
            member.predict_classes(images, batch_size=batch_size)
            for member in self.members
        ]
        return majority_vote(per_member)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Ensemble accuracy in [0, 1]."""
        labels = np.asarray(labels, dtype=np.int64)
        return float(np.mean(self.predict_classes(images) == labels))

    def accuracy_percent(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Ensemble accuracy in percent."""
        return self.accuracy(images, labels) * 100.0

    def agreement(self, images: np.ndarray) -> float:
        """Fraction of samples on which every member predicts the same label."""
        per_member = np.stack(
            [member.predict_classes(images) for member in self.members]
        )
        return float(np.mean(np.all(per_member == per_member[0], axis=0)))

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AxEnsemble(name={self.name!r}, members={len(self.members)})"
