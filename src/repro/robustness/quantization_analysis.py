"""Adversarial quantization analysis (the paper's Fig. 8 and Section IV.D).

Fig. 8 compares the non-quantized accurate LeNet-5 with its 8-bit quantized
counterpart under every attack of the study; Section IV.D then contrasts that
with the AxDNN grids to conclude that quantization helps robustness while
approximation undoes the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.axnn.engine import AxModel, build_quantized_accurate
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec
from repro.robustness.evaluator import AdversarialSuite


@dataclass
class QuantizationComparison:
    """Float vs quantized robustness curves for one attack."""

    attack_key: str
    epsilons: List[float]
    float_robustness: List[float]
    quantized_robustness: List[float]

    def quantization_gain(self) -> List[float]:
        """Per-budget robustness gain of quantization (positive = helps)."""
        return [
            quantized - flt
            for quantized, flt in zip(self.quantized_robustness, self.float_robustness)
        ]

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "attack": self.attack_key,
            "epsilons": list(self.epsilons),
            "float": list(self.float_robustness),
            "quantized": list(self.quantized_robustness),
        }


@dataclass
class QuantizationStudy:
    """Fig. 8: one :class:`QuantizationComparison` per attack."""

    comparisons: Dict[str, QuantizationComparison] = field(default_factory=dict)

    def add(self, comparison: QuantizationComparison) -> None:
        self.comparisons[comparison.attack_key] = comparison

    def mean_quantization_gain(self) -> float:
        """Average robustness gain of quantization over all attacks/budgets."""
        gains: List[float] = []
        for comparison in self.comparisons.values():
            gains.extend(comparison.quantization_gain())
        return float(np.mean(gains)) if gains else 0.0

    def to_dict(self) -> dict:
        return {key: cmp.to_dict() for key, cmp in self.comparisons.items()}


def compare_float_and_quantized(
    model: Sequential,
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    epsilons: Sequence[float],
    calibration_data: np.ndarray,
    quantized: AxModel = None,
    workers: WorkerSpec = "auto",
) -> QuantizationComparison:
    """Robustness of the float model vs its 8-bit quantized version for one attack."""
    suite = AdversarialSuite.generate(
        model, attack, images, labels, epsilons, workers=workers
    )
    if quantized is None:
        quantized = build_quantized_accurate(model, calibration_data)
    float_results = suite.evaluate(model, "float", workers=workers)
    quant_results = suite.evaluate(quantized, "quantized", workers=workers)
    return QuantizationComparison(
        attack_key=attack.key(),
        epsilons=list(suite.epsilons),
        float_robustness=[result.robustness_percent for result in float_results],
        quantized_robustness=[result.robustness_percent for result in quant_results],
    )


def quantization_study(
    model: Sequential,
    attacks: Sequence[Attack],
    images: np.ndarray,
    labels: np.ndarray,
    epsilons: Sequence[float],
    calibration_data: np.ndarray,
    workers: WorkerSpec = "auto",
) -> QuantizationStudy:
    """Run the full Fig. 8 comparison over a list of attacks."""
    study = QuantizationStudy()
    quantized = build_quantized_accurate(model, calibration_data)
    for attack in attacks:
        study.add(
            compare_float_and_quantized(
                model,
                attack,
                images,
                labels,
                epsilons,
                calibration_data,
                quantized,
                workers=workers,
            )
        )
    return study
