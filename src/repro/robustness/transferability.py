"""Transferability analysis (the paper's Table II).

Adversarial examples crafted on one accurate model are evaluated on AxDNNs
built from a *different* architecture (second attack scenario of Section
II-A: the adversary knows neither the inexactness nor the model structure).
Each table cell reports ``accuracy before attack / accuracy after attack`` of
the victim AxDNN, which is the paper's X/Y notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.engine import AttackEngine
from repro.axnn.engine import AxModel
from repro.errors import ConfigurationError
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec, call_with_workers


@dataclass(frozen=True)
class TransferabilityCell:
    """One source -> victim entry of the transferability table."""

    source: str
    victim: str
    dataset: str
    accuracy_before: float
    accuracy_after: float

    @property
    def accuracy_drop(self) -> float:
        """Accuracy lost due to the transferred attack, in percentage points."""
        return self.accuracy_before - self.accuracy_after

    def as_paper_cell(self) -> str:
        """The X/Y notation used by the paper's Table II."""
        return f"{self.accuracy_before:.0f}/{self.accuracy_after:.0f}"


@dataclass
class TransferabilityTable:
    """Collection of transferability cells, organised like Table II."""

    attack_key: str
    epsilon: float
    cells: List[TransferabilityCell]

    def cell(self, source: str, victim: str, dataset: str) -> TransferabilityCell:
        """Look up one cell."""
        for candidate in self.cells:
            if (
                candidate.source == source
                and candidate.victim == victim
                and candidate.dataset == dataset
            ):
                return candidate
        raise ConfigurationError(
            f"no transferability cell for source={source!r}, victim={victim!r}, "
            f"dataset={dataset!r}"
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "attack": self.attack_key,
            "epsilon": self.epsilon,
            "cells": [
                {
                    "source": cell.source,
                    "victim": cell.victim,
                    "dataset": cell.dataset,
                    "before": cell.accuracy_before,
                    "after": cell.accuracy_after,
                }
                for cell in self.cells
            ],
        }


def transferability_analysis(
    sources: Dict[str, Sequential],
    victims: Dict[str, AxModel],
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    dataset_name: str,
    workers: WorkerSpec = None,
) -> List[TransferabilityCell]:
    """Evaluate every (source, victim) pair on one dataset.

    ``sources`` maps source names (e.g. ``"AccL5"``) to accurate float models
    used for crafting the adversarial examples; ``victims`` maps victim names
    (e.g. ``"AxL5"``, ``"AxAlx"``) to AxDNNs evaluated on those examples.
    ``workers`` shards attack generation over processes and victim
    evaluation over threads; cells are invariant to it.
    """
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
    images = np.asarray(images, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    cells: List[TransferabilityCell] = []
    for source_name, source_model in sources.items():
        engine = AttackEngine(source_model, workers=workers)
        adversarial = engine.generate(attack, images, labels, epsilon)
        for victim_name, victim in victims.items():
            before = call_with_workers(
                victim.accuracy_percent, images, labels, workers=workers
            )
            after = call_with_workers(
                victim.accuracy_percent, adversarial, labels, workers=workers
            )
            cells.append(
                TransferabilityCell(
                    source=source_name,
                    victim=victim_name,
                    dataset=dataset_name,
                    accuracy_before=before,
                    accuracy_after=after,
                )
            )
    return cells


def build_transferability_table(
    attack: Attack,
    epsilon: float,
    per_dataset_cells: Sequence[List[TransferabilityCell]],
) -> TransferabilityTable:
    """Combine per-dataset cell lists into one table."""
    cells: List[TransferabilityCell] = []
    for dataset_cells in per_dataset_cells:
        cells.extend(dataset_cells)
    return TransferabilityTable(attack_key=attack.key(), epsilon=epsilon, cells=cells)
