"""Result records and JSON persistence for robustness experiments.

The on-disk JSON format is versioned: :meth:`ReproductionReport.save`
writes ``{"schema_version": 2, "experiments": {...}}``; :meth:`load`
accepts the current version, transparently upgrades legacy version-1
documents (a bare ``{experiment_id: record}`` mapping with no version
field), and raises an explicit error on unknown future versions so stored
results survive API changes instead of mis-parsing silently.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.robustness.sweep import RobustnessGrid

#: current version of the report JSON schema
REPORT_SCHEMA_VERSION = 2


@dataclass
class ExperimentRecord:
    """One experiment (e.g. one paper figure panel) and its result grids."""

    experiment_id: str
    description: str
    grids: List[RobustnessGrid] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def add_grid(self, grid: RobustnessGrid) -> None:
        self.grids.append(grid)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "grids": [grid.to_dict() for grid in self.grids],
            "extra": self.extra,
        }


@dataclass
class ReproductionReport:
    """A collection of experiment records that can be serialised to JSON."""

    records: Dict[str, ExperimentRecord] = field(default_factory=dict)

    def add(self, record: ExperimentRecord) -> None:
        self.records[record.experiment_id] = record

    def get(self, experiment_id: str) -> Optional[ExperimentRecord]:
        return self.records.get(experiment_id)

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "experiments": {
                key: record.to_dict() for key, record in self.records.items()
            },
        }

    def save(self, path: str) -> None:
        """Write the report as versioned JSON (creating parent directories)."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path: str) -> "ReproductionReport":
        """Load a report saved by :meth:`save` (any supported schema version).

        Version-1 documents (written before the schema was versioned) are a
        bare ``{experiment_id: record}`` mapping and are upgraded on read.
        Unknown future versions raise :class:`ConfigurationError` instead of
        guessing at the layout.
        """
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"report document must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version", 1)
        if version == 1:
            records = payload
        elif version == REPORT_SCHEMA_VERSION:
            records = payload.get("experiments", {})
        else:
            raise ConfigurationError(
                f"unknown report schema_version {version!r}; this build reads "
                f"versions 1..{REPORT_SCHEMA_VERSION}"
            )
        report = cls()
        for experiment_id, record_dict in records.items():
            record = ExperimentRecord(
                experiment_id=record_dict["experiment_id"],
                description=record_dict["description"],
                grids=[RobustnessGrid.from_dict(g) for g in record_dict["grids"]],
                extra=record_dict.get("extra", {}),
            )
            report.add(record)
        return report
