"""Per-layer approximation sensitivity analysis (extension beyond the paper).

The paper applies one approximate multiplier to every convolution of the
network.  A natural follow-up — and the kind of analysis an accelerator
designer needs — is *which layer's* approximation is responsible for the
accuracy and robustness loss.  This module approximates one compute layer at
a time (all other layers keep the exact multiplier) and reports, per layer,
the clean accuracy and the robustness under a chosen attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.axnn.engine import build_axdnn
from repro.errors import ConfigurationError
from repro.multipliers.library import ACCURATE_MULTIPLIER
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec


@dataclass(frozen=True)
class LayerSensitivity:
    """Impact of approximating a single compute layer."""

    layer_name: str
    layer_kind: str
    clean_accuracy_percent: float
    attacked_accuracy_percent: Optional[float]

    @property
    def robustness_gap_percent(self) -> Optional[float]:
        """Clean minus attacked accuracy (None when no attack was evaluated)."""
        if self.attacked_accuracy_percent is None:
            return None
        return self.clean_accuracy_percent - self.attacked_accuracy_percent


def compute_layer_names(model: Sequential) -> List[str]:
    """Names of the compute (Conv2D / Dense) layers of a float model."""
    return [
        layer.name
        for layer in model.layers
        if isinstance(layer, (Conv2D, Dense))
    ]


def layer_sensitivity_analysis(
    model: Sequential,
    multiplier: str,
    calibration_data: np.ndarray,
    images: np.ndarray,
    labels: np.ndarray,
    attack: Optional[Attack] = None,
    epsilon: float = 0.1,
    layers: Optional[Sequence[str]] = None,
    bits: int = 8,
    workers: WorkerSpec = "auto",
) -> List[LayerSensitivity]:
    """Approximate one compute layer at a time and measure the impact.

    Parameters
    ----------
    model:
        Trained accurate float model.
    multiplier:
        Multiplier (name or paper label) applied to the layer under test;
        every other compute layer keeps the accurate multiplier.
    calibration_data:
        Activation-calibration batch.
    images, labels:
        Evaluation split.
    attack, epsilon:
        Optional attack evaluated on adversarial examples crafted on the
        float model (per the paper's threat model).  When omitted only clean
        accuracy is reported.
    layers:
        Subset of compute-layer names to analyse (default: all of them).
    workers:
        Worker count for the per-victim accuracy evaluations (threads) and
        for adversarial-example generation (processes); ``"auto"`` = one
        per core.  Results are invariant to it.
    """
    all_layers = compute_layer_names(model)
    if not all_layers:
        raise ConfigurationError("the model has no compute layers to approximate")
    selected = list(layers) if layers is not None else all_layers
    unknown = sorted(set(selected) - set(all_layers))
    if unknown:
        raise ConfigurationError(
            f"unknown compute layers {unknown}; available: {all_layers}"
        )

    adversarial = None
    if attack is not None:
        adversarial = attack.generate(model, images, labels, epsilon, workers=workers)

    kind_by_name = {
        layer.name: type(layer).__name__
        for layer in model.layers
        if isinstance(layer, (Conv2D, Dense))
    }
    results: List[LayerSensitivity] = []
    for layer_name in selected:
        victim = build_axdnn(
            model,
            ACCURATE_MULTIPLIER,
            calibration_data,
            bits=bits,
            per_layer_multipliers={layer_name: multiplier},
            name=f"ax_{model.name}_only_{layer_name}",
        )
        clean = victim.accuracy_percent(images, labels, workers=workers)
        attacked = (
            victim.accuracy_percent(adversarial, labels, workers=workers)
            if adversarial is not None
            else None
        )
        results.append(
            LayerSensitivity(
                layer_name=layer_name,
                layer_kind=kind_by_name[layer_name],
                clean_accuracy_percent=clean,
                attacked_accuracy_percent=attacked,
            )
        )
    return results


def most_sensitive_layer(results: Sequence[LayerSensitivity]) -> LayerSensitivity:
    """The layer whose approximation costs the most clean accuracy."""
    if not results:
        raise ConfigurationError("layer sensitivity results are empty")
    return min(results, key=lambda result: result.clean_accuracy_percent)
