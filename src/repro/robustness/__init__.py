"""Robustness-evaluation harness (Algorithm 1, sweeps, transferability, Fig. 8)."""

from repro.robustness.evaluator import (
    AdversarialSuite,
    RobustnessResult,
    accuracy_loss,
    evaluate_robustness,
)
from repro.robustness.layer_sensitivity import (
    LayerSensitivity,
    compute_layer_names,
    layer_sensitivity_analysis,
    most_sensitive_layer,
)
from repro.robustness.quantization_analysis import (
    QuantizationComparison,
    QuantizationStudy,
    compare_float_and_quantized,
    quantization_study,
)
from repro.robustness.report import ExperimentRecord, ReproductionReport
from repro.robustness.sweep import (
    RobustnessGrid,
    attack_panel,
    build_victims,
    grid_from_suite,
    multiplier_sweep,
)
from repro.robustness.transferability import (
    TransferabilityCell,
    TransferabilityTable,
    build_transferability_table,
    transferability_analysis,
)

__all__ = [
    "AdversarialSuite",
    "RobustnessResult",
    "evaluate_robustness",
    "accuracy_loss",
    "RobustnessGrid",
    "build_victims",
    "grid_from_suite",
    "multiplier_sweep",
    "attack_panel",
    "TransferabilityCell",
    "TransferabilityTable",
    "transferability_analysis",
    "build_transferability_table",
    "QuantizationComparison",
    "QuantizationStudy",
    "compare_float_and_quantized",
    "quantization_study",
    "ExperimentRecord",
    "ReproductionReport",
    "LayerSensitivity",
    "layer_sensitivity_analysis",
    "compute_layer_names",
    "most_sensitive_layer",
]
