"""Algorithm 1 of the paper: percentage-robustness evaluation.

The evaluation pipeline is exactly the paper's:

1. adversarial examples are generated on the *source* model (the accurate
   float DNN with accurate multipliers) for every perturbation budget;
2. each victim model (the 8-bit quantized accurate DNN or an AxDNN) is
   evaluated on those adversarial examples;
3. the percentage robustness for a budget is the share of samples the victim
   still classifies correctly, ``(1 - adv / |D|) * 100`` (Algorithm 1,
   line 15).

Adversarial example generation is the expensive part and is independent of
the victim, so :class:`AdversarialSuite` materialises the examples once per
(attack, epsilon) and every victim re-uses them.  Generation runs through
:class:`repro.attacks.engine.AttackEngine`: the whole budget sweep is
crafted in one amortised pass (epsilon-independent gradients and noise
draws are shared across budgets) and the batch is sharded over worker
processes when ``workers > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.engine import AttackEngine
from repro.errors import ConfigurationError
from repro.nn.metrics import accuracy_percent
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec, call_with_workers


@dataclass(frozen=True)
class RobustnessResult:
    """Robustness of one victim under one attack at one perturbation budget."""

    victim: str
    attack: str
    epsilon: float
    robustness_percent: float
    n_samples: int


@dataclass
class AdversarialSuite:
    """Adversarial examples for one attack over a sweep of budgets."""

    attack_key: str
    epsilons: List[float]
    images: np.ndarray
    labels: np.ndarray
    adversarial: Dict[float, np.ndarray] = field(default_factory=dict)

    @classmethod
    def generate(
        cls,
        source_model: Sequential,
        attack: Attack,
        images: np.ndarray,
        labels: np.ndarray,
        epsilons: Sequence[float],
        workers: WorkerSpec = None,
        engine: Optional[AttackEngine] = None,
        seed: int = None,
    ) -> "AdversarialSuite":
        """Craft adversarial examples on the source model for every budget.

        The full sweep runs in one :meth:`AttackEngine.generate_sweep` pass:
        bit-identical to one ``generate`` call per budget, but shared work
        (single-step gradients, noise draws) is paid once, and the batch is
        sharded over worker processes when ``workers > 1``.  Pass a
        pre-configured ``engine`` to override backend or shard size.
        ``seed`` overrides the attack's own seed for this crafting pass —
        the declarative experiment API threads its experiment seed through
        here so identical specs always produce identical cached artifacts.
        """
        if len(epsilons) == 0:
            raise ConfigurationError("epsilons must contain at least one budget")
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        suite = cls(
            attack_key=attack.key(),
            epsilons=[float(eps) for eps in epsilons],
            images=images,
            labels=labels,
        )
        if engine is None:
            engine = AttackEngine(source_model, workers=workers)
        suite.adversarial.update(
            engine.generate_sweep(attack, images, labels, suite.epsilons, seed=seed)
        )
        return suite

    def evaluate(
        self, victim, victim_name: str, workers: WorkerSpec = None
    ) -> List[RobustnessResult]:
        """Percentage robustness of a victim model for every budget.

        ``victim`` is any object exposing ``predict_classes(images)`` — both
        :class:`repro.nn.Sequential` (float models) and
        :class:`repro.axnn.AxModel` qualify.  ``workers`` shards the victim's
        prediction batches across threads when the victim supports it
        (results are invariant to the worker count); victims without a
        ``workers`` parameter are called unchanged.
        """
        results = []
        for epsilon in self.epsilons:
            adversarial = self.adversarial[epsilon]
            predictions = call_with_workers(
                victim.predict_classes, adversarial, workers=workers
            )
            robustness = accuracy_percent(predictions, self.labels)
            results.append(
                RobustnessResult(
                    victim=victim_name,
                    attack=self.attack_key,
                    epsilon=epsilon,
                    robustness_percent=robustness,
                    n_samples=int(self.labels.shape[0]),
                )
            )
        return results


    def evaluate_panel(
        self, panel, workers: WorkerSpec = None
    ) -> Dict[str, List[RobustnessResult]]:
        """Percentage robustness of a fused victim panel for every budget.

        ``panel`` is a :class:`repro.axnn.panel.VictimPanel` (or anything
        whose ``predict_classes`` returns a dict of per-victim labels).
        One fused pass per budget replaces one full pass per victim — the
        shared im2col/quantization work of each batch is paid once for the
        whole panel — and the per-victim results are bit-identical to
        calling :meth:`evaluate` on each victim separately.
        """
        results: Dict[str, List[RobustnessResult]] = {}
        for epsilon in self.epsilons:
            adversarial = self.adversarial[epsilon]
            predictions = call_with_workers(
                panel.predict_classes, adversarial, workers=workers
            )
            for name, predicted in predictions.items():
                results.setdefault(name, []).append(
                    RobustnessResult(
                        victim=name,
                        attack=self.attack_key,
                        epsilon=epsilon,
                        robustness_percent=accuracy_percent(predicted, self.labels),
                        n_samples=int(self.labels.shape[0]),
                    )
                )
        return results


def evaluate_robustness(
    source_model: Sequential,
    victim,
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    epsilons: Sequence[float],
    victim_name: str = "victim",
    workers: WorkerSpec = None,
) -> List[RobustnessResult]:
    """One-shot convenience wrapper: generate the suite and evaluate one victim."""
    suite = AdversarialSuite.generate(
        source_model, attack, images, labels, epsilons, workers=workers
    )
    return suite.evaluate(victim, victim_name, workers=workers)


def accuracy_loss(results: Sequence[RobustnessResult]) -> Dict[float, float]:
    """Accuracy loss (vs the eps=0 row) per budget, as reported in the paper."""
    by_eps = {result.epsilon: result.robustness_percent for result in results}
    if 0.0 not in by_eps:
        raise ConfigurationError("accuracy_loss requires an epsilon = 0 baseline row")
    baseline = by_eps[0.0]
    return {eps: baseline - value for eps, value in sorted(by_eps.items())}
