"""Multiplier x perturbation-budget robustness sweeps (the paper's heat-maps).

Each of the paper's Figures 4-7 is a grid with perturbation budgets on the
rows and multipliers (M1..M9 or the AlexNet set) on the columns, holding the
percentage robustness of the corresponding AxDNN.  :func:`multiplier_sweep`
produces exactly that grid for one attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.axnn.engine import AxModel, build_axdnn
from repro.errors import ConfigurationError
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec
from repro.robustness.evaluator import AdversarialSuite


@dataclass
class RobustnessGrid:
    """A (budgets x victims) grid of percentage robustness values."""

    attack_key: str
    dataset_name: str
    epsilons: List[float]
    victim_labels: List[str]
    values: np.ndarray  # shape (len(epsilons), len(victim_labels))
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = (len(self.epsilons), len(self.victim_labels))
        if self.values.shape != expected:
            raise ConfigurationError(
                f"grid values have shape {self.values.shape}, expected {expected}"
            )

    # -------------------------------------------------------------- access
    def column(self, victim_label: str) -> np.ndarray:
        """Robustness of one victim across all budgets."""
        index = self.victim_labels.index(victim_label)
        return self.values[:, index]

    def row(self, epsilon: float) -> np.ndarray:
        """Robustness of every victim at one budget."""
        index = self.epsilons.index(epsilon)
        return self.values[index, :]

    def baseline_row(self) -> np.ndarray:
        """The eps = 0 row (clean accuracies)."""
        return self.row(0.0) if 0.0 in self.epsilons else self.values[0, :]

    def accuracy_loss(self) -> np.ndarray:
        """Accuracy loss relative to the eps = 0 row, same shape as values."""
        return self.baseline_row()[None, :] - self.values

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "attack": self.attack_key,
            "dataset": self.dataset_name,
            "epsilons": list(self.epsilons),
            "victims": list(self.victim_labels),
            "values": self.values.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RobustnessGrid":
        """Inverse of :meth:`to_dict`."""
        return cls(
            attack_key=payload["attack"],
            dataset_name=payload["dataset"],
            epsilons=[float(eps) for eps in payload["epsilons"]],
            victim_labels=list(payload["victims"]),
            values=np.asarray(payload["values"], dtype=np.float64),
            metadata=dict(payload.get("metadata", {})),
        )


def build_victims(
    model: Sequential,
    multiplier_labels: Sequence[str],
    calibration_data: np.ndarray,
    bits: int = 8,
    convolution_only: bool = False,
    kernel: str = "auto",
) -> Dict[str, AxModel]:
    """Build one AxDNN per multiplier label (M1..M9 / A1..A8 / library names)."""
    victims: Dict[str, AxModel] = {}
    for label in multiplier_labels:
        victims[label] = build_axdnn(
            model,
            label,
            calibration_data,
            bits=bits,
            convolution_only=convolution_only,
            name=f"ax_{model.name}_{label}",
            kernel=kernel,
        )
    return victims


def _panel_or_none(victims: Dict[str, "AxModel"], fused: Optional[bool]):
    """Build a fused :class:`VictimPanel` when requested/possible.

    ``fused=None`` (auto) fuses whenever there are at least two
    lockstep-compatible AxModels — exactly the panels the figures build
    from one source model.  ``fused=True`` requires compatibility (raising
    otherwise); ``fused=False`` always evaluates per victim.
    """
    if fused is False or (fused is None and len(victims) < 2):
        return None
    from repro.axnn.panel import VictimPanel

    models = list(victims.values())
    eligible = all(isinstance(model, AxModel) for model in models) and (
        VictimPanel.compatible(models)
    )
    if not eligible:
        if fused:
            raise ConfigurationError(
                "fused=True requires lockstep-compatible AxModel victims"
            )
        return None
    return VictimPanel(victims)


def grid_from_suite(
    suite: AdversarialSuite,
    victims: Dict[str, "AxModel"],
    dataset_name: str = "dataset",
    source_name: str = "source",
    workers: WorkerSpec = "auto",
    fused: Optional[bool] = None,
) -> RobustnessGrid:
    """Robustness grid of every victim on a pre-generated adversarial suite.

    This is the evaluation half of :func:`multiplier_sweep`: the expensive
    crafting step is already done (or was served from the artifact store —
    see :mod:`repro.experiments`), so only victim inference is paid here.
    Victim evaluation shards prediction batches across worker *threads*; the
    grid is bit-identical for every worker count.

    ``fused`` controls the multi-victim fusion (see :func:`_panel_or_none`):
    by default panels of two or more compatible AxDNNs are evaluated in one
    fused pass per budget, sharing each batch's im2col and quantization
    across victims.  The fused grid is bit-identical to per-victim
    evaluation — fusion only removes recomputation of identical values.
    """
    if not victims:
        raise ConfigurationError("at least one victim AxDNN is required")
    victim_labels = list(victims)
    values = np.zeros((len(suite.epsilons), len(victim_labels)), dtype=np.float64)
    panel = _panel_or_none(victims, fused)
    if panel is not None:
        panel_results = suite.evaluate_panel(panel, workers=workers)
        for column, label in enumerate(victim_labels):
            for row, result in enumerate(panel_results[label]):
                values[row, column] = result.robustness_percent
    else:
        for column, label in enumerate(victim_labels):
            results = suite.evaluate(victims[label], label, workers=workers)
            for row, result in enumerate(results):
                values[row, column] = result.robustness_percent
    return RobustnessGrid(
        attack_key=suite.attack_key,
        dataset_name=dataset_name,
        epsilons=list(suite.epsilons),
        victim_labels=victim_labels,
        values=values,
        metadata={
            "source_model": source_name,
            "n_samples": str(suite.labels.shape[0]),
        },
    )


def multiplier_sweep(
    source_model: Sequential,
    victims: Dict[str, AxModel],
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    epsilons: Sequence[float],
    dataset_name: str = "dataset",
    workers: WorkerSpec = "auto",
    seed: int = None,
    fused: Optional[bool] = None,
) -> RobustnessGrid:
    """Robustness grid of every victim under one attack over a budget sweep.

    Adversarial examples are generated once on the source model and shared by
    all victims, exactly as in Algorithm 1 (the adversary never sees the
    approximate inference engine).  Generation runs the whole budget sweep
    in one amortised engine pass, sharded over worker *processes*; victim
    evaluation shards prediction batches across worker *threads*.  Both use
    ``workers`` (default one per core) and the grid is bit-identical for
    every worker count.  ``seed`` overrides the attack's own crafting seed
    (the hook the declarative experiment API uses for artifact determinism).
    """
    if not victims:
        raise ConfigurationError("at least one victim AxDNN is required")
    suite = AdversarialSuite.generate(
        source_model, attack, images, labels, epsilons, workers=workers, seed=seed
    )
    return grid_from_suite(
        suite,
        victims,
        dataset_name=dataset_name,
        source_name=source_model.name,
        workers=workers,
        fused=fused,
    )


def attack_panel(
    source_model: Sequential,
    victims: Dict[str, AxModel],
    attacks: Sequence[Attack],
    images: np.ndarray,
    labels: np.ndarray,
    epsilons: Sequence[float],
    dataset_name: str = "dataset",
    workers: WorkerSpec = "auto",
) -> List[RobustnessGrid]:
    """One grid per attack — a full figure panel (e.g. Fig. 4a-d)."""
    return [
        multiplier_sweep(
            source_model,
            victims,
            attack,
            images,
            labels,
            epsilons,
            dataset_name,
            workers=workers,
        )
        for attack in attacks
    ]
