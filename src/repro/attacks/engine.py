"""Unified batched attack runtime (epsilon-sweep amortization + process sharding).

The paper's pipeline (Algorithm 1) crafts every adversarial example on the
source model before any victim is evaluated, so attack generation is the
wall-clock bottleneck of the figure sweeps.  :class:`AttackEngine` owns the
whole crafting loop — input validation, RNG seeding, the epsilon sweep,
final clipping — and drives the declarative hooks attacks describe
themselves with (see :class:`repro.attacks.base.Attack`).  Two levers make
it fast:

**Sweep amortization.**  :meth:`AttackEngine.generate_sweep` crafts every
budget of a sweep in one pass.  Epsilon-independent work runs once and is
shared: single-gradient attacks (the FGM family) evaluate the input
gradient exactly once and scale it per budget; BIM's first step (taken at
the clean images for every budget) shares one gradient; decision noise
attacks draw each repeat's unit-scale noise once for all budgets; contrast
reduction computes its perturbation direction once.  Iterative trajectories
that diverge per budget (PGD after the random start, BIM from step two,
DeepFool) still run per budget — exactly the work a per-epsilon loop would
do, never more.

**Process sharding.**  Crafting is gradient-bound and GIL-heavy — worker
threads neither speed it up nor share one model's backward caches safely —
so the engine shards the *batch* across worker processes
(:class:`repro.nn.runtime.ProcessShardPool`, started with ``spawn``).
Models travel as :func:`repro.nn.serialization.dumps_model` snapshots.

Reproducibility contract: results are bit-identical (a) for every worker
count, (b) between the serial and process backends, and (c) between
per-budget :meth:`generate` calls and one :meth:`generate_sweep`.  This
holds because the shard decomposition depends only on ``(n_samples,
shard_size)`` — never on ``workers`` — and each shard's RNG is spawned from
a root :class:`numpy.random.SeedSequence` keyed by the attack's seed, so
shard *i* sees the same stream no matter which process (or how many) runs
it, and hooks consume the stream only in epsilon-independent positions.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import numpy as np

from repro.attacks.base import (
    PIXEL_MAX,
    PIXEL_MIN,
    Attack,
    AttackContext,
    AttackState,
)
from repro.errors import ConfigurationError
from repro.nn.model import Sequential
from repro.nn.runtime import (
    ProcessShardPool,
    WorkerSpec,
    batch_slices,
    resolve_workers,
    validate_batch_size,
)
from repro.nn.serialization import dumps_model, loads_model

#: samples per shard — fixed independently of the worker count, which is
#: what keeps results bit-identical for every ``workers`` value
DEFAULT_SHARD_SIZE = 32

#: environment variable selecting the sharding backend (CI matrix hook)
BACKEND_ENV_VAR = "REPRO_ATTACK_BACKEND"

SERIAL = "serial"
PROCESS = "process"
_BACKENDS = (SERIAL, PROCESS)


def resolve_backend(backend: str = None) -> str:
    """Resolve a sharding backend name (``None`` reads :data:`BACKEND_ENV_VAR`).

    ``"process"`` (the default) runs multi-shard crafting on a spawn-based
    process pool when ``workers > 1``; ``"serial"`` forces the in-process
    loop regardless of the worker count.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or PROCESS
    if not isinstance(backend, str) or backend.strip().lower() not in _BACKENDS:
        raise ConfigurationError(
            f"attack backend must be one of {_BACKENDS}, got {backend!r}"
        )
    return backend.strip().lower()


def _sweep_shard(
    attack: Attack,
    model: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    epsilons: Sequence[float],
    seed_seq: np.random.SeedSequence,
) -> Dict[float, np.ndarray]:
    """Craft every budget for one shard of the batch (the engine's core loop)."""
    ctx = AttackContext(
        model=model,
        images=images,
        labels=labels,
        rng=np.random.default_rng(seed_seq),
        loss=attack._loss,
    )
    out: Dict[float, np.ndarray] = {}
    positive: List[float] = []
    for epsilon in epsilons:
        if epsilon == 0.0:
            out[0.0] = images.copy()
        elif epsilon not in positive:
            positive.append(epsilon)
    if positive:
        prep = attack.prepare(ctx)
        states = [attack.init(ctx, prep, epsilon) for epsilon in positive]
        for step in range(attack.num_steps()):
            active = [state for state in states if not state.done]
            if not active:
                break
            payload = attack.step_payload(ctx, prep, step)
            for state in active:
                attack.perturb(ctx, state, prep, payload)
                state.step += 1
        for state in states:
            out[state.epsilon] = np.clip(state.adversarial, PIXEL_MIN, PIXEL_MAX)
    return out


def _craft_shard_task(task: dict) -> Dict[float, np.ndarray]:
    """Worker-process entry point (module-level so ``spawn`` can import it)."""
    model = task["model"]
    if isinstance(model, bytes):
        model = loads_model(model)
    return _sweep_shard(
        task["attack"],
        model,
        task["images"],
        task["labels"],
        task["epsilons"],
        task["seed"],
    )


class AttackEngine:
    """Batched attack runtime bound to one source model.

    Parameters
    ----------
    model:
        The source model adversarial examples are crafted on (the accurate
        float DNN, per the paper's threat model).
    workers:
        Worker processes for batch sharding: a positive int, ``"auto"``
        (one per core) or ``None`` (``REPRO_DEFAULT_WORKERS``, else 1).
        Results are bit-identical for every value.
    backend:
        ``"process"`` (default, or ``REPRO_ATTACK_BACKEND``) or
        ``"serial"``.  Threads are deliberately not offered: crafting
        mutates per-layer backward caches, which concurrent threads on one
        model object would corrupt.
    shard_size:
        Samples per shard.  Part of the attack semantics for seeded attacks
        (each shard draws from its own spawned stream), so it is fixed by
        configuration — never derived from the worker count.
    """

    def __init__(
        self,
        model: Sequential,
        workers: WorkerSpec = None,
        backend: str = None,
        shard_size: int = None,
    ) -> None:
        self.model = model
        self.workers = resolve_workers(workers)
        self.backend = resolve_backend(backend)
        self.shard_size = validate_batch_size(
            DEFAULT_SHARD_SIZE if shard_size is None else shard_size
        )

    # ------------------------------------------------------------------ API
    def generate(
        self,
        attack: Attack,
        images: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
        seed: int = None,
    ) -> np.ndarray:
        """Craft adversarial examples for a single perturbation budget."""
        sweep = self.generate_sweep(attack, images, labels, [epsilon], seed=seed)
        return sweep[float(epsilon)]

    def generate_sweep(
        self,
        attack: Attack,
        images: np.ndarray,
        labels: np.ndarray,
        epsilons: Sequence[float],
        seed: int = None,
    ) -> Dict[float, np.ndarray]:
        """Craft adversarial examples for every budget in one amortised pass.

        ``seed`` overrides the attack's own seed for this call only.  The
        engine reseeds per call (regeneration with equal inputs is
        bit-identical), so callers that *want* fresh randomness per call —
        adversarial training drawing new PGD starts every minibatch — must
        supply a varying seed.
        """
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if images.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"images and labels disagree on sample count: {images.shape[0]} vs "
                f"{labels.shape[0]}"
            )
        epsilons = [float(epsilon) for epsilon in epsilons]
        if not epsilons:
            raise ConfigurationError("epsilons must contain at least one budget")
        for epsilon in epsilons:
            if epsilon < 0:
                raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
        if images.shape[0] == 0:
            # a well-formed empty result per budget, with no gradient or RNG
            # work (mirrors the empty-input validation on predict)
            return {epsilon: images.copy() for epsilon in epsilons}

        slices = batch_slices(images.shape[0], self.shard_size)
        if seed is None:
            seed = attack.seed
        root = np.random.SeedSequence(0 if seed is None else seed)
        seeds = root.spawn(len(slices))
        shard_results = self._run_shards(attack, images, labels, epsilons, slices, seeds)
        return {
            epsilon: np.concatenate(
                [result[epsilon] for result in shard_results], axis=0
            )
            for epsilon in epsilons
        }

    # ------------------------------------------------------------ dispatch
    def _run_shards(self, attack, images, labels, epsilons, slices, seeds):
        use_processes = (
            self.backend == PROCESS
            and self.workers > 1
            and len(slices) > 1
            and isinstance(self.model, Sequential)
        )
        if not use_processes:
            return [
                _sweep_shard(attack, self.model, images[s], labels[s], epsilons, seed)
                for s, seed in zip(slices, seeds)
            ]
        payload = dumps_model(self.model)
        tasks = [
            {
                "model": payload,
                "attack": attack,
                "images": images[s],
                "labels": labels[s],
                "epsilons": epsilons,
                "seed": seed,
            }
            for s, seed in zip(slices, seeds)
        ]
        # context manager: a crafting failure tears the spawn pool down
        # instead of leaking worker processes; the happy path keeps the
        # warm executor cached for the next sweep
        with ProcessShardPool(self.workers) as pool:
            return pool.map(_craft_shard_task, tasks)
