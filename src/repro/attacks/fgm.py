"""Fast Gradient Method (FGM / FGSM).

Single-gradient attacks: ``prepare`` evaluates the input gradient at the
clean images once, and every budget of a sweep scales that same gradient —
an epsilon sweep over the FGM family costs exactly one gradient evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import GRADIENT, Attack
from repro.attacks.distances import normalize_l2


class FGMLinf(Attack):
    """Single-step linf fast gradient (sign) method: ``x + eps * sign(grad)``."""

    name = "Fast Gradient Method"
    short_name = "FGM"
    attack_type = GRADIENT
    norm = "linf"

    def prepare(self, ctx):
        return ctx.gradient(ctx.images)

    def perturb(self, ctx, state, prep, payload):
        state.adversarial = ctx.images + state.epsilon * np.sign(prep)
        return state


class FGML2(Attack):
    """Single-step l2 fast gradient method: a step of l2 length eps along the gradient."""

    name = "Fast Gradient Method"
    short_name = "FGM"
    attack_type = GRADIENT
    norm = "l2"

    def prepare(self, ctx):
        return normalize_l2(ctx.gradient(ctx.images))

    def perturb(self, ctx, state, prep, payload):
        state.adversarial = ctx.images + state.epsilon * prep
        return state
