"""Fast Gradient Method (FGM / FGSM)."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import GRADIENT, Attack
from repro.attacks.distances import normalize_l2


class FGMLinf(Attack):
    """Single-step linf fast gradient (sign) method: ``x + eps * sign(grad)``."""

    name = "Fast Gradient Method"
    short_name = "FGM"
    attack_type = GRADIENT
    norm = "linf"

    def _run(self, model, images, labels, epsilon):
        gradient = self._gradient(model, images, labels)
        return images + epsilon * np.sign(gradient)


class FGML2(Attack):
    """Single-step l2 fast gradient method: a step of l2 length eps along the gradient."""

    name = "Fast Gradient Method"
    short_name = "FGM"
    attack_type = GRADIENT
    norm = "l2"

    def _run(self, model, images, labels, epsilon):
        gradient = self._gradient(model, images, labels)
        return images + epsilon * normalize_l2(gradient)
