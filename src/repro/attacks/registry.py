"""Registry of the paper's ten adversarial attacks (Table I)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.attacks.base import Attack, AttackMetadata
from repro.attacks.bim import BIML2, BIMLinf
from repro.attacks.contrast import ContrastReductionL2
from repro.attacks.fgm import FGML2, FGMLinf
from repro.attacks.noise import (
    RepeatedAdditiveGaussianL2,
    RepeatedAdditiveUniformL2,
    RepeatedAdditiveUniformLinf,
)
from repro.attacks.pgd import PGDL2, PGDLinf
from repro.errors import UnknownComponentError

#: the ten attacks evaluated in the paper, keyed "SHORT_norm"
_ATTACK_FACTORIES: Dict[str, Callable[[], Attack]] = {
    "FGM_linf": FGMLinf,
    "FGM_l2": FGML2,
    "BIM_linf": BIMLinf,
    "BIM_l2": BIML2,
    "PGD_linf": PGDLinf,
    "PGD_l2": PGDL2,
    "CR_l2": ContrastReductionL2,
    "RAG_l2": RepeatedAdditiveGaussianL2,
    "RAU_l2": RepeatedAdditiveUniformL2,
    "RAU_linf": RepeatedAdditiveUniformLinf,
}

#: the perturbation budgets swept in every figure of the paper
PAPER_EPSILONS: List[float] = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0, 1.5, 2.0]


def available_attacks() -> List[str]:
    """Keys of every registered attack."""
    return sorted(_ATTACK_FACTORIES)


def get_attack(key: str, **kwargs) -> Attack:
    """Instantiate an attack by its registry key (e.g. ``"BIM_linf"``)."""
    try:
        factory = _ATTACK_FACTORIES[key]
    except KeyError as exc:
        raise UnknownComponentError(
            f"unknown attack {key!r}; known attacks: {available_attacks()}"
        ) from exc
    return factory(**kwargs)


def attack_table() -> List[AttackMetadata]:
    """Metadata of every attack — the reproduction of the paper's Table I."""
    return [get_attack(key).metadata() for key in available_attacks()]


def gradient_attacks() -> List[str]:
    """Keys of the gradient-based attacks."""
    return [key for key in available_attacks() if get_attack(key).attack_type == "gradient"]


def decision_attacks() -> List[str]:
    """Keys of the decision-based attacks."""
    return [key for key in available_attacks() if get_attack(key).attack_type == "decision"]
