"""Attack interface and shared plumbing.

Following the paper's threat model (Section II), every attack is generated on
the *source* model — the accurate float DNN — and later evaluated on a victim
(the quantized accurate DNN or an AxDNN).  An attack therefore only needs the
source model: gradient attacks use its input gradients; decision attacks use
its predicted labels to decide when a noise sample is already adversarial.

Perturbation budgets (epsilon) follow the Foolbox convention: they are
expressed in the input scale ([0, 1] images) and bound the attack's norm
(linf or l2).  ``epsilon = 0`` returns the unmodified images.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential

#: valid image range used throughout the paper's datasets
PIXEL_MIN = 0.0
PIXEL_MAX = 1.0

GRADIENT = "gradient"
DECISION = "decision"


@dataclass(frozen=True)
class AttackMetadata:
    """Descriptive metadata of an attack (used to reproduce Table I)."""

    name: str
    short_name: str
    attack_type: str
    norm: str


class Attack(ABC):
    """Base class for adversarial attacks."""

    #: full attack name, e.g. "Basic Iterative Method"
    name: str = "attack"
    #: short name used by the paper, e.g. "BIM"
    short_name: str = "ATT"
    #: "gradient" or "decision"
    attack_type: str = GRADIENT
    #: "l2" or "linf"
    norm: str = "linf"

    def __init__(self) -> None:
        self._loss = CrossEntropyLoss()

    # ------------------------------------------------------------------ API
    def generate(
        self,
        model: Sequential,
        images: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
    ) -> np.ndarray:
        """Craft adversarial examples within the given perturbation budget."""
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if images.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"images and labels disagree on sample count: {images.shape[0]} vs "
                f"{labels.shape[0]}"
            )
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
        if epsilon == 0:
            return images.copy()
        adversarial = self._run(model, images, labels, float(epsilon))
        return np.clip(adversarial, PIXEL_MIN, PIXEL_MAX)

    @abstractmethod
    def _run(
        self,
        model: Sequential,
        images: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
    ) -> np.ndarray:
        """Attack implementation (epsilon > 0; output clipped by the caller)."""

    # ----------------------------------------------------------- utilities
    def metadata(self) -> AttackMetadata:
        """Metadata record of this attack."""
        return AttackMetadata(
            name=self.name,
            short_name=self.short_name,
            attack_type=self.attack_type,
            norm=self.norm,
        )

    def key(self) -> str:
        """Registry key, e.g. ``"BIM_linf"``."""
        return f"{self.short_name}_{self.norm}"

    def _gradient(
        self, model: Sequential, images: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Input gradient of the classification loss on the source model."""
        return model.input_gradient(images, labels, self._loss)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(norm={self.norm!r})"


def predicted_labels(model: Sequential, images: np.ndarray) -> np.ndarray:
    """Labels predicted by the source model (used by decision attacks)."""
    return model.predict_classes(images)
