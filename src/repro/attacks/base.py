"""Attack interface and shared plumbing.

Following the paper's threat model (Section II), every attack is generated on
the *source* model — the accurate float DNN — and later evaluated on a victim
(the quantized accurate DNN or an AxDNN).  An attack therefore only needs the
source model: gradient attacks use its input gradients; decision attacks use
its predicted labels to decide when a noise sample is already adversarial.

Perturbation budgets (epsilon) follow the Foolbox convention: they are
expressed in the input scale ([0, 1] images) and bound the attack's norm
(linf or l2).  ``epsilon = 0`` returns the unmodified images.

Attacks are *declarative*: instead of each reimplementing the generate loop,
a subclass describes itself to :class:`repro.attacks.engine.AttackEngine`
through four hooks —

``prepare(ctx)``
    Epsilon-independent precomputation, run once per crafting call and
    shared by every budget of a sweep (the FGM gradient, the contrast
    direction, unit-scale random draws).
``init(ctx, prep, epsilon)``
    The starting :class:`AttackState` for one budget (default: the clean
    images).
``step_payload(ctx, prep, step)``
    Per-step epsilon-independent data (e.g. one unit-scale noise draw),
    computed once per step and shared across budgets.
``perturb(ctx, state, prep, payload)``
    Advance one budget's state by one step; called ``num_steps()`` times
    unless the state marks itself ``done``.

The bit-for-bit reproducibility contract rests on one invariant: hooks may
consume ``ctx.rng`` **only** inside ``prepare`` and ``step_payload`` (the
epsilon-independent hooks).  The engine derives ``ctx.rng`` freshly per
crafting call (and per shard) from the attack's seed, so a single-budget
``generate`` and a multi-budget ``generate_sweep`` see identical streams.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec

#: valid image range used throughout the paper's datasets
PIXEL_MIN = 0.0
PIXEL_MAX = 1.0

GRADIENT = "gradient"
DECISION = "decision"


@dataclass(frozen=True)
class AttackMetadata:
    """Descriptive metadata of an attack (used to reproduce Table I)."""

    name: str
    short_name: str
    attack_type: str
    norm: str


@dataclass
class AttackContext:
    """Everything a crafting call sees: one source model, one (shard of a) batch.

    ``rng`` is derived freshly per call and per shard from the attack's seed
    (see :mod:`repro.attacks.engine`); deterministic attacks never touch it.
    """

    model: Sequential
    images: np.ndarray
    labels: np.ndarray
    rng: np.random.Generator
    loss: Loss

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Input gradient of the classification loss on the source model."""
        return self.model.input_gradient(x, self.labels, self.loss)

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Labels predicted by the source model (used by decision attacks)."""
        return self.model.predict_classes(x)


@dataclass
class AttackState:
    """Mutable crafting state of one perturbation budget."""

    epsilon: float
    adversarial: np.ndarray
    #: steps applied so far (maintained by the engine)
    step: int = 0
    #: set by ``perturb`` to stop early (e.g. every sample already fooled)
    done: bool = False
    #: attack-specific extras (e.g. the still-correct mask of noise attacks)
    extra: Dict[str, Any] = field(default_factory=dict)


class Attack(ABC):
    """Base class for adversarial attacks."""

    #: full attack name, e.g. "Basic Iterative Method"
    name: str = "attack"
    #: short name used by the paper, e.g. "BIM"
    short_name: str = "ATT"
    #: "gradient" or "decision"
    attack_type: str = GRADIENT
    #: "l2" or "linf"
    norm: str = "linf"
    #: seed of the per-call RNG stream (None for deterministic attacks)
    seed: Optional[int] = None

    def __init__(self) -> None:
        self._loss = CrossEntropyLoss()

    # ------------------------------------------------------------------ API
    def generate(
        self,
        model: Sequential,
        images: np.ndarray,
        labels: np.ndarray,
        epsilon: float,
        workers: WorkerSpec = None,
        seed: int = None,
    ) -> np.ndarray:
        """Craft adversarial examples within the given perturbation budget.

        ``workers`` shards the batch across worker processes (``"auto"`` =
        one per core; the default reads ``REPRO_DEFAULT_WORKERS``, else 1);
        results are bit-identical for every worker count.  Regeneration with
        equal inputs is bit-identical; pass a varying ``seed`` to override
        the attack's own seed when fresh randomness per call is wanted
        (e.g. adversarial training).
        """
        from repro.attacks.engine import AttackEngine

        return AttackEngine(model, workers=workers).generate(
            self, images, labels, epsilon, seed=seed
        )

    def generate_sweep(
        self,
        model: Sequential,
        images: np.ndarray,
        labels: np.ndarray,
        epsilons,
        workers: WorkerSpec = None,
        seed: int = None,
    ) -> Dict[float, np.ndarray]:
        """Craft adversarial examples for every budget in one amortised pass.

        Bit-identical to calling :meth:`generate` once per budget, but
        epsilon-independent work (gradients of single-step attacks, noise
        draws, perturbation directions) is computed once and shared.
        """
        from repro.attacks.engine import AttackEngine

        return AttackEngine(model, workers=workers).generate_sweep(
            self, images, labels, epsilons, seed=seed
        )

    # ------------------------------------------- declarative engine hooks
    def num_steps(self) -> int:
        """How many ``perturb`` steps the engine runs (per budget)."""
        return 1

    def prepare(self, ctx: AttackContext) -> Any:
        """Epsilon-independent precomputation shared by every budget."""
        return None

    def init(self, ctx: AttackContext, prep: Any, epsilon: float) -> AttackState:
        """Starting state for one budget (default: the clean images)."""
        return AttackState(epsilon=epsilon, adversarial=ctx.images.copy())

    def step_payload(self, ctx: AttackContext, prep: Any, step: int) -> Any:
        """Per-step epsilon-independent data shared across budgets."""
        return None

    @abstractmethod
    def perturb(
        self, ctx: AttackContext, state: AttackState, prep: Any, payload: Any
    ) -> AttackState:
        """Advance one budget's state by one step (``epsilon > 0``).

        The engine clips the final adversarial batch to the pixel range;
        iterative attacks additionally clip inside each step so later
        gradients are taken at feasible points.
        """

    # ----------------------------------------------------------- utilities
    def metadata(self) -> AttackMetadata:
        """Metadata record of this attack."""
        return AttackMetadata(
            name=self.name,
            short_name=self.short_name,
            attack_type=self.attack_type,
            norm=self.norm,
        )

    def key(self) -> str:
        """Registry key, e.g. ``"BIM_linf"``."""
        return f"{self.short_name}_{self.norm}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(norm={self.norm!r})"


def predicted_labels(model: Sequential, images: np.ndarray) -> np.ndarray:
    """Labels predicted by the source model (used by decision attacks)."""
    return model.predict_classes(images)
