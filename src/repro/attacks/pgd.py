"""Projected Gradient Descent (PGD): BIM with a random start inside the ball."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import GRADIENT, PIXEL_MAX, PIXEL_MIN, Attack
from repro.attacks.distances import normalize_l2, project_l2_ball, project_linf_ball
from repro.errors import ConfigurationError


class PGDLinf(Attack):
    """linf PGD (Madry et al.): random start, iterated sign steps, eps-ball projection."""

    name = "Projected Gradient Descent"
    short_name = "PGD"
    attack_type = GRADIENT
    norm = "linf"

    def __init__(
        self, steps: int = 10, step_size_factor: float = 0.25, seed: int = 0
    ) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        self.steps = steps
        self.step_size_factor = step_size_factor
        self._rng = np.random.default_rng(seed)

    def _run(self, model, images, labels, epsilon):
        step_size = epsilon * self.step_size_factor
        start = self._rng.uniform(-epsilon, epsilon, size=images.shape)
        adversarial = np.clip(images + start, PIXEL_MIN, PIXEL_MAX)
        for _ in range(self.steps):
            gradient = self._gradient(model, adversarial, labels)
            adversarial = adversarial + step_size * np.sign(gradient)
            perturbation = project_linf_ball(adversarial - images, epsilon)
            adversarial = np.clip(images + perturbation, PIXEL_MIN, PIXEL_MAX)
        return adversarial


class PGDL2(Attack):
    """l2 PGD: random start in the l2 ball, normalised gradient steps, projection."""

    name = "Projected Gradient Descent"
    short_name = "PGD"
    attack_type = GRADIENT
    norm = "l2"

    def __init__(
        self, steps: int = 10, step_size_factor: float = 0.25, seed: int = 0
    ) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        self.steps = steps
        self.step_size_factor = step_size_factor
        self._rng = np.random.default_rng(seed)

    def _run(self, model, images, labels, epsilon):
        step_size = epsilon * self.step_size_factor
        start = self._rng.normal(size=images.shape)
        start = project_l2_ball(start, epsilon) * self._rng.uniform(
            0.0, 1.0, size=(images.shape[0],) + (1,) * (images.ndim - 1)
        )
        adversarial = np.clip(images + start, PIXEL_MIN, PIXEL_MAX)
        for _ in range(self.steps):
            gradient = self._gradient(model, adversarial, labels)
            adversarial = adversarial + step_size * normalize_l2(gradient)
            perturbation = project_l2_ball(adversarial - images, epsilon)
            adversarial = np.clip(images + perturbation, PIXEL_MIN, PIXEL_MAX)
        return adversarial
