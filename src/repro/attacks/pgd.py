"""Projected Gradient Descent (PGD): BIM with a random start inside the ball.

The random start is drawn in ``prepare`` at *unit* scale — one draw per
crafting call, scaled per budget in ``init`` — so a sweep shares the draw
across budgets and regeneration is deterministic: the RNG is derived freshly
from ``seed`` per call (and per shard) by the engine, never kept as mutable
attack state.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import GRADIENT, PIXEL_MAX, PIXEL_MIN, Attack, AttackState
from repro.attacks.distances import normalize_l2, project_l2_ball, project_linf_ball
from repro.errors import ConfigurationError


class _PGD(Attack):
    """Shared PGD machinery; subclasses supply the norm geometry and start."""

    attack_type = GRADIENT

    def __init__(
        self, steps: int = 10, step_size_factor: float = 0.25, seed: int = 0
    ) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        self.steps = steps
        self.step_size_factor = step_size_factor
        self.seed = seed

    def num_steps(self):
        return self.steps

    def init(self, ctx, prep, epsilon):
        start = np.clip(ctx.images + epsilon * prep, PIXEL_MIN, PIXEL_MAX)
        return AttackState(epsilon=epsilon, adversarial=start)

    def _direction(self, gradient):
        raise NotImplementedError

    def _project(self, perturbation, epsilon):
        raise NotImplementedError

    def perturb(self, ctx, state, prep, payload):
        gradient = ctx.gradient(state.adversarial)
        step_size = state.epsilon * self.step_size_factor
        adversarial = state.adversarial + step_size * self._direction(gradient)
        perturbation = self._project(adversarial - ctx.images, state.epsilon)
        state.adversarial = np.clip(ctx.images + perturbation, PIXEL_MIN, PIXEL_MAX)
        return state


class PGDLinf(_PGD):
    """linf PGD (Madry et al.): random start, iterated sign steps, eps-ball projection."""

    name = "Projected Gradient Descent"
    short_name = "PGD"
    norm = "linf"

    def prepare(self, ctx):
        # unit-scale uniform start; init scales it by each budget
        return ctx.rng.uniform(-1.0, 1.0, size=ctx.images.shape)

    def _direction(self, gradient):
        return np.sign(gradient)

    def _project(self, perturbation, epsilon):
        return project_linf_ball(perturbation, epsilon)


class PGDL2(_PGD):
    """l2 PGD: random start in the l2 ball, normalised gradient steps, projection."""

    name = "Projected Gradient Descent"
    short_name = "PGD"
    norm = "l2"

    def prepare(self, ctx):
        # a unit-l2 direction with a uniform radius; init scales it per budget
        direction = normalize_l2(ctx.rng.normal(size=ctx.images.shape))
        radius = ctx.rng.uniform(
            0.0, 1.0, size=(ctx.images.shape[0],) + (1,) * (ctx.images.ndim - 1)
        )
        return direction * radius

    def _direction(self, gradient):
        return normalize_l2(gradient)

    def _project(self, perturbation, epsilon):
        return project_l2_ball(perturbation, epsilon)
