"""Basic Iterative Method (BIM), the iterative extension of FGM."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import GRADIENT, PIXEL_MAX, PIXEL_MIN, Attack
from repro.attacks.distances import normalize_l2, project_l2_ball, project_linf_ball
from repro.errors import ConfigurationError


class BIMLinf(Attack):
    """Iterative linf FGM with projection onto the eps-ball after every step."""

    name = "Basic Iterative Method"
    short_name = "BIM"
    attack_type = GRADIENT
    norm = "linf"

    def __init__(self, steps: int = 10, step_size_factor: float = 0.2) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        if step_size_factor <= 0:
            raise ConfigurationError(
                f"step_size_factor must be positive, got {step_size_factor}"
            )
        self.steps = steps
        self.step_size_factor = step_size_factor

    def _run(self, model, images, labels, epsilon):
        step_size = epsilon * self.step_size_factor
        adversarial = images.copy()
        for _ in range(self.steps):
            gradient = self._gradient(model, adversarial, labels)
            adversarial = adversarial + step_size * np.sign(gradient)
            perturbation = project_linf_ball(adversarial - images, epsilon)
            adversarial = np.clip(images + perturbation, PIXEL_MIN, PIXEL_MAX)
        return adversarial


class BIML2(Attack):
    """Iterative l2 FGM with projection onto the l2 eps-ball after every step."""

    name = "Basic Iterative Method"
    short_name = "BIM"
    attack_type = GRADIENT
    norm = "l2"

    def __init__(self, steps: int = 10, step_size_factor: float = 0.2) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        if step_size_factor <= 0:
            raise ConfigurationError(
                f"step_size_factor must be positive, got {step_size_factor}"
            )
        self.steps = steps
        self.step_size_factor = step_size_factor

    def _run(self, model, images, labels, epsilon):
        step_size = epsilon * self.step_size_factor
        adversarial = images.copy()
        for _ in range(self.steps):
            gradient = self._gradient(model, adversarial, labels)
            adversarial = adversarial + step_size * normalize_l2(gradient)
            perturbation = project_l2_ball(adversarial - images, epsilon)
            adversarial = np.clip(images + perturbation, PIXEL_MIN, PIXEL_MAX)
        return adversarial
