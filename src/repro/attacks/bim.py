"""Basic Iterative Method (BIM), the iterative extension of FGM.

Every budget starts its trajectory at the clean images, so the first step's
gradient is shared across a sweep (``prepare``); trajectories diverge from
step two onwards and are advanced per budget.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import GRADIENT, PIXEL_MAX, PIXEL_MIN, Attack
from repro.attacks.distances import normalize_l2, project_l2_ball, project_linf_ball
from repro.errors import ConfigurationError


class _BIM(Attack):
    """Shared iterative-FGM machinery; subclasses supply the norm geometry."""

    attack_type = GRADIENT

    def __init__(self, steps: int = 10, step_size_factor: float = 0.2) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        if step_size_factor <= 0:
            raise ConfigurationError(
                f"step_size_factor must be positive, got {step_size_factor}"
            )
        self.steps = steps
        self.step_size_factor = step_size_factor

    def num_steps(self):
        return self.steps

    def prepare(self, ctx):
        # the first step is taken at the clean images for every budget, so
        # its gradient is computed once and shared across the sweep
        return ctx.gradient(ctx.images)

    def _direction(self, gradient):
        raise NotImplementedError

    def _project(self, perturbation, epsilon):
        raise NotImplementedError

    def perturb(self, ctx, state, prep, payload):
        gradient = prep if state.step == 0 else ctx.gradient(state.adversarial)
        step_size = state.epsilon * self.step_size_factor
        adversarial = state.adversarial + step_size * self._direction(gradient)
        perturbation = self._project(adversarial - ctx.images, state.epsilon)
        state.adversarial = np.clip(ctx.images + perturbation, PIXEL_MIN, PIXEL_MAX)
        return state


class BIMLinf(_BIM):
    """Iterative linf FGM with projection onto the eps-ball after every step."""

    name = "Basic Iterative Method"
    short_name = "BIM"
    norm = "linf"

    def _direction(self, gradient):
        return np.sign(gradient)

    def _project(self, perturbation, epsilon):
        return project_linf_ball(perturbation, epsilon)


class BIML2(_BIM):
    """Iterative l2 FGM with projection onto the l2 eps-ball after every step."""

    name = "Basic Iterative Method"
    short_name = "BIM"
    norm = "l2"

    def _direction(self, gradient):
        return normalize_l2(gradient)

    def _project(self, perturbation, epsilon):
        return project_l2_ball(perturbation, epsilon)
