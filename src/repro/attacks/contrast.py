"""Contrast Reduction attack (decision-based, l2 budget).

Follows Foolbox's ``L2ContrastReductionAttack``: the perturbation direction is
towards the zero-contrast image (every pixel at the mid-level ``target``),
scaled so that its l2 norm equals the budget.  No gradients or model queries
are needed to construct the perturbation, which is why the paper classifies
it as a decision attack.  The direction is computed once per crafting call
(``prepare``) and shared by every budget of a sweep.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import DECISION, Attack
from repro.attacks.distances import batch_l2_norm
from repro.errors import ConfigurationError


class ContrastReductionL2(Attack):
    """Move every image towards mid-grey with an l2-bounded perturbation."""

    name = "Contrast Reduction Attack"
    short_name = "CR"
    attack_type = DECISION
    norm = "l2"

    def __init__(self, target: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= target <= 1.0:
            raise ConfigurationError(f"target must be in [0, 1], got {target}")
        self.target = target

    def prepare(self, ctx):
        direction = self.target - ctx.images
        norms = batch_l2_norm(direction)
        unit = direction / np.maximum(norms, 1e-12)
        return unit, norms

    def perturb(self, ctx, state, prep, payload):
        unit, norms = prep
        # never overshoot the zero-contrast image itself
        step = np.minimum(state.epsilon, norms)
        state.adversarial = ctx.images + step * unit
        return state
