"""Adversarial attacks (the Foolbox substitute).

Implements the ten attacks of the paper's Table I: FGM, BIM and PGD in their
l2 and linf variants (gradient attacks), plus Contrast Reduction, Repeated
Additive Gaussian noise and Repeated Additive Uniform noise (decision
attacks), together with the l0/l2/linf distance metrics.

Attacks are declarative step/init descriptions driven by the unified
batched runtime in :mod:`repro.attacks.engine`, which amortises epsilon
sweeps (``generate_sweep``) and shards crafting batches over worker
processes — bit-identically for every worker count.
"""

from repro.attacks.base import (
    DECISION,
    GRADIENT,
    PIXEL_MAX,
    PIXEL_MIN,
    Attack,
    AttackContext,
    AttackMetadata,
    AttackState,
)
from repro.attacks.engine import (
    DEFAULT_SHARD_SIZE,
    AttackEngine,
    resolve_backend,
)
from repro.attacks.bim import BIML2, BIMLinf
from repro.attacks.contrast import ContrastReductionL2
from repro.attacks.distances import (
    DISTANCES,
    l0_distance,
    l2_distance,
    linf_distance,
    normalize_l2,
    project_l2_ball,
    project_linf_ball,
)
from repro.attacks.extended import (
    EXTENDED_ATTACKS,
    AdditiveGaussianL2,
    BlendedUniformNoiseL2,
    DeepFoolL2,
    SaltAndPepperNoise,
    get_extended_attack,
)
from repro.attacks.fgm import FGML2, FGMLinf
from repro.attacks.noise import (
    RepeatedAdditiveGaussianL2,
    RepeatedAdditiveUniformL2,
    RepeatedAdditiveUniformLinf,
)
from repro.attacks.pgd import PGDL2, PGDLinf
from repro.attacks.registry import (
    PAPER_EPSILONS,
    attack_table,
    available_attacks,
    decision_attacks,
    get_attack,
    gradient_attacks,
)

__all__ = [
    "Attack",
    "AttackContext",
    "AttackEngine",
    "AttackMetadata",
    "AttackState",
    "DEFAULT_SHARD_SIZE",
    "resolve_backend",
    "GRADIENT",
    "DECISION",
    "PIXEL_MIN",
    "PIXEL_MAX",
    "FGMLinf",
    "FGML2",
    "BIMLinf",
    "BIML2",
    "PGDLinf",
    "PGDL2",
    "ContrastReductionL2",
    "RepeatedAdditiveGaussianL2",
    "RepeatedAdditiveUniformL2",
    "RepeatedAdditiveUniformLinf",
    "l0_distance",
    "l2_distance",
    "linf_distance",
    "normalize_l2",
    "project_l2_ball",
    "project_linf_ball",
    "DISTANCES",
    "get_attack",
    "available_attacks",
    "attack_table",
    "gradient_attacks",
    "decision_attacks",
    "PAPER_EPSILONS",
    "SaltAndPepperNoise",
    "AdditiveGaussianL2",
    "BlendedUniformNoiseL2",
    "DeepFoolL2",
    "EXTENDED_ATTACKS",
    "get_extended_attack",
]
