"""Distance metrics between original and perturbed images.

The paper (Table I) uses the l0, l2 and linf norms to approximate the human
perception of visual difference:

* l0 — number of pixels that changed;
* l2 — Euclidean distance;
* linf — maximum absolute per-pixel difference.

All functions operate per sample on batches: inputs of shape ``(N, ...)``
return a vector of ``N`` distances.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def _flatten_pair(original: np.ndarray, perturbed: np.ndarray) -> tuple:
    original = np.asarray(original, dtype=np.float64)
    perturbed = np.asarray(perturbed, dtype=np.float64)
    if original.shape != perturbed.shape:
        raise ShapeError(
            f"original and perturbed batches must have identical shapes, got "
            f"{original.shape} and {perturbed.shape}"
        )
    n = original.shape[0]
    return original.reshape(n, -1), perturbed.reshape(n, -1)


def l0_distance(original: np.ndarray, perturbed: np.ndarray, atol: float = 1e-12) -> np.ndarray:
    """Number of changed pixels per sample."""
    a, b = _flatten_pair(original, perturbed)
    return np.sum(np.abs(a - b) > atol, axis=1).astype(np.float64)


def l2_distance(original: np.ndarray, perturbed: np.ndarray) -> np.ndarray:
    """Euclidean distance per sample."""
    a, b = _flatten_pair(original, perturbed)
    return np.sqrt(np.sum((a - b) ** 2, axis=1))


def linf_distance(original: np.ndarray, perturbed: np.ndarray) -> np.ndarray:
    """Maximum absolute per-pixel difference per sample."""
    a, b = _flatten_pair(original, perturbed)
    return np.max(np.abs(a - b), axis=1)


DISTANCES = {
    "l0": l0_distance,
    "l2": l2_distance,
    "linf": linf_distance,
}


def batch_l2_norm(x: np.ndarray) -> np.ndarray:
    """Per-sample l2 norm of a batch, with singleton trailing axes for broadcasting."""
    flat = x.reshape(x.shape[0], -1)
    norms = np.sqrt(np.sum(flat ** 2, axis=1))
    return norms.reshape((-1,) + (1,) * (x.ndim - 1))


def project_l2_ball(perturbation: np.ndarray, radius: float) -> np.ndarray:
    """Project a batch of perturbations onto the l2 ball of a given radius."""
    norms = batch_l2_norm(perturbation)
    factor = np.minimum(1.0, radius / np.maximum(norms, 1e-12))
    return perturbation * factor


def project_linf_ball(perturbation: np.ndarray, radius: float) -> np.ndarray:
    """Project a batch of perturbations onto the linf ball of a given radius."""
    return np.clip(perturbation, -radius, radius)


def normalize_l2(x: np.ndarray) -> np.ndarray:
    """Scale every sample of a batch to unit l2 norm (zero vectors stay zero).

    Samples whose computed norm is exactly zero are zeroed out rather than
    divided by the epsilon guard: denormal inputs can underflow the
    squared-norm accumulation to 0.0, and dividing them by the guard would
    produce a tiny non-zero "direction" out of numerical noise.
    """
    norms = batch_l2_norm(x)
    return np.where(norms == 0.0, 0.0, x / np.maximum(norms, 1e-12))
