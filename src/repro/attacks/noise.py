"""Repeated additive noise attacks (decision-based).

Foolbox's repeated additive noise attacks draw ``repeats`` noise samples of
the requested norm and budget, query the source model after each, and keep
the first sample that is misclassified (falling back to the last drawn sample
when none fools the source model).  The paper uses the Gaussian l2 variant
(RAG) and the uniform l2/linf variants (RAU).

Each repeat's noise is drawn at *unit* scale in ``step_payload`` — once per
repeat, shared by every budget of a sweep — and scaled by the budget inside
``perturb``.  A budget marks itself done as soon as every sample fools the
source model, so later repeats skip both the draw and the model query.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import DECISION, PIXEL_MAX, PIXEL_MIN, Attack, AttackState
from repro.attacks.distances import normalize_l2
from repro.errors import ConfigurationError


class _RepeatedAdditiveNoise(Attack):
    """Shared machinery for repeated additive noise attacks."""

    attack_type = DECISION

    def __init__(self, repeats: int = 10, seed: int = 0) -> None:
        super().__init__()
        if repeats <= 0:
            raise ConfigurationError(f"repeats must be positive, got {repeats}")
        self.repeats = repeats
        self.seed = seed

    def _sample_unit(self, rng: np.random.Generator, shape: tuple) -> np.ndarray:
        """One unit-scale noise draw (scaled by the budget in ``perturb``)."""
        raise NotImplementedError

    def num_steps(self):
        return self.repeats

    def init(self, ctx, prep, epsilon):
        state = AttackState(epsilon=epsilon, adversarial=ctx.images.copy())
        state.extra["still_correct"] = np.ones(ctx.images.shape[0], dtype=bool)
        return state

    def step_payload(self, ctx, prep, step):
        return self._sample_unit(ctx.rng, ctx.images.shape)

    def perturb(self, ctx, state, prep, payload):
        candidate = np.clip(
            ctx.images + state.epsilon * payload, PIXEL_MIN, PIXEL_MAX
        )
        still_correct = state.extra["still_correct"]
        if state.step == 0:
            state.adversarial = candidate
        else:
            # keep the newest candidate only for samples not yet adversarial
            state.adversarial[still_correct] = candidate[still_correct]
        predictions = ctx.predict_classes(state.adversarial[still_correct])
        fooled = predictions != ctx.labels[still_correct]
        indices = np.flatnonzero(still_correct)
        still_correct[indices[fooled]] = False
        if not still_correct.any():
            state.done = True
        return state


class RepeatedAdditiveGaussianL2(_RepeatedAdditiveNoise):
    """Repeated additive Gaussian noise with an exact l2 budget (RAG)."""

    name = "Repeated Additive Gaussian Noise"
    short_name = "RAG"
    norm = "l2"

    def _sample_unit(self, rng, shape):
        return normalize_l2(rng.normal(size=shape))


class RepeatedAdditiveUniformL2(_RepeatedAdditiveNoise):
    """Repeated additive uniform noise with an exact l2 budget (RAU, l2)."""

    name = "Repeated Additive Uniform Noise"
    short_name = "RAU"
    norm = "l2"

    def _sample_unit(self, rng, shape):
        return normalize_l2(rng.uniform(-1.0, 1.0, size=shape))


class RepeatedAdditiveUniformLinf(_RepeatedAdditiveNoise):
    """Repeated additive uniform noise bounded per pixel by epsilon (RAU, linf)."""

    name = "Repeated Additive Uniform Noise"
    short_name = "RAU"
    norm = "linf"

    def _sample_unit(self, rng, shape):
        return rng.uniform(-1.0, 1.0, size=shape)
