"""Repeated additive noise attacks (decision-based).

Foolbox's repeated additive noise attacks draw ``repeats`` noise samples of
the requested norm and budget, query the source model after each, and keep
the first sample that is misclassified (falling back to the last drawn sample
when none fools the source model).  The paper uses the Gaussian l2 variant
(RAG) and the uniform l2/linf variants (RAU).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import DECISION, PIXEL_MAX, PIXEL_MIN, Attack
from repro.attacks.distances import normalize_l2
from repro.errors import ConfigurationError


class _RepeatedAdditiveNoise(Attack):
    """Shared machinery for repeated additive noise attacks."""

    attack_type = DECISION

    def __init__(self, repeats: int = 10, seed: int = 0) -> None:
        super().__init__()
        if repeats <= 0:
            raise ConfigurationError(f"repeats must be positive, got {repeats}")
        self.repeats = repeats
        self._rng = np.random.default_rng(seed)

    def _sample_noise(self, shape: tuple, epsilon: float) -> np.ndarray:
        raise NotImplementedError

    def _run(self, model, images, labels, epsilon):
        best = None
        still_correct = np.ones(images.shape[0], dtype=bool)
        for _ in range(self.repeats):
            noise = self._sample_noise(images.shape, epsilon)
            candidate = np.clip(images + noise, PIXEL_MIN, PIXEL_MAX)
            if best is None:
                best = candidate.copy()
            else:
                # keep the newest candidate only for samples not yet adversarial
                best[still_correct] = candidate[still_correct]
            if not np.any(still_correct):
                break
            predictions = model.predict_classes(best[still_correct])
            fooled = predictions != labels[still_correct]
            indices = np.flatnonzero(still_correct)
            still_correct[indices[fooled]] = False
        return best


class RepeatedAdditiveGaussianL2(_RepeatedAdditiveNoise):
    """Repeated additive Gaussian noise with an exact l2 budget (RAG)."""

    name = "Repeated Additive Gaussian Noise"
    short_name = "RAG"
    norm = "l2"

    def _sample_noise(self, shape, epsilon):
        noise = self._rng.normal(size=shape)
        return epsilon * normalize_l2(noise)


class RepeatedAdditiveUniformL2(_RepeatedAdditiveNoise):
    """Repeated additive uniform noise with an exact l2 budget (RAU, l2)."""

    name = "Repeated Additive Uniform Noise"
    short_name = "RAU"
    norm = "l2"

    def _sample_noise(self, shape, epsilon):
        noise = self._rng.uniform(-1.0, 1.0, size=shape)
        return epsilon * normalize_l2(noise)


class RepeatedAdditiveUniformLinf(_RepeatedAdditiveNoise):
    """Repeated additive uniform noise bounded per pixel by epsilon (RAU, linf)."""

    name = "Repeated Additive Uniform Noise"
    short_name = "RAU"
    norm = "linf"

    def _sample_noise(self, shape, epsilon):
        return self._rng.uniform(-epsilon, epsilon, size=shape)
