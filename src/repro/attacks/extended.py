"""Extended attacks beyond the paper's Table I.

The paper evaluates ten attacks; Foolbox ships several more that are natural
follow-ups for AxDNN robustness studies.  This module adds a small set of
them as an extension (they are kept out of the paper registry so the
figure-reproduction benchmarks remain faithful):

* Salt-and-pepper noise (decision, l0-style corruption);
* Single-draw additive Gaussian noise (decision, l2);
* Blended uniform noise (decision, l2) — interpolates towards a uniform
  noise image, the "image corruption" analogue of contrast reduction;
* DeepFool (gradient, l2) — a minimal-perturbation attack run in a
  budget-bounded mode: the DeepFool direction is computed and then scaled to
  the requested l2 budget.

Like the registry attacks, they are declarative: random draws and
perturbation directions live in ``prepare`` (epsilon-independent, shared
across an epsilon sweep), and the budget is applied in ``perturb``.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import DECISION, GRADIENT, PIXEL_MAX, PIXEL_MIN, Attack
from repro.attacks.distances import batch_l2_norm, normalize_l2
from repro.errors import ConfigurationError
from repro.nn.functional import softmax


class SaltAndPepperNoise(Attack):
    """Flips a budget-dependent fraction of pixels to black or white."""

    name = "Salt and Pepper Noise"
    short_name = "SAP"
    attack_type = DECISION
    norm = "l0"

    def __init__(self, max_fraction: float = 0.4, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 < max_fraction <= 1.0:
            raise ConfigurationError(
                f"max_fraction must be in (0, 1], got {max_fraction}"
            )
        self.max_fraction = max_fraction
        self.seed = seed

    def prepare(self, ctx):
        # one pair of uniform fields shared by every budget: thresholding the
        # first at the budget's flip fraction nests small-budget masks inside
        # large-budget ones
        return ctx.rng.random(ctx.images.shape), ctx.rng.random(ctx.images.shape)

    def perturb(self, ctx, state, prep, payload):
        mask_field, salt_field = prep
        # epsilon in [0, 2] is mapped onto a pixel-flip fraction
        fraction = min(self.max_fraction, state.epsilon / 2.0 * self.max_fraction)
        mask = mask_field < fraction
        salt = salt_field < 0.5
        state.adversarial = np.where(
            mask, np.where(salt, PIXEL_MAX, PIXEL_MIN), ctx.images
        )
        return state


class AdditiveGaussianL2(Attack):
    """A single draw of Gaussian noise scaled to the exact l2 budget."""

    name = "Additive Gaussian Noise"
    short_name = "AGN"
    attack_type = DECISION
    norm = "l2"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed

    def prepare(self, ctx):
        return normalize_l2(ctx.rng.normal(size=ctx.images.shape))

    def perturb(self, ctx, state, prep, payload):
        state.adversarial = ctx.images + state.epsilon * prep
        return state


class BlendedUniformNoiseL2(Attack):
    """Blend each image towards a fixed uniform-noise image within an l2 budget."""

    name = "Blended Uniform Noise"
    short_name = "BUN"
    attack_type = DECISION
    norm = "l2"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed

    def prepare(self, ctx):
        target = ctx.rng.random(ctx.images.shape)
        direction = target - ctx.images
        norms = batch_l2_norm(direction)
        unit = direction / np.maximum(norms, 1e-12)
        return unit, norms

    def perturb(self, ctx, state, prep, payload):
        unit, norms = prep
        step = np.minimum(state.epsilon, norms)
        state.adversarial = ctx.images + step * unit
        return state


class DeepFoolL2(Attack):
    """Budget-bounded DeepFool (Moosavi-Dezfooli et al., 2016).

    The classic DeepFool iterates towards the nearest decision boundary; here
    the accumulated DeepFool perturbation is additionally projected onto the
    l2 ball of the requested budget so the attack fits the paper's
    fixed-budget evaluation protocol.
    """

    name = "DeepFool"
    short_name = "DF"
    attack_type = GRADIENT
    norm = "l2"

    def __init__(self, steps: int = 8, overshoot: float = 0.02) -> None:
        super().__init__()
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        self.steps = steps
        self.overshoot = overshoot

    def num_steps(self):
        return self.steps

    def _class_gradient(self, model, images, class_index):
        """Gradient of the given class logit summed over the batch."""
        logits = model.forward(images, training=False)
        grad_logits = np.zeros_like(logits)
        grad_logits[np.arange(images.shape[0]), class_index] = 1.0
        return model.backward(grad_logits)

    def perturb(self, ctx, state, prep, payload):
        model, images, labels = ctx.model, ctx.images, ctx.labels
        adversarial = state.adversarial
        batch = images.shape[0]
        logits = model.forward(adversarial, training=False)
        predictions = np.argmax(logits, axis=1)
        still_correct = predictions == labels
        if not np.any(still_correct):
            state.done = True
            return state
        probabilities = softmax(logits)
        # runner-up class per sample (most likely wrong class)
        masked = probabilities.copy()
        masked[np.arange(batch), labels] = -np.inf
        runner_up = np.argmax(masked, axis=1)
        grad_true = self._class_gradient(model, adversarial, labels)
        grad_other = self._class_gradient(model, adversarial, runner_up)
        direction = grad_other - grad_true
        logit_gap = (
            logits[np.arange(batch), labels] - logits[np.arange(batch), runner_up]
        )
        norms = batch_l2_norm(direction).reshape(batch)
        scale = (np.abs(logit_gap) + 1e-6) / np.maximum(norms ** 2, 1e-12)
        step = (1.0 + self.overshoot) * scale.reshape(
            (-1,) + (1,) * (images.ndim - 1)
        ) * direction
        # only move samples that are still classified correctly
        move_mask = still_correct.reshape((-1,) + (1,) * (images.ndim - 1))
        adversarial = adversarial + np.where(move_mask, step, 0.0)
        # keep the accumulated perturbation inside the l2 budget
        perturbation = adversarial - images
        norms_total = batch_l2_norm(perturbation)
        factor = np.minimum(1.0, state.epsilon / np.maximum(norms_total, 1e-12))
        state.adversarial = np.clip(
            images + perturbation * factor, PIXEL_MIN, PIXEL_MAX
        )
        return state


#: registry of the extension attacks (kept separate from the paper's Table I)
EXTENDED_ATTACKS = {
    "SAP_l0": SaltAndPepperNoise,
    "AGN_l2": AdditiveGaussianL2,
    "BUN_l2": BlendedUniformNoiseL2,
    "DF_l2": DeepFoolL2,
}


def get_extended_attack(key: str, **kwargs) -> Attack:
    """Instantiate an extension attack by key (see :data:`EXTENDED_ATTACKS`)."""
    try:
        factory = EXTENDED_ATTACKS[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown extended attack {key!r}; known: {sorted(EXTENDED_ATTACKS)}"
        ) from exc
    return factory(**kwargs)
