"""The regression gate: ``compare(baseline, candidate)``.

Decides, metric by metric, whether a candidate run regressed against a
recorded baseline.  Three conventions keep the gate honest on real
hardware:

* **Noise thresholds** — a metric only fails when it moved by more than
  its threshold (default :data:`DEFAULT_THRESHOLD_PERCENT`; per-metric
  overrides match by :mod:`fnmatch` pattern, so ``kernel.*`` can be given
  a looser budget than ``training.*``).
* **Core gating** — metrics recorded with ``min_cores=N`` (the repo's
  "assert speedup only on >= 4 cores" convention) are reported but never
  gate on hosts with fewer cores: a sharding speedup records parity on a
  1-core container *by design*, not by regression.
* **Environment portability** — wall-clock seconds measured on different
  machines are not comparable.  In ``portable`` mode only dimensionless
  metrics (ratios, percentages) gate; ``auto`` picks ``strict`` when the
  two reports' fingerprints agree on core count and architecture, and
  ``portable`` otherwise.

A metric present in the baseline but missing from the candidate fails the
gate (a silently-dropped benchmark is itself a regression); a metric new
in the candidate is informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional

from repro.benchmarking.report import BenchmarkReport, BenchmarkResult
from repro.errors import ConfigurationError

#: default allowed movement per metric before the gate fails, in percent
DEFAULT_THRESHOLD_PERCENT = 15.0

#: the modes :func:`compare` accepts
COMPARE_MODES = ("auto", "strict", "portable")

#: statuses that fail the gate
_FAILING = frozenset({"regression", "missing-candidate"})


@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict: how much worse (or better) the candidate is.

    ``worse_percent`` is oriented by the metric's direction — positive
    always means *the candidate regressed*, whatever the unit's natural
    direction.  ``status`` is one of ``ok`` / ``improved`` /
    ``regression`` / ``skipped-cores`` / ``skipped-env`` /
    ``missing-candidate`` / ``new``.
    """

    name: str
    unit: str
    higher_is_better: bool
    baseline: Optional[float]
    candidate: Optional[float]
    worse_percent: Optional[float]
    threshold_percent: float
    status: str
    reason: str = ""

    @property
    def failed(self) -> bool:
        return self.status in _FAILING

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "worse_percent": self.worse_percent,
            "threshold_percent": self.threshold_percent,
            "status": self.status,
            "reason": self.reason,
        }


@dataclass
class ComparisonReport:
    """Every metric's verdict for one suite, plus the overall gate result."""

    suite: str
    mode: str
    metrics: List[MetricComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        return [metric for metric in self.metrics if metric.failed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "mode": self.mode,
            "ok": self.ok,
            "metrics": [metric.to_dict() for metric in self.metrics],
        }

    def format(self) -> str:
        """An aligned human-readable verdict table."""
        lines = [f"suite {self.suite} (mode={self.mode}):"]
        name_width = max([len(m.name) for m in self.metrics] + [6])
        for metric in self.metrics:
            baseline = "-" if metric.baseline is None else f"{metric.baseline:.6g}"
            candidate = "-" if metric.candidate is None else f"{metric.candidate:.6g}"
            moved = (
                "      -"
                if metric.worse_percent is None
                else f"{metric.worse_percent:+7.1f}%"
            )
            marker = "FAIL" if metric.failed else "    "
            lines.append(
                f"  {marker} {metric.name:<{name_width}} "
                f"{baseline:>12} -> {candidate:>12} {metric.unit:<6} "
                f"worse {moved} (budget {metric.threshold_percent:.0f}%) "
                f"[{metric.status}]"
            )
        verdict = "OK" if self.ok else f"{len(self.regressions)} REGRESSION(S)"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _threshold_for(
    name: str, default: float, overrides: Optional[Dict[str, float]]
) -> float:
    if overrides:
        for pattern, value in overrides.items():
            if fnmatchcase(name, pattern):
                return float(value)
    return default


def _worse_percent(metric: BenchmarkResult, baseline: float, candidate: float) -> float:
    """How much the candidate regressed, in percent (positive = worse)."""
    if baseline == 0:
        return 0.0 if candidate == baseline else float("inf")
    if metric.higher_is_better:
        return (baseline - candidate) / abs(baseline) * 100.0
    return (candidate - baseline) / abs(baseline) * 100.0


def comparable_envs(baseline: BenchmarkReport, candidate: BenchmarkReport) -> bool:
    """Whether two reports' machines are close enough for wall-clock gating."""
    base_env, cand_env = baseline.env or {}, candidate.env or {}
    return (
        base_env.get("cores") == cand_env.get("cores")
        and base_env.get("machine") == cand_env.get("machine")
    )


def compare(
    baseline: BenchmarkReport,
    candidate: BenchmarkReport,
    threshold_percent: float = DEFAULT_THRESHOLD_PERCENT,
    thresholds: Optional[Dict[str, float]] = None,
    mode: str = "auto",
) -> ComparisonReport:
    """Gate a candidate report against a recorded baseline.

    ``thresholds`` maps :mod:`fnmatch` patterns to per-metric budgets in
    percent (first match wins).  Returns a :class:`ComparisonReport` whose
    ``ok`` is False when any gated metric moved past its budget or any
    baseline metric disappeared.
    """
    if mode not in COMPARE_MODES:
        raise ConfigurationError(f"mode must be one of {COMPARE_MODES}, got {mode!r}")
    if baseline.suite != candidate.suite:
        raise ConfigurationError(
            f"comparing different suites: {baseline.suite!r} vs {candidate.suite!r}"
        )
    if threshold_percent < 0:
        raise ConfigurationError(
            f"threshold_percent must be >= 0, got {threshold_percent}"
        )
    if mode == "auto":
        mode = "strict" if comparable_envs(baseline, candidate) else "portable"

    cores = min(
        int((baseline.env or {}).get("cores", 1) or 1),
        int((candidate.env or {}).get("cores", 1) or 1),
    )
    comparisons: List[MetricComparison] = []
    for base_metric in baseline.results:
        threshold = _threshold_for(base_metric.name, threshold_percent, thresholds)
        cand_metric = candidate.metric(base_metric.name)
        if cand_metric is None:
            comparisons.append(
                MetricComparison(
                    name=base_metric.name,
                    unit=base_metric.unit,
                    higher_is_better=base_metric.higher_is_better,
                    baseline=base_metric.value,
                    candidate=None,
                    worse_percent=None,
                    threshold_percent=threshold,
                    status="missing-candidate",
                    reason="metric recorded in the baseline but absent from the "
                    "candidate run",
                )
            )
            continue
        worse = _worse_percent(base_metric, base_metric.value, cand_metric.value)
        if base_metric.min_cores and cores < base_metric.min_cores:
            status, reason = (
                "skipped-cores",
                f"needs >= {base_metric.min_cores} cores, measured on {cores}",
            )
        elif mode == "portable" and not base_metric.portable:
            status, reason = (
                "skipped-env",
                f"unit {base_metric.unit!r} is host-bound and the environments "
                "differ",
            )
        elif worse > threshold:
            status, reason = "regression", ""
        elif worse < -threshold:
            status, reason = "improved", ""
        else:
            status, reason = "ok", ""
        comparisons.append(
            MetricComparison(
                name=base_metric.name,
                unit=base_metric.unit,
                higher_is_better=base_metric.higher_is_better,
                baseline=base_metric.value,
                candidate=cand_metric.value,
                worse_percent=worse,
                threshold_percent=threshold,
                status=status,
                reason=reason,
            )
        )
    for cand_metric in candidate.results:
        if baseline.metric(cand_metric.name) is None:
            comparisons.append(
                MetricComparison(
                    name=cand_metric.name,
                    unit=cand_metric.unit,
                    higher_is_better=cand_metric.higher_is_better,
                    baseline=None,
                    candidate=cand_metric.value,
                    worse_percent=None,
                    threshold_percent=_threshold_for(
                        cand_metric.name, threshold_percent, thresholds
                    ),
                    status="new",
                    reason="not yet in the recorded baseline",
                )
            )
    return ComparisonReport(suite=baseline.suite, mode=mode, metrics=comparisons)
