"""``python -m repro.benchmarking`` — run, record and gate benchmarks.

Subcommands::

    run [SUITE ...]         run benchmark drivers (pytest) so they record
                            fresh reports under --results-dir
    compare BASE CAND       gate a candidate report (file or directory)
                            against a recorded baseline; exit 1 on regression
    record REPORT [...]     merge report files into --results-dir under the
                            results-file lock (the "bless a new baseline" step)
    list [DIR]              show the recorded reports and their metrics

The CI regression gate is ``run`` into a scratch directory followed by
``compare benchmarks/results <scratch>`` — see the ``bench-regression``
job in ``.github/workflows/ci.yml`` and PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

from repro.benchmarking.compare import (
    COMPARE_MODES,
    DEFAULT_THRESHOLD_PERCENT,
    ComparisonReport,
    compare,
)
from repro.benchmarking.recorder import (
    REPORT_PREFIX,
    load_report,
    load_reports,
    record_report,
)
from repro.benchmarking.report import BenchmarkReport
from repro.errors import ConfigurationError

#: default location of benchmark drivers and recorded results
DEFAULT_BENCHMARKS_DIR = "benchmarks"
DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")


def _parse_thresholds(pairs: Optional[List[str]]) -> Dict[str, float]:
    thresholds: Dict[str, float] = {}
    for pair in pairs or []:
        pattern, separator, value = pair.partition("=")
        if not separator or not pattern:
            raise ConfigurationError(
                f"--metric-threshold expects PATTERN=PERCENT, got {pair!r}"
            )
        try:
            thresholds[pattern] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"--metric-threshold {pair!r}: {value!r} is not a number"
            ) from None
    return thresholds


def _load_side(path: str) -> Dict[str, BenchmarkReport]:
    """A report file or a results directory, as suite -> report."""
    if os.path.isdir(path):
        return load_reports(path)
    report = load_report(path, on_error="raise")
    if report is None:
        raise ConfigurationError(f"no benchmark report at {path}")
    return {report.suite: report}


def cmd_run(args: argparse.Namespace) -> int:
    if args.suites:
        files = []
        for suite in args.suites:
            path = os.path.join(args.benchmarks_dir, f"bench_{suite}.py")
            if not os.path.exists(path):
                print(f"error: no benchmark driver at {path}", file=sys.stderr)
                return 2
            files.append(path)
    else:
        files = sorted(glob.glob(os.path.join(args.benchmarks_dir, "bench_*.py")))
        if not files:
            print(
                f"error: no bench_*.py drivers under {args.benchmarks_dir}",
                file=sys.stderr,
            )
            return 2
    command = [sys.executable, "-m", "pytest", "-q", *files]
    if args.keyword:
        command += ["-k", args.keyword]
    command += args.pytest_args or []
    env = dict(os.environ)
    if args.results_dir:
        env["REPRO_BENCH_RESULTS_DIR"] = args.results_dir
    print(f"running: {' '.join(command)}")
    return subprocess.run(command, env=env).returncode


def cmd_compare(args: argparse.Namespace) -> int:
    thresholds = _parse_thresholds(args.metric_threshold)
    baseline = _load_side(args.baseline)
    candidate = _load_side(args.candidate)
    if args.suite:
        baseline = {s: r for s, r in baseline.items() if s in args.suite}
        missing = set(args.suite) - set(baseline)
        if missing:
            print(
                f"error: baseline has no suite(s) {sorted(missing)}", file=sys.stderr
            )
            return 2
    if not baseline:
        print(f"error: no baseline reports in {args.baseline}", file=sys.stderr)
        return 2

    outcomes: List[ComparisonReport] = []
    failed = False
    for suite, base_report in sorted(baseline.items()):
        cand_report = candidate.get(suite)
        if cand_report is None:
            failed = True
            print(f"suite {suite}: MISSING from the candidate run — FAIL")
            continue
        outcome = compare(
            base_report,
            cand_report,
            threshold_percent=args.threshold,
            thresholds=thresholds,
            mode=args.mode,
        )
        outcomes.append(outcome)
        failed = failed or not outcome.ok
        if not args.json:
            print(outcome.format())
    if args.json:
        print(json.dumps([outcome.to_dict() for outcome in outcomes], indent=2))
    if failed:
        print("benchmark regression gate: FAIL")
        return 1
    print("benchmark regression gate: OK")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    for source in args.reports:
        report = load_report(source, on_error="raise")
        if report is None:
            print(f"error: no benchmark report at {source}", file=sys.stderr)
            return 2
        path = record_report(report, args.results_dir, merge=not args.replace)
        print(f"recorded suite {report.suite} -> {path}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    reports = load_reports(args.results_dir)
    if not reports:
        print(f"no {REPORT_PREFIX}*.json reports under {args.results_dir}")
        return 0
    for suite, report in sorted(reports.items()):
        env = report.env or {}
        print(
            f"{suite}: {len(report.results)} metric(s), commit "
            f"{report.commit[:12]}, {env.get('cores', '?')} core(s)"
        )
        if args.verbose:
            for result in report.results:
                direction = "^" if result.higher_is_better else "v"
                gate = f" (>= {result.min_cores} cores)" if result.min_cores else ""
                print(
                    f"    {result.name} = {result.value:.6g} {result.unit} "
                    f"{direction}{gate}"
                )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarking",
        description="Continuous benchmark harness: run drivers, record "
        "baselines, gate regressions.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run benchmark drivers via pytest")
    run.add_argument("suites", nargs="*", help="suite names (e.g. training micro_ops)")
    run.add_argument("--benchmarks-dir", default=DEFAULT_BENCHMARKS_DIR)
    run.add_argument(
        "--results-dir",
        default=None,
        help="override where drivers record reports (REPRO_BENCH_RESULTS_DIR)",
    )
    run.add_argument("-k", dest="keyword", default=None, help="pytest -k expression")
    run.add_argument(
        "--pytest-arg",
        dest="pytest_args",
        action="append",
        help="extra argument forwarded to pytest (repeatable)",
    )
    run.set_defaults(handler=cmd_run)

    cmp_parser = commands.add_parser(
        "compare", help="gate a candidate run against a recorded baseline"
    )
    cmp_parser.add_argument("baseline", help="baseline report file or results dir")
    cmp_parser.add_argument("candidate", help="candidate report file or results dir")
    cmp_parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PERCENT,
        help=f"allowed movement per metric in percent "
        f"(default {DEFAULT_THRESHOLD_PERCENT:.0f})",
    )
    cmp_parser.add_argument(
        "--metric-threshold",
        action="append",
        metavar="PATTERN=PERCENT",
        help="per-metric budget override, fnmatch pattern (repeatable)",
    )
    cmp_parser.add_argument("--mode", choices=COMPARE_MODES, default="auto")
    cmp_parser.add_argument(
        "--suite", action="append", help="only gate these suites (repeatable)"
    )
    cmp_parser.add_argument("--json", action="store_true", help="machine output")
    cmp_parser.set_defaults(handler=cmd_compare)

    record = commands.add_parser(
        "record", help="merge report files into the recorded baselines"
    )
    record.add_argument("reports", nargs="+", help="report JSON files to record")
    record.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    record.add_argument(
        "--replace",
        action="store_true",
        help="overwrite the recorded suite instead of merging by metric",
    )
    record.set_defaults(handler=cmd_record)

    lister = commands.add_parser("list", help="show recorded reports")
    lister.add_argument("results_dir", nargs="?", default=DEFAULT_RESULTS_DIR)
    lister.add_argument("--verbose", "-v", action="store_true")
    lister.set_defaults(handler=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
