"""Continuous benchmark harness: results, suites, recording and the gate.

The perf claims of PRs 1-6 (BLAS kernel speedups, sweep amortization,
arena training) were measured by one-off scripts hand-recording JSON — a
regression in any of them would have shipped silently.  This package turns
those scripts into a continuous harness:

* :class:`BenchmarkResult` / :class:`BenchmarkReport` — schema-versioned,
  machine-readable results with commit, timestamp and an environment
  fingerprint (core count included);
* :class:`Suite` / :func:`paired_ratios` / :func:`best_of` — the shared
  measurement protocols (paired alternating-order ratios, min-of-N);
* :func:`compare` — the regression gate, with per-metric noise thresholds,
  the ">= 4 cores" assertion convention and host-portability rules;
* :func:`record_report` — atomic, lease-locked recording under
  ``benchmarks/results/``;
* ``python -m repro.benchmarking`` — the ``run`` / ``compare`` / ``record``
  CLI that CI's ``bench-regression`` job drives.
"""

from repro.benchmarking.compare import (
    COMPARE_MODES,
    DEFAULT_THRESHOLD_PERCENT,
    ComparisonReport,
    MetricComparison,
    comparable_envs,
    compare,
)
from repro.benchmarking.recorder import (
    REPORT_PREFIX,
    load_report,
    load_reports,
    record_report,
    report_path,
)
from repro.benchmarking.report import (
    PORTABLE_UNITS,
    REPORT_SCHEMA_VERSION,
    BenchmarkReport,
    BenchmarkResult,
    current_commit,
    env_fingerprint,
)
from repro.benchmarking.suite import Suite, best_of, paired_ratios

__all__ = [
    "BenchmarkResult",
    "BenchmarkReport",
    "REPORT_SCHEMA_VERSION",
    "PORTABLE_UNITS",
    "current_commit",
    "env_fingerprint",
    "Suite",
    "best_of",
    "paired_ratios",
    "compare",
    "comparable_envs",
    "ComparisonReport",
    "MetricComparison",
    "COMPARE_MODES",
    "DEFAULT_THRESHOLD_PERCENT",
    "record_report",
    "load_report",
    "load_reports",
    "report_path",
    "REPORT_PREFIX",
]
