"""The shared benchmark runner: timing primitives and the :class:`Suite`.

Two measurement protocols, both lifted out of the one-off scripts that
used to hand-roll them:

:func:`best_of`
    Min-of-N wall-clock timing with a warm-up call — the right statistic
    for "how fast can this go" questions (minimum filters out scheduler
    noise, warm-up charges buffer allocation and BLAS thread spin-up to
    nobody).

:func:`paired_ratios`
    The paired-run comparison protocol from the training benchmarks:
    baseline and candidate run back-to-back in each round with
    *alternating order*, and the per-round time ratios are summarized by
    median and min.  Machine drift (thermal throttling, a neighbour VM
    waking up) hits both sides of a pair equally, so it cancels out of
    the ratio — the property that makes a recorded speedup trustworthy.

A :class:`Suite` strings measurements into one
:class:`~repro.benchmarking.report.BenchmarkReport`, stamping each metric
with its unit, direction and ``min_cores`` gate.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.benchmarking.report import (
    BenchmarkReport,
    BenchmarkResult,
    env_fingerprint,
)
from repro.errors import ConfigurationError


def best_of(fn: Callable[[], object], repeats: int = 3, warmup: int = 1) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` timed calls."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def paired_ratios(
    run_a: Callable[[], object],
    run_b: Callable[[], object],
    rounds: int = 10,
) -> Dict[str, float]:
    """min/median of per-round a/b time ratios, alternating call order.

    ``ratio_median > 1`` means *b is faster than a* — callers conventionally
    pass the baseline as ``run_a`` and the candidate as ``run_b``, so the
    ratio reads as the candidate's speedup.  Both runs are called once for
    warm-up (buffers, BLAS threads, page cache) before any round is timed.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    run_a(), run_b()  # warm both (buffers, BLAS threads, page cache)
    ratios = []
    times_a, times_b = [], []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            first, second = run_a, run_b
        else:
            first, second = run_b, run_a
        start = time.perf_counter()
        first()
        mid = time.perf_counter()
        second()
        end = time.perf_counter()
        if first is run_a:
            a, b = mid - start, end - mid
        else:
            b, a = mid - start, end - mid
        times_a.append(a)
        times_b.append(b)
        ratios.append(a / b)
    return {
        "ratio_median": float(np.median(ratios)),
        "ratio_min": float(np.min(ratios)),
        "a_best_s": float(np.min(times_a)),
        "b_best_s": float(np.min(times_b)),
    }


class Suite:
    """Collects one benchmark suite's metrics into a report.

    ::

        suite = Suite("training")
        suite.measure("lenet.epoch_s", lambda: trainer.fit(...))
        stats = suite.paired("lenet.arena", run_legacy, run_arena, rounds=10)
        record_report(suite.report(), results_dir)
    """

    def __init__(self, name: str, env_extra: Optional[dict] = None) -> None:
        self.name = name
        self.env_extra = dict(env_extra) if env_extra else None
        self.results: List[BenchmarkResult] = []

    # -------------------------------------------------------------- recording
    def record(
        self,
        name: str,
        value: float,
        unit: str = "s",
        higher_is_better: bool = False,
        min_cores: int = 0,
        **extra,
    ) -> BenchmarkResult:
        """Record one already-measured metric (replacing any same-named one)."""
        result = BenchmarkResult(
            name=name,
            value=float(value),
            unit=unit,
            higher_is_better=higher_is_better,
            min_cores=min_cores,
            extra=extra or None,
        )
        self.results = [r for r in self.results if r.name != name]
        self.results.append(result)
        return result

    def measure(
        self,
        name: str,
        fn: Callable[[], object],
        repeats: int = 3,
        warmup: int = 1,
        min_cores: int = 0,
        **extra,
    ) -> float:
        """Time ``fn`` with :func:`best_of` and record the seconds; returns them."""
        seconds = best_of(fn, repeats=repeats, warmup=warmup)
        self.record(
            name, seconds, unit="s", higher_is_better=False, min_cores=min_cores, **extra
        )
        return seconds

    def timed(self, name: str, fn: Callable[[], object], **extra):
        """Run ``fn`` once, record its wall-clock seconds, return its result.

        For expensive one-shot stages (a full figure panel through the
        Session) where best-of-N is unaffordable and the artifact store
        makes repeat runs incomparable anyway (the second run is a cache
        hit).
        """
        start = time.perf_counter()
        value = fn()
        self.record(name, time.perf_counter() - start, unit="s", **extra)
        return value

    def paired(
        self,
        name: str,
        baseline: Callable[[], object],
        candidate: Callable[[], object],
        rounds: int = 10,
        min_cores: int = 0,
    ) -> Dict[str, float]:
        """Run the paired-ratio protocol and record its four metrics.

        Records ``<name>.speedup_median`` / ``<name>.speedup_min`` (ratio,
        higher is better — portable across hosts) and
        ``<name>.baseline_best_s`` / ``<name>.candidate_best_s`` (absolute
        times, host-bound).  Returns the raw stats dict of
        :func:`paired_ratios`.
        """
        stats = paired_ratios(baseline, candidate, rounds=rounds)
        self.record(
            f"{name}.speedup_median",
            stats["ratio_median"],
            unit="ratio",
            higher_is_better=True,
            min_cores=min_cores,
        )
        self.record(
            f"{name}.speedup_min",
            stats["ratio_min"],
            unit="ratio",
            higher_is_better=True,
            min_cores=min_cores,
        )
        self.record(f"{name}.baseline_best_s", stats["a_best_s"], unit="s")
        self.record(f"{name}.candidate_best_s", stats["b_best_s"], unit="s")
        return stats

    # ----------------------------------------------------------------- report
    def report(self) -> BenchmarkReport:
        """The collected metrics as a fresh :class:`BenchmarkReport`."""
        return BenchmarkReport(
            suite=self.name,
            results=list(self.results),
            env=env_fingerprint(self.env_extra),
        )
