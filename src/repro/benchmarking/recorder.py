"""Race-free recording of benchmark reports under ``benchmarks/results/``.

Two failure modes corrupted recorded baselines before this module existed:

* **Torn writes** — results were dumped with a plain ``open(path, "w")``,
  so an interrupt mid-dump left invalid JSON as the baseline the next
  regression check would read.  Every write here goes through the artifact
  store's atomic temp-file + ``os.replace`` path (with its ``store.write``
  fault seam and transient-IO retries).
* **Merge races** — drivers that contribute *sections* to one suite file
  did read-modify-write with no lock, so concurrent CI matrix entries
  clobbered each other's sections, and a corrupt history file was
  silently discarded.  :func:`record_report` wraps the read-merge-write in
  a single-writer :class:`~repro.experiments.store.Lease` on a sidecar
  lock file, and an unreadable history is *warned about* (then rebuilt)
  instead of vanishing without a trace.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Dict, Optional

from repro.benchmarking.report import BenchmarkReport
from repro.errors import ConfigurationError
from repro.experiments.store import Lease
from repro.resilience import Deadline

logger = logging.getLogger("repro.benchmarking")

#: prefix of recorded suite report files (``BENCH_<suite>.json``)
REPORT_PREFIX = "BENCH_"

#: how long a writer may hold the results-file lock before it is presumed
#: crashed and taken over (recording is a read-merge-write of one JSON file,
#: so seconds suffice)
LOCK_TTL_S = 30.0

#: how long :func:`record_report` waits for a concurrent writer
LOCK_WAIT_S = 60.0


def report_path(results_dir: str, suite: str) -> str:
    """Where one suite's report lives: ``<results_dir>/BENCH_<suite>.json``."""
    if not suite or "/" in suite:
        raise ConfigurationError(f"suite must be a simple name, got {suite!r}")
    return os.path.join(results_dir, f"{REPORT_PREFIX}{suite}.json")


def load_report(path: str, on_error: str = "raise") -> Optional[BenchmarkReport]:
    """Load a recorded report; ``None`` when the file does not exist.

    ``on_error="warn"`` turns unreadable or schema-incompatible files into
    a logged warning plus ``None`` — used by the recorder so a corrupted
    history is surfaced (and then rebuilt) rather than silently discarded
    or allowed to crash the recording run.
    """
    if on_error not in ("raise", "warn"):
        raise ConfigurationError(f"on_error must be 'raise' or 'warn', got {on_error!r}")
    if not os.path.exists(path):
        return None
    try:
        return BenchmarkReport.load(path)
    except (OSError, ConfigurationError) as exc:
        if on_error == "raise":
            raise
        logger.warning(
            "recorded benchmark history %s is unreadable (%s); rebuilding it "
            "from this run only",
            path,
            exc,
        )
        return None


def load_reports(results_dir: str) -> Dict[str, BenchmarkReport]:
    """Every ``BENCH_*.json`` report in a directory, keyed by suite name.

    Non-report JSON files in the directory (measured figure grids, ad-hoc
    payloads) are ignored by the filename convention; report files that
    fail to parse are skipped with a warning.
    """
    reports: Dict[str, BenchmarkReport] = {}
    if not os.path.isdir(results_dir):
        return reports
    for name in sorted(os.listdir(results_dir)):
        if not (name.startswith(REPORT_PREFIX) and name.endswith(".json")):
            continue
        report = load_report(os.path.join(results_dir, name), on_error="warn")
        if report is not None:
            reports[report.suite] = report
    return reports


def record_report(
    report: BenchmarkReport,
    results_dir: str,
    merge: bool = True,
    lock_wait_s: float = LOCK_WAIT_S,
) -> str:
    """Record one suite's report under ``results_dir``; returns the path.

    Holds a file lock (a store :class:`Lease` on ``<path>.lock``) around
    the read-merge-write so concurrent writers — CI matrix entries
    recording different sections of the same suite — serialize instead of
    clobbering each other.  When the lock cannot be claimed within
    ``lock_wait_s`` the write proceeds anyway with a warning: the atomic
    write still cannot tear the file, the worst case is losing the race's
    older sections, and a benchmark run must not hang forever on a stale
    lock.
    """
    os.makedirs(results_dir, exist_ok=True)
    path = report_path(results_dir, report.suite)
    lock = Lease(path + ".lock", ttl_s=LOCK_TTL_S)
    deadline = Deadline(lock_wait_s)
    acquired = lock.acquire()
    while not acquired and not deadline.expired():
        time.sleep(0.05)
        acquired = lock.acquire()
    if not acquired:
        logger.warning(
            "could not claim %s within %.0fs; recording without the lock",
            lock.path,
            lock_wait_s,
        )
    try:
        existing = load_report(path, on_error="warn") if merge else None
        if existing is not None:
            existing.merge(report)
            final = existing
        else:
            final = report
        final.save(path)
    finally:
        if acquired:
            lock.release()
    return path
