"""Entry point for ``python -m repro.benchmarking``."""

import sys

from repro.benchmarking.cli import main

sys.exit(main())
