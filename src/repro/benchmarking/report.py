"""Machine-readable benchmark results: :class:`BenchmarkResult` and
:class:`BenchmarkReport`.

Every benchmark driver in ``benchmarks/`` emits one schema-versioned
:class:`BenchmarkReport` per suite under ``benchmarks/results/`` (through
the artifact store's atomic write path, so an interrupted run can never
leave a torn baseline behind).  A report carries everything the regression
gate needs to decide whether two runs are comparable:

* the producing **commit** and a **timestamp**;
* an **environment fingerprint** — python/numpy versions, platform,
  *core count* and hostname — because wall-clock metrics recorded on a
  1-core container are not comparable to a 4-core CI runner;
* per-metric **value + unit + direction** (``higher_is_better``) plus the
  ``min_cores`` gate of the repo's "assert speedup only on >= 4 cores"
  convention.

The schema is versioned (:data:`REPORT_SCHEMA_VERSION`); loading a report
written by a *newer* schema raises instead of silently misreading it.
"""

from __future__ import annotations

import math
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.store import atomic_write_json

#: current schema version of serialized benchmark reports
REPORT_SCHEMA_VERSION = 1

#: units whose values are dimensionless and therefore machine-portable —
#: a speedup ratio measured on one host is comparable to the same ratio on
#: another, while raw seconds are not (see :func:`repro.benchmarking.compare`)
PORTABLE_UNITS = frozenset({"ratio", "x", "percent", "count"})


def current_commit() -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout.

    ``GITHUB_SHA`` (set by CI even in shallow/detached checkouts) wins over
    asking git, which wins over giving up.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def env_fingerprint(extra: Optional[dict] = None) -> dict:
    """The measuring machine's fingerprint recorded with every report.

    ``cores`` is the load-bearing field: the compare engine refuses to gate
    wall-clock metrics across differing core counts and applies the
    ``min_cores`` convention with it.  The kernel-backend fields
    (``kernel_backend`` / ``kernel_backend_env`` / ``numba``) record which
    compiled tier produced the numbers, so baseline comparisons never
    silently mix a Numba run against a pure-NumPy one.  ``extra`` merges in
    run-specific knobs (e.g. the ``REPRO_BENCH_*`` scale settings).
    """
    import numpy as np

    from repro.axnn.native import native_fingerprint

    fingerprint = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cores": os.cpu_count() or 1,
        "hostname": socket.gethostname(),
    }
    fingerprint.update(native_fingerprint())
    if extra:
        fingerprint.update(extra)
    return fingerprint


@dataclass(frozen=True)
class BenchmarkResult:
    """One measured metric: value, unit and how to judge a change.

    ``higher_is_better`` orients the regression check (throughput and
    speedup ratios improve upward, wall-clock times downward);
    ``min_cores`` marks metrics that only carry signal on multi-core hosts
    (sharding speedups record parity on 1 core by design, so the gate
    skips them there); ``extra`` is free-form context that is stored but
    never compared.
    """

    name: str
    value: float
    unit: str = "s"
    higher_is_better: bool = False
    min_cores: int = 0
    extra: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"metric name must be a string, got {self.name!r}")
        if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
            raise ConfigurationError(
                f"metric {self.name}: value must be a number, got {self.value!r}"
            )
        if not math.isfinite(self.value):
            raise ConfigurationError(
                f"metric {self.name}: value must be finite, got {self.value!r}"
            )
        if not self.unit or not isinstance(self.unit, str):
            raise ConfigurationError(f"metric {self.name}: unit must be a string")
        if not isinstance(self.min_cores, int) or self.min_cores < 0:
            raise ConfigurationError(
                f"metric {self.name}: min_cores must be an int >= 0"
            )

    @property
    def portable(self) -> bool:
        """Whether the metric is dimensionless (comparable across hosts)."""
        return self.unit in PORTABLE_UNITS

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "value": float(self.value),
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "min_cores": self.min_cores,
        }
        if self.extra:
            payload["extra"] = self.extra
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchmarkResult":
        if not isinstance(payload, dict):
            raise ConfigurationError(f"benchmark result must be a dict, got {payload!r}")
        unknown = set(payload) - {
            "name", "value", "unit", "higher_is_better", "min_cores", "extra"
        }
        if unknown:
            raise ConfigurationError(
                f"benchmark result has unknown keys: {sorted(unknown)}"
            )
        return cls(
            name=payload.get("name"),
            value=payload.get("value"),
            unit=payload.get("unit", "s"),
            higher_is_better=bool(payload.get("higher_is_better", False)),
            min_cores=int(payload.get("min_cores", 0)),
            extra=payload.get("extra"),
        )


@dataclass
class BenchmarkReport:
    """One suite's measured metrics plus the provenance to compare them.

    Results are keyed by metric name — :meth:`add` replaces an existing
    metric of the same name (last measurement wins), so re-running a
    single test updates its metrics without disturbing the rest of the
    suite's recorded baseline.
    """

    suite: str
    results: List[BenchmarkResult] = field(default_factory=list)
    schema_version: int = REPORT_SCHEMA_VERSION
    commit: str = field(default_factory=current_commit)
    timestamp: float = field(default_factory=time.time)
    env: dict = field(default_factory=env_fingerprint)

    def __post_init__(self) -> None:
        if not self.suite or not isinstance(self.suite, str):
            raise ConfigurationError(f"suite must be a name, got {self.suite!r}")

    # --------------------------------------------------------------- metrics
    def add(self, result: BenchmarkResult) -> BenchmarkResult:
        """Add (or replace, by name) one metric; returns it."""
        self.results = [r for r in self.results if r.name != result.name]
        self.results.append(result)
        return result

    def metric(self, name: str) -> Optional[BenchmarkResult]:
        """The named metric, or ``None``."""
        for result in self.results:
            if result.name == name:
                return result
        return None

    def metric_names(self) -> Tuple[str, ...]:
        return tuple(result.name for result in self.results)

    def merge(self, incoming: "BenchmarkReport") -> "BenchmarkReport":
        """Fold a newer report of the same suite into this one (in place).

        Incoming metrics win by name; untouched metrics survive — this is
        how concurrent CI matrix entries each contribute their section of
        one suite file without clobbering the others (the recorder holds a
        file lock around the read-merge-write).  Provenance (commit,
        timestamp, env) follows the incoming run.
        """
        if incoming.suite != self.suite:
            raise ConfigurationError(
                f"cannot merge suite {incoming.suite!r} into {self.suite!r}"
            )
        for result in incoming.results:
            self.add(result)
        self.commit = incoming.commit
        self.timestamp = incoming.timestamp
        self.env = dict(incoming.env)
        return self

    # ----------------------------------------------------------------- (de)ser
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "commit": self.commit,
            "timestamp": self.timestamp,
            "env": dict(self.env),
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchmarkReport":
        if not isinstance(payload, dict):
            raise ConfigurationError(f"benchmark report must be a dict, got {payload!r}")
        version = payload.get("schema_version")
        if not isinstance(version, int):
            raise ConfigurationError(
                "not a benchmark report: missing integer schema_version"
            )
        if version > REPORT_SCHEMA_VERSION:
            raise ConfigurationError(
                f"benchmark report schema v{version} is newer than this code "
                f"understands (v{REPORT_SCHEMA_VERSION}); refusing to misread it"
            )
        report = cls(
            suite=payload.get("suite"),
            results=[BenchmarkResult.from_dict(r) for r in payload.get("results", [])],
            schema_version=version,
            commit=payload.get("commit", "unknown"),
            timestamp=float(payload.get("timestamp", 0.0)),
            env=dict(payload.get("env", {})),
        )
        return report

    def save(self, path: str) -> str:
        """Write the report atomically (temp + replace); returns the path."""
        atomic_write_json(path, self.to_dict())
        return path

    @classmethod
    def load(cls, path: str) -> "BenchmarkReport":
        """Load a report; raises on unreadable files or unknown schemas."""
        import json

        with open(path) as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ConfigurationError(
                    f"benchmark report {path} is not valid JSON: {exc}"
                ) from exc
        return cls.from_dict(payload)
