"""Build-and-load machinery for the tiny C kernel extension.

``kernels.c`` (next to this module) is compiled on first use with whatever C
compiler the host offers (``cc``/``gcc``/``clang``, ``-O3 -shared``) into a
shared object cached under ``$REPRO_NATIVE_CACHE`` (default
``~/.cache/repro/native``).  The cache file name embeds a hash of the C
source, so editing the kernels invalidates stale builds and concurrent
processes converge on one artifact; the build itself writes to a temporary
name and ``os.replace``s it into place, so a crashed compile can never leave
a torn library behind.

The loaded functions are plain ``ctypes`` foreign calls: ctypes drops the
GIL for the duration of each call, which is what lets the threaded inference
runtime (:mod:`repro.nn.runtime`) shard batches over these kernels with real
parallelism — the property the scipy.sparse path never had.

Everything degrades cleanly: no compiler, a failing compile, or an
unloadable artifact raise :class:`NativeBuildError`, which the backend
resolver (:mod:`repro.axnn.native`) turns into a fall-back to the NumPy
reference implementations.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np
from numpy.ctypeslib import ndpointer

#: environment variable overriding where compiled kernels are cached
CACHE_ENV_VAR = "REPRO_NATIVE_CACHE"

#: compilers probed in order; the first one present on PATH is used
_COMPILERS = ("cc", "gcc", "clang")

#: optimisation flags — deliberately *without* -ffast-math: C forbids
#: reassociating float additions at -O3, which is load-bearing for the
#: col2im kernel's bit-identity with the NumPy reference loop
_CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99")

_SOURCE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernels.c")


class NativeBuildError(RuntimeError):
    """The C kernel library could not be built or loaded on this host."""


def _i8(flags="C_CONTIGUOUS"):
    return ndpointer(dtype=np.int8, flags=flags)


def _u8(flags="C_CONTIGUOUS"):
    return ndpointer(dtype=np.uint8, flags=flags)


def cache_dir() -> str:
    """Directory holding compiled kernel libraries."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")


def _source_digest() -> str:
    with open(_SOURCE_PATH, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()[:16]


def find_compiler() -> Optional[str]:
    """Path of the first available C compiler, or ``None``."""
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def build_library() -> str:
    """Compile (or reuse) the kernel shared object; returns its path.

    Raises :class:`NativeBuildError` when no compiler exists or the compile
    fails.  The build is atomic (temp file + ``os.replace``), so concurrent
    first-touch builds in separate processes race benignly: both produce the
    same bytes for the same source hash and the last rename wins.
    """
    directory = cache_dir()
    library = os.path.join(directory, f"repro_kernels_{_source_digest()}.so")
    if os.path.exists(library):
        return library
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            f"no C compiler found (tried {', '.join(_COMPILERS)})"
        )
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(suffix=".so", dir=directory)
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, *_CFLAGS, "-o", temp_path, _SOURCE_PATH],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"{compiler} failed (exit {proc.returncode}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(temp_path, library)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeBuildError(f"compiling native kernels failed: {exc}") from exc
    finally:
        if os.path.exists(temp_path):
            try:
                os.unlink(temp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return library


def load_library(path: Optional[str] = None) -> ctypes.CDLL:
    """Load the compiled library and declare every kernel's signature."""
    if path is None:
        path = build_library()
    try:
        lib = ctypes.CDLL(path)
    except OSError as exc:
        raise NativeBuildError(f"loading {path} failed: {exc}") from exc
    i64 = ctypes.c_int64
    for suffix, lut_dtype in (("i16", np.int16), ("i32", np.int32)):
        fn = getattr(lib, f"repro_lut_matmul_{suffix}")
        fn.restype = None
        fn.argtypes = [
            _u8(),  # codes (M, K)
            _i8(),  # sign (K, N)
            _u8(),  # mag (K, N)
            ndpointer(dtype=lut_dtype, flags="C_CONTIGUOUS"),  # lut (C, C)
            i64, i64, i64, i64,  # m, k, n, lut_cols
            ndpointer(dtype=np.int64, flags="C_CONTIGUOUS,WRITEABLE"),  # out
        ]
    col2im = lib.repro_col2im_f64
    col2im.restype = None
    col2im.argtypes = [
        ndpointer(dtype=np.float64, flags="C_CONTIGUOUS"),  # cols
        i64, i64, i64,  # batch, out_h, out_w
        i64, i64, i64, i64,  # kh, kw, channels, stride
        i64, i64,  # padded_h, padded_w
        ndpointer(dtype=np.float64, flags="C_CONTIGUOUS,WRITEABLE"),  # out
    ]
    return lib


def lut_matmul(lib: ctypes.CDLL, codes, sign, mag, lut, out) -> None:
    """Dispatch the LUT matmul to the i16 or i32 entry point by LUT dtype."""
    m, k = codes.shape
    n = out.shape[1]
    if lut.dtype == np.int16:
        fn = lib.repro_lut_matmul_i16
    else:
        fn = lib.repro_lut_matmul_i32
    fn(codes, sign, mag, lut, m, k, n, lut.shape[1], out)


def col2im_add(lib: ctypes.CDLL, cols, out, kernel_h, kernel_w, stride,
               out_h, out_w) -> None:
    """Scatter-add ``cols`` into the pre-zeroed padded image ``out``."""
    batch, padded_h, padded_w, channels = out.shape
    lib.repro_col2im_f64(
        cols, batch, out_h, out_w, kernel_h, kernel_w, channels, stride,
        padded_h, padded_w, out,
    )
