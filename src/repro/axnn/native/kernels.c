/* Native hot loops of the approximate-DNN reproduction.
 *
 * Compiled on first use by repro.axnn.native.cext (cc -O3 -shared) and
 * loaded through ctypes, which releases the GIL for the duration of every
 * call.  Each function is the exact integer/float semantics of its NumPy
 * reference — see the bit-identity notes on each kernel; the property tests
 * in tests/test_native_kernels.py enforce them.
 *
 * Layout contract: every array argument is C-contiguous; the Python wrapper
 * (cext.py) declares ndpointer argtypes with the C_CONTIGUOUS flag, so a
 * strided array can never reach these loops.
 */

#include <stdint.h>

/* Column-block width of the LUT matmul: the sign/magnitude blocks
 * (K * NB bytes each) and the int64 accumulator row stay cache-resident
 * while the code row streams once per output row. */
#define LUT_MATMUL_NB 128

/* result[m, n] = sum_k sign[k, n] * lut[codes[m, k] * lut_cols + mag[k, n]]
 *
 * All arithmetic is int64 accumulation of exact integer products, so the
 * result is bit-identical to the gather reference regardless of summation
 * order.  Operands are packed to 8 bits (codes/mag unsigned, sign in
 * {-1, 0, 1}) and the LUT to 16 or 32 bits by the caller — the "int8/int16
 * accumulation" tier: half to a quarter of the reference path's memory
 * traffic, cache-blocked over output columns.
 */
#define DEFINE_LUT_MATMUL(SUFFIX, LUT_T)                                      \
void repro_lut_matmul_##SUFFIX(                                               \
    const uint8_t *codes, const int8_t *sign, const uint8_t *mag,             \
    const LUT_T *lut, int64_t m_dim, int64_t k_dim, int64_t n_dim,            \
    int64_t lut_cols, int64_t *out)                                           \
{                                                                             \
    for (int64_t n0 = 0; n0 < n_dim; n0 += LUT_MATMUL_NB) {                   \
        int64_t nb = n_dim - n0;                                              \
        if (nb > LUT_MATMUL_NB) nb = LUT_MATMUL_NB;                           \
        for (int64_t m = 0; m < m_dim; m++) {                                 \
            int64_t acc[LUT_MATMUL_NB];                                       \
            for (int64_t j = 0; j < nb; j++) acc[j] = 0;                      \
            const uint8_t *code_row = codes + m * k_dim;                      \
            for (int64_t k = 0; k < k_dim; k++) {                             \
                const LUT_T *lut_row = lut + (int64_t)code_row[k] * lut_cols; \
                const int8_t *sign_row = sign + k * n_dim + n0;               \
                const uint8_t *mag_row = mag + k * n_dim + n0;                \
                for (int64_t j = 0; j < nb; j++)                              \
                    acc[j] += (int64_t)sign_row[j]                            \
                            * (int64_t)lut_row[mag_row[j]];                   \
            }                                                                 \
            int64_t *out_row = out + m * n_dim + n0;                          \
            for (int64_t j = 0; j < nb; j++) out_row[j] = acc[j];             \
        }                                                                     \
    }                                                                         \
}

DEFINE_LUT_MATMUL(i16, int16_t)
DEFINE_LUT_MATMUL(i32, int32_t)

/* The col2im scatter-add: fold an im2col patch matrix
 * cols (batch, out_h, out_w, kh*kw*channels) back into the zero-initialised
 * padded image out (batch, padded_h, padded_w, channels).
 *
 * Formulated as a gather over output pixels (one write pass instead of the
 * reference's kh*kw strided read-modify-write passes).  Bit-identity with
 * the NumPy loop needs only the *per-element* addition order to match: the
 * reference adds each element's contributions in ascending (i, j) kernel
 * offset order, and the i / j loops below visit them in exactly that order.
 */
void repro_col2im_f64(
    const double *cols, int64_t batch, int64_t out_h, int64_t out_w,
    int64_t kh, int64_t kw, int64_t channels, int64_t stride,
    int64_t padded_h, int64_t padded_w, double *out)
{
    const int64_t patch = kh * kw * channels;
    for (int64_t b = 0; b < batch; b++) {
        const double *cols_b = cols + b * out_h * out_w * patch;
        double *out_b = out + b * padded_h * padded_w * channels;
        for (int64_t hp = 0; hp < padded_h; hp++) {
            for (int64_t i = 0; i < kh; i++) {
                int64_t oh_num = hp - i;
                if (oh_num < 0 || oh_num % stride) continue;
                int64_t oh = oh_num / stride;
                if (oh >= out_h) continue;
                for (int64_t wp = 0; wp < padded_w; wp++) {
                    double *out_row = out_b + (hp * padded_w + wp) * channels;
                    for (int64_t j = 0; j < kw; j++) {
                        int64_t ow_num = wp - j;
                        if (ow_num < 0 || ow_num % stride) continue;
                        int64_t ow = ow_num / stride;
                        if (ow >= out_w) continue;
                        const double *col_row = cols_b
                            + (oh * out_w + ow) * patch
                            + (i * kw + j) * channels;
                        for (int64_t c = 0; c < channels; c++)
                            out_row[c] += col_row[c];
                    }
                }
            }
        }
    }
}
