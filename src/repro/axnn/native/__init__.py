"""Optional compiled backend for the three remaining hot loops.

The approximate-DNN reproduction keeps pure NumPy as its always-available
reference implementation; this package layers a *native* tier on top:

* ``numba_backend`` — njit kernels, used when Numba is importable;
* ``cext`` — a tiny C extension compiled on first use with the host's C
  compiler and called through ctypes (GIL released for the whole call).

Backend choice is governed by ``REPRO_KERNEL_BACKEND``:

* ``auto`` (default) — Numba if importable, else the C extension if a
  compiler is available, else pure NumPy;
* ``numba`` — require Numba; warn and fall back to NumPy when absent;
* ``cext`` — require the C extension; warn and fall back when unbuildable;
* ``numpy`` — force the reference implementations (native tier disabled).

Resolution happens once, on first use, behind a lock (the double-checked
pattern shared with :class:`repro.axnn.kernels.MultiplierKernelProfile` and
``nn/runtime.ProcessShardPool``), so first-touch compilation is
thread-safe.  ``reset_backend()`` drops the cached resolution — it is
invoked from :func:`repro.axnn.kernels.clear_profile_cache` so tests can
flip the environment variable and re-resolve.

This module must stay importable from :mod:`repro.nn.functional` without
creating a cycle, so it imports nothing from the :mod:`repro.axnn`
namespace — only stdlib, NumPy, and :mod:`repro.errors`.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError

#: environment variable selecting the kernel backend
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: recognised values for the env var (aliases normalised first)
BACKEND_CHOICES = ("auto", "numba", "cext", "numpy")

_ALIASES = {
    "": "auto",
    "default": "auto",
    "jit": "numba",
    "c": "cext",
    "ctypes": "cext",
    "native": "auto",
    "reference": "numpy",
    "none": "numpy",
    "off": "numpy",
}


@dataclass(frozen=True)
class NativeBackend:
    """A resolved compiled backend: a name plus the two kernel entry points.

    ``lut_matmul(codes_u8, sign_i8, mag_u8, lut, out_i64)`` accumulates the
    signed LUT product into ``out`` (all arrays C-contiguous, LUT int16 or
    int32).  ``col2im_add(cols, out, kh, kw, stride, out_h, out_w)``
    scatter-adds an im2col patch matrix into the pre-zeroed padded image
    ``out``.  Both are bit-identical to their NumPy references.
    """

    name: str
    lut_matmul: Callable
    col2im_add: Callable


_STATE_LOCK = threading.Lock()
_RESOLVED = False
_BACKEND: Optional[NativeBackend] = None


def requested_backend() -> str:
    """The backend named by ``REPRO_KERNEL_BACKEND``, normalised.

    Raises :class:`ConfigurationError` for unrecognised values — a typo in
    the env var should fail loudly, not silently run the slow path.
    """
    raw = os.environ.get(BACKEND_ENV_VAR, "auto").strip().lower()
    choice = _ALIASES.get(raw, raw)
    if choice not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"{BACKEND_ENV_VAR}={raw!r} is not a valid kernel backend; "
            f"expected one of {', '.join(BACKEND_CHOICES)}"
        )
    return choice


def _load_numba() -> NativeBackend:
    from repro.axnn.native import numba_backend

    return NativeBackend(
        name="numba",
        lut_matmul=numba_backend.lut_matmul,
        col2im_add=numba_backend.col2im_add,
    )


def _load_cext() -> NativeBackend:
    from repro.axnn.native import cext

    lib = cext.load_library()
    return NativeBackend(
        name="cext",
        lut_matmul=lambda codes, sign, mag, lut, out: cext.lut_matmul(
            lib, codes, sign, mag, lut, out
        ),
        col2im_add=lambda cols, out, kh, kw, stride, oh, ow: cext.col2im_add(
            lib, cols, out, kh, kw, stride, oh, ow
        ),
    )


def _resolve() -> Optional[NativeBackend]:
    choice = requested_backend()
    if choice == "numpy":
        return None
    if choice in ("auto", "numba"):
        try:
            return _load_numba()
        except ImportError:
            if choice == "numba":
                warnings.warn(
                    f"{BACKEND_ENV_VAR}=numba but Numba is not importable; "
                    "falling back to the pure-NumPy reference kernels",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
    # choice is "cext", or "auto" with Numba unavailable
    from repro.axnn.native.cext import NativeBuildError

    try:
        return _load_cext()
    except NativeBuildError as exc:
        if choice == "cext":
            warnings.warn(
                f"{BACKEND_ENV_VAR}=cext but the C extension is "
                f"unavailable ({exc}); falling back to the pure-NumPy "
                "reference kernels",
                RuntimeWarning,
                stacklevel=3,
            )
        return None


def get_backend() -> Optional[NativeBackend]:
    """The resolved native backend, or ``None`` for pure NumPy.

    First call resolves (possibly compiling) under a lock; later calls
    return the cached result.  Safe to call from shard worker threads.
    """
    global _RESOLVED, _BACKEND
    if _RESOLVED:
        return _BACKEND
    with _STATE_LOCK:
        if not _RESOLVED:
            _BACKEND = _resolve()
            _RESOLVED = True
    return _BACKEND


def reset_backend() -> None:
    """Forget the resolved backend so the next use re-reads the env var."""
    global _RESOLVED, _BACKEND
    with _STATE_LOCK:
        _RESOLVED = False
        _BACKEND = None


def backend_name() -> str:
    """Resolved backend name: ``numba``, ``cext`` or ``numpy``."""
    backend = get_backend()
    return backend.name if backend is not None else "numpy"


def native_fingerprint() -> dict:
    """Backend facts for :func:`repro.benchmarking.report.env_fingerprint`.

    Records both the request (env var) and the resolution, plus the Numba
    version when present, so recorded baselines can never silently mix
    kernel backends.
    """
    try:
        resolved = backend_name()
    except ConfigurationError:
        resolved = "invalid"
    try:
        import numba  # type: ignore

        numba_version = numba.__version__
    except ImportError:
        numba_version = "absent"
    return {
        "kernel_backend": resolved,
        "kernel_backend_env": os.environ.get(BACKEND_ENV_VAR, "auto"),
        "numba": numba_version,
    }


__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_ENV_VAR",
    "NativeBackend",
    "backend_name",
    "get_backend",
    "native_fingerprint",
    "requested_backend",
    "reset_backend",
]
