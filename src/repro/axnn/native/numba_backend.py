"""Numba njit mirrors of the C kernels in ``kernels.c``.

Importing this module raises :class:`ImportError` when Numba is absent; the
backend resolver (:mod:`repro.axnn.native`) catches that and falls through
to the ctypes/C backend or the NumPy reference.  The kernels are compiled
lazily on first call (``cache=True`` persists the machine code in Numba's
on-disk cache) and run with ``nogil=True`` so the threaded inference runtime
shards batches over them with real parallelism, exactly like the ctypes
path.

The loop structure intentionally mirrors ``kernels.c`` line for line —
int64 accumulation for the LUT matmul (order-independent, hence exact; the
``sign * lut`` product itself cannot overflow the LUT dtype because sign is
in {-1, 0, 1} and the packer rejects tables with |value| >= 2**31) and
ascending (i, j) per-element addition order for col2im (which is what makes
the float path bit-identical to the NumPy reference loop).
"""

from __future__ import annotations

import numba  # noqa: F401 - presence check; ImportError gates this backend
from numba import njit

#: column-block width, matching LUT_MATMUL_NB in kernels.c
_BLOCK = 128


@njit(cache=True, nogil=True)
def lut_matmul(codes, sign, mag, lut, out):  # pragma: no cover - jitted
    m_dim, k_dim = codes.shape
    n_dim = out.shape[1]
    for n0 in range(0, n_dim, _BLOCK):
        n1 = min(n0 + _BLOCK, n_dim)
        for m in range(m_dim):
            for j in range(n0, n1):
                out[m, j] = 0
            for k in range(k_dim):
                code = codes[m, k]
                for j in range(n0, n1):
                    out[m, j] += sign[k, j] * lut[code, mag[k, j]]
    return out


@njit(cache=True, nogil=True)
def col2im_add(cols, out, kernel_h, kernel_w, stride, out_h, out_w):
    # pragma: no cover - jitted
    batch, padded_h, padded_w, channels = out.shape
    for b in range(batch):
        for hp in range(padded_h):
            for i in range(kernel_h):
                oh_num = hp - i
                if oh_num < 0 or oh_num % stride:
                    continue
                oh = oh_num // stride
                if oh >= out_h:
                    continue
                for wp in range(padded_w):
                    for j in range(kernel_w):
                        ow_num = wp - j
                        if ow_num < 0 or ow_num % stride:
                            continue
                        ow = ow_num // stride
                        if ow >= out_w:
                            continue
                        base = (i * kernel_w + j) * channels
                        for c in range(channels):
                            out[b, hp, wp, c] += cols[b, oh, ow, base + c]
    return out


def numba_version() -> str:
    """Version string of the Numba runtime backing these kernels."""
    return numba.__version__
