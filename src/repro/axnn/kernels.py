"""Pluggable BLAS-backed kernels for the approximate LUT matmul.

The hot loop of the whole reproduction is the integer product

    result[m, n] = sum_k sign[k, n] * LUT[A[m, k], mag[k, n]]

where ``A`` holds unsigned activation codes and ``(sign, mag)`` is the
sign-magnitude weight decomposition.  The reference implementation
(:func:`repro.axnn.approx_ops.approx_matmul`) evaluates it by materialising
an ``(m, K, N)`` gather tensor — correct, but every downstream sweep
(accuracy grids, PGD/decision attacks, transferability matrices) pays for
that fancy-indexing loop.  This module provides interchangeable,
*bit-identical* kernel strategies that route the same accumulation through
float64 BLAS instead:

``gather``
    The legacy chunked LUT-gather loop, kept as the reference semantics.

``percode``
    The per-code BLAS decomposition ``result = sum_c onehot(A == c) @ T_c``
    with ``T_c[k, n] = sign[k, n] * LUT[c, mag[k, n]]``: at most ``2**bits``
    float64 matmuls over only the codes actually present in the batch.
    When the LUT admits an exact integer rank factorisation
    ``LUT = sum_i outer(f_i, g_i)`` (true for the exact, operand-truncation,
    partial-product-truncation, DRUM and mirror-adder array multipliers),
    the one-hot sum collapses through the LUT's row space into ``r`` fused
    BLAS products ``sum_i f_i[A] @ (sign * g_i[mag])`` — a single ``dgemm``
    for the rank-1 truncation/DRUM families.

``errorcorrection``
    ``exact_matmul(A, W)`` via one BLAS product plus a correction drawn from
    the multiplier's ``error_lut()`` restricted to its nonzero structure
    (low-rank factors of the error table when they exist, otherwise only the
    error-active codes present in the batch).  Near-free for mild
    multipliers whose error tables are mostly zero or low-rank.

``sparse``
    The per-code one-hot sum evaluated as a *single* scipy.sparse matmul:
    the activation codes become one CSR one-hot matrix ``S`` of shape
    ``(M, 2**bits * K)`` with exactly ``K`` ones per row, and the weights
    become one stacked table ``T[c*K + k, n] = sign[k, n] * LUT[c,
    mag[k, n]]`` built once per layer (chunked over the codes present in
    the batch when the full stack exceeds a byte budget).  All arithmetic
    is int64, so the result is exact by construction.  This is the escape
    hatch for *full-rank* LUTs (the compressor-tree circuits M6/M9/A4/A8,
    Mitchell, noisy-LSB) that admit no low-rank factorisation: it does
    ``M*K`` row-accumulations instead of ``2**bits`` dense one-hot matmuls
    or the reference gather's fancy-indexed ``(m, K, N)`` tensor.

``exact``
    A plain rounded float64 BLAS product; only valid for bit-exact
    multipliers (the quantized accurate DNN).

``native``
    The compiled hot loop from :mod:`repro.axnn.native` (Numba njit or the
    ctypes C extension, selected by ``REPRO_KERNEL_BACKEND``): operands
    packed to 8 bits, the LUT to 16 or 32, accumulation in int64 with
    cache blocking over output columns, GIL released for the whole call.
    Only constructible when a native backend resolved; ``auto`` prefers it
    over ``sparse`` for full-rank LUTs and ignores it otherwise (the
    low-rank BLAS decompositions already beat a scalar loop).

All BLAS paths operate on integer-valued float64 operands whose partial sums
are provably below 2**53, so the rounded accumulators are bit-identical to
the gather reference; kernels verify that bound at construction time and
fall back to an always-safe formulation when it cannot be guaranteed.  The
sparse and native paths accumulate in integers, so they are exact by
construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

try:  # scipy ships with the toolchain; degrade to gather if it ever vanishes
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy is a baked-in dependency
    _scipy_sparse = None

from repro.errors import ConfigurationError, ShapeError
from repro.multipliers.base import Multiplier

#: canonical kernel strategy names (plus the "auto" selector)
KERNEL_STRATEGIES = (
    "gather",
    "percode",
    "errorcorrection",
    "sparse",
    "exact",
    "native",
)

#: accepted spellings for each canonical strategy name, keyed with every
#: separator (space, dash, underscore) stripped
_STRATEGY_ALIASES: Dict[str, str] = {
    "gather": "gather",
    "reference": "gather",
    "percode": "percode",
    "percodeblas": "percode",
    "blas": "percode",
    "errorcorrection": "errorcorrection",
    "errcorr": "errorcorrection",
    "sparse": "sparse",
    "onehot": "sparse",
    "sparseonehot": "sparse",
    "exact": "exact",
    "native": "native",
    "compiled": "native",
    "auto": "auto",
}

#: partial sums in the BLAS paths must stay below this to round exactly
_EXACT_FLOAT_BOUND = float(1 << 52)

#: give up on the integer rank factorisation beyond this many terms
_MAX_FACTOR_RANK = 24

#: abort the factorisation when residual entries grow past this magnitude
_FACTOR_VALUE_BOUND = 1 << 40

#: largest LUT side for which factor analysis is attempted (12-bit tables
#: are 16M entries; peeling them buys nothing the cache does not)
_MAX_ANALYSIS_BITS = 10

#: "auto" only picks the error-correction active-code loop below this count
_AUTO_ACTIVE_CODE_LIMIT = 32

#: byte budget for per-kernel memoised per-code row tables
_ROW_TABLE_CACHE_BYTES = 64 * 1024 * 1024

#: byte budget for the sparse kernel's stacked (2**bits * K, N) weight table;
#: larger shapes fall back to chunking over the codes present in the batch
_SPARSE_STACK_BUDGET_BYTES = 256 * 1024 * 1024


def normalize_strategy(strategy: str) -> str:
    """Map a user-facing kernel name onto its canonical spelling.

    Case and the separators space/dash/underscore are ignored, so
    ``"per-code BLAS"``, ``"percode"`` and ``"error_correction"`` all
    resolve.
    """
    key = str(strategy).strip().lower()
    for separator in (" ", "-", "_"):
        key = key.replace(separator, "")
    try:
        return _STRATEGY_ALIASES[key]
    except KeyError:
        known = sorted(set(_STRATEGY_ALIASES.values()) | {"auto"})
        raise ConfigurationError(
            f"unknown kernel strategy {strategy!r}; known: {known}"
        ) from None


def integer_low_rank_factors(
    table: np.ndarray,
    max_rank: int = _MAX_FACTOR_RANK,
    value_bound: int = _FACTOR_VALUE_BOUND,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Exact integer rank factorisation ``table = sum_i outer(F[i], G[i])``.

    Performs Gaussian elimination with pivots restricted to entries that
    divide their whole column exactly, so every factor stays integral and the
    reconstruction is exact (not approximate).  Returns ``(F, G)`` with
    shapes ``(r, rows)`` / ``(r, cols)``, or ``None`` when no such
    factorisation with at most ``max_rank`` terms is found.  The zero table
    factorises with rank 0.
    """
    residual = np.asarray(table, dtype=np.int64).copy()
    if residual.ndim != 2:
        raise ShapeError("integer_low_rank_factors expects a 2-D table")
    fs, gs = [], []
    for _ in range(max_rank):
        if not residual.any():
            rows, cols = residual.shape
            if not fs:
                return (
                    np.zeros((0, rows), dtype=np.int64),
                    np.zeros((0, cols), dtype=np.int64),
                )
            return np.array(fs, dtype=np.int64), np.array(gs, dtype=np.int64)
        column_mass = np.abs(residual).sum(axis=0)
        peeled = False
        for b0 in np.argsort(-column_mass):
            column = residual[:, b0]
            nonzero = column[column != 0]
            if nonzero.size == 0:
                continue
            gcd = np.gcd.reduce(np.abs(nonzero))
            pivots = np.flatnonzero(np.abs(column) == gcd)
            if pivots.size == 0:
                continue  # gcd not attained by any entry: division inexact
            a0 = int(pivots[0])
            pivot = int(column[a0])
            f = column // pivot
            g = residual[a0, :].copy()
            residual = residual - np.outer(f, g)
            if np.abs(residual).max(initial=0) > value_bound:
                return None
            fs.append(f)
            gs.append(g)
            peeled = True
            break
        if not peeled:
            return None
    return None if residual.any() else (np.array(fs), np.array(gs))


@dataclass(frozen=True)
class MultiplierKernelProfile:
    """Cached per-multiplier structure used to build and select kernels."""

    #: exact integer factors of the product LUT, or None
    lut_factors: Optional[Tuple[np.ndarray, np.ndarray]]
    #: exact integer factors of the error LUT (approx - exact), or None
    error_factors: Optional[Tuple[np.ndarray, np.ndarray]]
    #: activation codes whose error-LUT row has any nonzero entry
    error_active_codes: np.ndarray
    #: fraction of nonzero entries in the error LUT
    error_density: float

    @property
    def lut_rank(self) -> Optional[int]:
        return None if self.lut_factors is None else len(self.lut_factors[0])

    @property
    def error_rank(self) -> Optional[int]:
        return None if self.error_factors is None else len(self.error_factors[0])


_PROFILE_CACHE: Dict[tuple, MultiplierKernelProfile] = {}

#: serialises first-touch profile analysis so concurrent kernel builds (the
#: parallel runtime shards batches across threads) share one cached profile
_PROFILE_LOCK = threading.Lock()


def multiplier_kernel_profile(multiplier: Multiplier) -> MultiplierKernelProfile:
    """Analyse (once per process per multiplier) the LUT structure.

    Safe under concurrent first-touch calls from worker threads: the
    analysis runs under a lock and every caller receives the same cached
    profile object.
    """
    key = multiplier._lut_cache_key()
    if key is not None and key in _PROFILE_CACHE:
        return _PROFILE_CACHE[key]
    with _PROFILE_LOCK:
        if key is not None and key in _PROFILE_CACHE:
            return _PROFILE_CACHE[key]
        error = multiplier.error_lut().astype(np.int64)
        if multiplier.bit_width <= _MAX_ANALYSIS_BITS:
            lut_factors = integer_low_rank_factors(multiplier.lut())
            error_factors = integer_low_rank_factors(error)
        else:
            lut_factors = None
            error_factors = None
        profile = MultiplierKernelProfile(
            lut_factors=lut_factors,
            error_factors=error_factors,
            error_active_codes=np.flatnonzero(np.any(error != 0, axis=1)),
            error_density=float(np.count_nonzero(error)) / float(error.size),
        )
        if key is not None:
            _PROFILE_CACHE[key] = profile
    return profile


def clear_profile_cache() -> None:
    """Drop cached multiplier profiles and the resolved native backend.

    Resetting the native backend too means a test (or a long-lived service
    reconfiguring itself) can flip ``REPRO_KERNEL_BACKEND`` and have both
    the "auto" strategy choice and subsequent kernel builds re-resolve.
    """
    from repro.axnn import native as _native

    _PROFILE_CACHE.clear()
    _native.reset_backend()


def _factor_sum_bound(factors: Tuple[np.ndarray, np.ndarray], inner: int) -> float:
    """Upper bound on any partial sum of a rank-decomposed accumulation."""
    fs, gs = factors
    if len(fs) == 0:
        return 0.0
    per_term = np.abs(fs).max(axis=1).astype(np.float64) * np.abs(gs).max(
        axis=1
    ).astype(np.float64)
    return float(per_term.sum()) * float(inner)


class MatmulKernel:
    """A bound approximate-matmul kernel: fixed multiplier and weights.

    Kernels are constructed once per Ax-layer (weights are constant during
    inference) and then invoked with batches of activation codes.  Every
    strategy returns the same int64 accumulator as the gather reference.
    """

    strategy: str = "base"

    def __init__(
        self,
        multiplier: Multiplier,
        weight_sign: np.ndarray,
        weight_magnitude: np.ndarray,
    ) -> None:
        weight_sign = np.asarray(weight_sign, dtype=np.int64)
        weight_magnitude = np.asarray(weight_magnitude, dtype=np.int64)
        if weight_sign.ndim != 2 or weight_sign.shape != weight_magnitude.shape:
            raise ShapeError(
                "kernel weights must be 2-D sign/magnitude arrays of equal shape"
            )
        if weight_magnitude.size and (
            weight_magnitude.min() < 0 or weight_magnitude.max() > multiplier.operand_max
        ):
            raise ConfigurationError(
                f"weight magnitudes exceed the {multiplier.bit_width}-bit operand range"
            )
        self.multiplier = multiplier
        self.weight_sign = weight_sign
        self.weight_magnitude = weight_magnitude
        self.inner, self.outputs = weight_sign.shape

    # ------------------------------------------------------------------ API
    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        """Integer accumulator ``(M, K) @ (K, N) -> (M, N)`` (int64)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable strategy summary (used by AxModel.kernel_report)."""
        return self.strategy

    # ------------------------------------------------------------ internals
    def _check_codes(self, activation_codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(activation_codes, dtype=np.int64)
        if codes.ndim != 2:
            raise ShapeError("kernel matmul expects a 2-D activation-code matrix")
        if codes.shape[1] != self.inner:
            raise ShapeError(
                f"inner dimensions disagree: {codes.shape} vs "
                f"{self.weight_sign.shape}"
            )
        return codes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(multiplier={self.multiplier.name!r}, "
            f"shape=({self.inner}, {self.outputs}))"
        )


class GatherKernel(MatmulKernel):
    """The legacy chunked LUT-gather loop (reference semantics)."""

    strategy = "gather"

    def __init__(self, multiplier, weight_sign, weight_magnitude) -> None:
        super().__init__(multiplier, weight_sign, weight_magnitude)
        self._lut = multiplier.lut()

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        from repro.axnn.approx_ops import approx_matmul

        codes = self._check_codes(activation_codes)
        return approx_matmul(codes, self.weight_sign, self.weight_magnitude, self._lut)


class ExactBLASKernel(MatmulKernel):
    """Rounded float64 BLAS product; only valid for bit-exact multipliers."""

    strategy = "exact"

    def __init__(self, multiplier, weight_sign, weight_magnitude) -> None:
        super().__init__(multiplier, weight_sign, weight_magnitude)
        if not multiplier.is_exact():
            raise ConfigurationError(
                f"the 'exact' kernel requires a bit-exact multiplier, got "
                f"{multiplier.name!r}"
            )
        self._signed_weights = (weight_sign * weight_magnitude).astype(np.float64)

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        codes = self._check_codes(activation_codes)
        product = codes.astype(np.float64) @ self._signed_weights
        return np.rint(product).astype(np.int64)


class _TableOperand:
    """Weight-bound evaluation of one source table (product LUT or error LUT).

    Shared machinery of the per-code and error-correction kernels: when the
    table has an exact integer rank factorisation (within the float64
    exactness bound), the per-code one-hot sum collapses into ``r`` fused
    BLAS products ``sum_i f_i[A] @ (sign * g_i[mag])``; otherwise per-code
    row tables ``T_c = sign * table[c, mag]`` are built lazily, memoised
    under a byte budget, and applied as one one-hot matmul per code present.
    """

    def __init__(
        self,
        table: np.ndarray,
        factors: Optional[Tuple[np.ndarray, np.ndarray]],
        weight_sign: np.ndarray,
        weight_magnitude: np.ndarray,
        reserved_bound: float = 0.0,
    ) -> None:
        inner, outputs = weight_sign.shape
        self.inner = inner
        self.outputs = outputs
        self.rank: Optional[int] = None
        self.weight_magnitude = weight_magnitude
        if factors is not None and (
            _factor_sum_bound(factors, inner) + reserved_bound < _EXACT_FLOAT_BOUND
        ):
            fs, gs = factors
            self.rank = len(fs)
            #: (r, 2**bits) gather tables applied to the activation codes
            self._code_factors = fs.astype(np.float64)
            #: (r*K, N) stacked weight-side factors sign * g_i[mag]
            sign_f = weight_sign.astype(np.float64)
            self._weight_factors = (
                np.concatenate(
                    [sign_f * g.astype(np.float64)[weight_magnitude] for g in gs],
                    axis=0,
                )
                if self.rank
                else np.zeros((0, outputs))
            )
        else:
            self._table_rows = table.astype(np.float64)
            self._sign_f = weight_sign.astype(np.float64)
            self._row_tables: Dict[int, np.ndarray] = {}
            self._row_table_bytes = 0
            # memoisation is shared when the bound kernel serves concurrent
            # batch shards; the lock keeps the byte accounting consistent
            self._row_table_lock = threading.Lock()

    @property
    def is_low_rank(self) -> bool:
        return self.rank is not None

    def add_low_rank_product(
        self, codes: np.ndarray, accumulator: np.ndarray
    ) -> np.ndarray:
        """Add the fused low-rank contribution for ``codes`` in place."""
        if self.rank == 0:
            return accumulator
        if self.rank == 1:
            gathered = self._code_factors[0][codes]
        else:
            gathered = np.ascontiguousarray(
                np.moveaxis(self._code_factors[:, codes], 0, 1)
            ).reshape(codes.shape[0], self.rank * self.inner)
        accumulator += gathered @ self._weight_factors
        return accumulator

    def _row_table(self, code: int) -> np.ndarray:
        table = self._row_tables.get(code)
        if table is None:
            table = self._sign_f * self._table_rows[code][self.weight_magnitude]
            with self._row_table_lock:
                if code in self._row_tables:
                    table = self._row_tables[code]
                elif self._row_table_bytes + table.nbytes <= _ROW_TABLE_CACHE_BYTES:
                    self._row_tables[code] = table
                    self._row_table_bytes += table.nbytes
        return table

    def add_per_code_products(
        self,
        codes: np.ndarray,
        accumulator: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Add one one-hot matmul per (active) code present, in place."""
        for code in np.unique(codes):
            if active is not None and not active[int(code)]:
                continue
            onehot = (codes == code).astype(np.float64)
            accumulator += onehot @ self._row_table(int(code))
        return accumulator


class PerCodeBLASKernel(MatmulKernel):
    """Per-code one-hot decomposition routed through float64 BLAS.

    With an exact integer rank factorisation of the LUT the per-code sum
    collapses into ``r`` fused BLAS products; otherwise at most one matmul
    per activation code present in the batch is issued, with the per-code
    weight tables ``T_c`` built lazily and memoised under a byte budget.
    """

    strategy = "percode"

    def __init__(self, multiplier, weight_sign, weight_magnitude) -> None:
        super().__init__(multiplier, weight_sign, weight_magnitude)
        profile = multiplier_kernel_profile(multiplier)
        self._operand = _TableOperand(
            multiplier.lut(), profile.lut_factors, weight_sign, weight_magnitude
        )

    def describe(self) -> str:
        if self._operand.is_low_rank:
            return f"percode[low-rank r={self._operand.rank}]"
        return "percode[per-code loop]"

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        codes = self._check_codes(activation_codes)
        accumulator = np.zeros((codes.shape[0], self.outputs), dtype=np.float64)
        if self._operand.is_low_rank:
            self._operand.add_low_rank_product(codes, accumulator)
        else:
            self._operand.add_per_code_products(codes, accumulator)
        return np.rint(accumulator).astype(np.int64)


class ErrorCorrectionKernel(MatmulKernel):
    """Exact BLAS product plus a correction drawn from the error LUT.

    The correction uses the error table's exact integer factors when they
    exist, and otherwise loops over only the error-active codes present in
    the batch (the rows of ``error_lut()`` with any nonzero entry).
    """

    strategy = "errorcorrection"

    def __init__(self, multiplier, weight_sign, weight_magnitude) -> None:
        super().__init__(multiplier, weight_sign, weight_magnitude)
        qmax = float(multiplier.operand_max)
        exact_bound = qmax * qmax * qmax * max(self.inner, 1)
        if exact_bound >= _EXACT_FLOAT_BOUND:
            raise ConfigurationError(
                "operand range too wide for an exactly-rounded BLAS product"
            )
        self._signed_weights = (weight_sign * weight_magnitude).astype(np.float64)
        profile = multiplier_kernel_profile(multiplier)
        self._operand = _TableOperand(
            multiplier.error_lut(),
            profile.error_factors,
            weight_sign,
            weight_magnitude,
            reserved_bound=exact_bound,
        )
        if not self._operand.is_low_rank:
            self._active = np.zeros(multiplier.operand_max + 1, dtype=bool)
            self._active[profile.error_active_codes] = True

    def describe(self) -> str:
        if self._operand.is_low_rank:
            return f"errorcorrection[exact + low-rank r={self._operand.rank}]"
        return "errorcorrection[exact + active-code loop]"

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        codes = self._check_codes(activation_codes)
        accumulator = codes.astype(np.float64) @ self._signed_weights
        if self._operand.is_low_rank:
            self._operand.add_low_rank_product(codes, accumulator)
        else:
            self._operand.add_per_code_products(codes, accumulator, self._active)
        return np.rint(accumulator).astype(np.int64)


class SparseOneHotKernel(MatmulKernel):
    """Full-rank LUT matmul as a single scipy.sparse one-hot product.

    The accumulation ``result = sum_c onehot(A == c) @ T_c`` is evaluated in
    one shot: the activation codes become a CSR matrix ``S`` of shape
    ``(M, C*K)`` holding exactly one 1 per ``(m, k)`` entry at column
    ``A[m, k] * K + k``, and the weight side becomes the stacked table
    ``T[c*K + k, n] = sign[k, n] * LUT[c, mag[k, n]]``, built once per layer
    at construction when it fits the byte budget (every layer of the repo's
    model zoo does).  All arithmetic is integer, so the accumulator is
    exact — bit-identical to the gather reference with no float-rounding
    argument required; int32 operands are used when the worst-case partial
    sum ``K * max|LUT|`` fits in 31 bits (half the memory traffic), int64
    otherwise.

    Shapes whose stacked table exceeds the budget adapt per call: batches
    with ``M >= 2*C`` rebuild the table in budget-bounded code chunks (the
    ``O(C*K*N)`` rebuild is then dominated by the ``O(M*K*N)`` product),
    while smaller batches delegate to the chunked gather reference, which
    is the cheapest known evaluation when tables cannot be amortised.
    """

    strategy = "sparse"

    def __init__(self, multiplier, weight_sign, weight_magnitude) -> None:
        super().__init__(multiplier, weight_sign, weight_magnitude)
        if _scipy_sparse is None:  # pragma: no cover - scipy is baked in
            raise ConfigurationError(
                "the 'sparse' kernel requires scipy; install it or pick "
                "another strategy"
            )
        self._lut = multiplier.lut()
        self.codes_total = multiplier.operand_max + 1
        lut_peak = max(1, int(np.abs(self._lut).max(initial=1)))
        self._dtype = (
            np.int32 if max(self.inner, 1) * lut_peak < (1 << 31) else np.int64
        )
        row_bytes = self.inner * self.outputs * np.dtype(self._dtype).itemsize
        #: codes per chunk when the stacked table is built on the fly
        self.group_codes = max(1, _SPARSE_STACK_BUDGET_BYTES // max(1, row_bytes))
        if self.codes_total * row_bytes <= _SPARSE_STACK_BUDGET_BYTES:
            self._stacked_table: Optional[np.ndarray] = self._stack_rows(
                np.arange(self.codes_total)
            )
        else:
            self._stacked_table = None

    def describe(self) -> str:
        bits = 8 * np.dtype(self._dtype).itemsize
        if self._stacked_table is not None:
            return f"sparse[stacked one-hot, int{bits}]"
        return (
            f"sparse[grouped one-hot, int{bits}, {self.group_codes} codes/chunk, "
            "gather below amortisation]"
        )

    def _stack_rows(self, codes_subset: np.ndarray) -> np.ndarray:
        """Stacked weight table ``(len(subset)*K, N)`` for a code subset."""
        rows = self._lut[np.asarray(codes_subset, dtype=np.intp)]
        gathered = rows.astype(self._dtype)[:, self.weight_magnitude]
        gathered *= self.weight_sign[None, :, :].astype(self._dtype)
        return gathered.reshape(-1, self.outputs)

    def _onehot(self, codes: np.ndarray, n_code_blocks: int):
        """CSR one-hot of shape ``(M, n_code_blocks * K)`` — K ones per row."""
        m, k = codes.shape
        columns = (codes * k + np.arange(k, dtype=np.int64)[None, :]).ravel()
        indptr = np.arange(m + 1, dtype=np.int64) * k
        data = np.ones(m * k, dtype=self._dtype)
        return _scipy_sparse.csr_array(
            (data, columns, indptr), shape=(m, n_code_blocks * k)
        )

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        codes = self._check_codes(activation_codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.codes_total):
            raise ConfigurationError(
                f"activation codes outside the {self.multiplier.bit_width}-bit "
                "operand range"
            )
        if self._stacked_table is not None:
            product = self._onehot(codes, self.codes_total) @ self._stacked_table
            return np.asarray(product, dtype=np.int64)
        if codes.shape[0] >= 2 * self.codes_total:
            return self._matmul_grouped(codes)
        # Below the amortisation point the table rebuild would cost more
        # than the product itself; the chunked gather reference is cheapest.
        from repro.axnn.approx_ops import approx_matmul

        return approx_matmul(codes, self.weight_sign, self.weight_magnitude, self._lut)

    def _matmul_grouped(self, codes: np.ndarray) -> np.ndarray:
        """Chunk the one-hot product over groups of codes present in the batch."""
        result = np.zeros((codes.shape[0], self.outputs), dtype=np.int64)
        present = np.unique(codes)
        k = self.inner
        for start in range(0, present.size, self.group_codes):
            group = present[start : start + self.group_codes]
            position = np.full(self.codes_total, -1, dtype=np.int64)
            position[group] = np.arange(group.size)
            in_group = position[codes] >= 0
            row_index, k_index = np.nonzero(in_group)
            columns = position[codes[row_index, k_index]] * k + k_index
            block = _scipy_sparse.csr_array(
                (np.ones(row_index.size, dtype=self._dtype), (row_index, columns)),
                shape=(codes.shape[0], group.size * k),
            )
            result += block @ self._stack_rows(group)
        return result


class NativeLUTKernel(MatmulKernel):
    """Compiled LUT accumulation from :mod:`repro.axnn.native`.

    Operands are packed once per layer at construction — activation codes
    and weight magnitudes to uint8, signs to int8, and the LUT to int16
    when every entry fits (int32 otherwise) — so the compiled loop touches
    a half to a quarter of the memory the int64 formulations stream.  The
    loop itself (see ``native/kernels.c``) is cache-blocked over output
    columns and accumulates in int64, making the result exact by
    construction; ctypes/Numba release the GIL for the whole call, so the
    threaded batch-sharding runtime scales where the scipy.sparse path
    serialised.

    Construction fails with :class:`ConfigurationError` when no native
    backend resolved (``REPRO_KERNEL_BACKEND=numpy``, or neither Numba nor
    a C compiler is available) or when the multiplier does not fit the
    packed layout; ``"auto"`` only selects this strategy when it is
    constructible.
    """

    strategy = "native"

    def __init__(self, multiplier, weight_sign, weight_magnitude) -> None:
        super().__init__(multiplier, weight_sign, weight_magnitude)
        from repro.axnn import native as _native

        backend = _native.get_backend()
        if backend is None:
            raise ConfigurationError(
                "the 'native' kernel requires a compiled backend; set "
                f"{_native.BACKEND_ENV_VAR} and install Numba or a C compiler"
            )
        if multiplier.operand_max > 255:
            raise ConfigurationError(
                "the 'native' kernel packs operands to 8 bits; "
                f"{multiplier.name!r} has operand_max={multiplier.operand_max}"
            )
        if weight_sign.size and int(np.abs(weight_sign).max()) > 1:
            raise ConfigurationError(
                "the 'native' kernel expects sign values in {-1, 0, 1}"
            )
        lut = multiplier.lut()
        peak = int(np.abs(lut).max(initial=0))
        if peak >= (1 << 31):
            raise ConfigurationError(
                "the 'native' kernel packs the LUT to at most 32 bits; "
                f"{multiplier.name!r} has |entry| up to {peak}"
            )
        lut_dtype = np.int16 if peak < (1 << 15) else np.int32
        self._backend = backend
        self._lut_packed = np.ascontiguousarray(lut, dtype=lut_dtype)
        self._sign8 = np.ascontiguousarray(weight_sign, dtype=np.int8)
        self._mag8 = np.ascontiguousarray(weight_magnitude, dtype=np.uint8)
        self.codes_total = multiplier.operand_max + 1

    def describe(self) -> str:
        bits = 8 * self._lut_packed.dtype.itemsize
        return f"native[{self._backend.name}, int{bits} lut]"

    def matmul(self, activation_codes: np.ndarray) -> np.ndarray:
        codes = self._check_codes(activation_codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.codes_total):
            raise ConfigurationError(
                f"activation codes outside the {self.multiplier.bit_width}-bit "
                "operand range"
            )
        out = np.zeros((codes.shape[0], self.outputs), dtype=np.int64)
        if codes.shape[0] == 0 or self.inner == 0 or self.outputs == 0:
            return out
        codes_u8 = np.ascontiguousarray(codes, dtype=np.uint8)
        self._backend.lut_matmul(codes_u8, self._sign8, self._mag8,
                                 self._lut_packed, out)
        return out


def _native_strategy_available(multiplier: Multiplier) -> bool:
    """Whether ``"auto"`` may route ``multiplier`` to the native kernel."""
    from repro.axnn import native as _native

    if _native.get_backend() is None:
        return False
    if multiplier.operand_max > 255:
        return False
    return int(np.abs(multiplier.lut()).max(initial=0)) < (1 << 31)


_KERNEL_CLASSES = {
    "gather": GatherKernel,
    "percode": PerCodeBLASKernel,
    "errorcorrection": ErrorCorrectionKernel,
    "sparse": SparseOneHotKernel,
    "exact": ExactBLASKernel,
    "native": NativeLUTKernel,
}

KernelSpec = Union[str, MatmulKernel]


def select_strategy(multiplier: Multiplier) -> str:
    """The "auto" heuristic: pick the cheapest bit-identical strategy.

    Bit-exact multipliers take the plain BLAS product.  Otherwise the choice
    follows the error-LUT structure: a cheap low-rank (or sparse-row) error
    table selects the error-correction kernel, a low-rank product LUT
    selects the fused per-code BLAS kernel, and unstructured full-rank
    tables (the compressor-tree circuit multipliers, Mitchell, noisy-LSB)
    take the native compiled kernel when a backend resolved, else the
    sparse one-hot kernel — a single int64 scipy.sparse product, which
    replaces the fancy-indexed gather loop the legacy path used.
    ``gather`` remains available by explicit request (and as the fallback
    if scipy is ever absent).
    """
    if multiplier.is_exact():
        return "exact"
    profile = multiplier_kernel_profile(multiplier)
    lut_rank = profile.lut_rank
    error_rank = profile.error_rank
    if error_rank is not None and (lut_rank is None or error_rank + 1 < lut_rank):
        return "errorcorrection"
    if lut_rank is not None:
        return "percode"
    if profile.error_active_codes.size <= _AUTO_ACTIVE_CODE_LIMIT:
        return "errorcorrection"
    if _native_strategy_available(multiplier):
        return "native"
    return "sparse" if _scipy_sparse is not None else "gather"


def make_kernel(
    multiplier: Multiplier,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
    strategy: KernelSpec = "auto",
) -> MatmulKernel:
    """Build a bound kernel for ``(multiplier, weights)``.

    ``strategy`` is a canonical kernel name (see :data:`KERNEL_STRATEGIES`),
    an accepted alias, ``"auto"`` (structure-based selection), or an already
    constructed :class:`MatmulKernel` (returned unchanged).
    """
    if isinstance(strategy, MatmulKernel):
        return strategy
    name = normalize_strategy(strategy)
    if name == "auto":
        name = select_strategy(multiplier)
    return _KERNEL_CLASSES[name](multiplier, weight_sign, weight_magnitude)
