"""Approximate inference engine (the TFApprox substitute).

Converts trained float models into 8-bit quantized models whose every
activation x weight product is evaluated through an approximate-multiplier
look-up table.  The LUT matmul itself runs through a pluggable kernel engine
(:mod:`repro.axnn.kernels`) with bit-identical gather / per-code BLAS /
error-correction / sparse one-hot / native compiled strategies (the latter
backed by :mod:`repro.axnn.native` — Numba or a tiny C extension, selected
via ``REPRO_KERNEL_BACKEND``), and batched prediction shards across worker
threads via the parallel runtime (:mod:`repro.nn.runtime`, re-exported
here).  :class:`repro.axnn.panel.VictimPanel` evaluates many victims of one
source model in a single fused pass, sharing im2col and quantization.
"""

from repro.axnn.approx_ops import (
    approx_dot_general,
    approx_matmul,
    exact_matmul,
    quantize_weights_sign_magnitude,
    zero_point_correction_vector,
)
from repro.axnn.engine import AxModel, build_axdnn, build_quantized_accurate
from repro.axnn.kernels import (
    KERNEL_STRATEGIES,
    ErrorCorrectionKernel,
    ExactBLASKernel,
    GatherKernel,
    MatmulKernel,
    NativeLUTKernel,
    PerCodeBLASKernel,
    SparseOneHotKernel,
    clear_profile_cache,
    integer_low_rank_factors,
    make_kernel,
    multiplier_kernel_profile,
    select_strategy,
)
from repro.axnn.layers import AxConv2D, AxDense, AxLayer, PassthroughLayer
from repro.axnn.native import (
    BACKEND_ENV_VAR,
    backend_name,
    get_backend,
    native_fingerprint,
    reset_backend,
)
from repro.axnn.panel import VictimPanel
from repro.nn.runtime import (
    available_workers,
    batch_slices,
    resolve_workers,
    run_sharded,
    validate_batch_size,
)

__all__ = [
    "approx_matmul",
    "exact_matmul",
    "approx_dot_general",
    "quantize_weights_sign_magnitude",
    "zero_point_correction_vector",
    "KERNEL_STRATEGIES",
    "MatmulKernel",
    "GatherKernel",
    "ExactBLASKernel",
    "PerCodeBLASKernel",
    "ErrorCorrectionKernel",
    "SparseOneHotKernel",
    "NativeLUTKernel",
    "clear_profile_cache",
    "integer_low_rank_factors",
    "make_kernel",
    "multiplier_kernel_profile",
    "select_strategy",
    "BACKEND_ENV_VAR",
    "backend_name",
    "get_backend",
    "native_fingerprint",
    "reset_backend",
    "VictimPanel",
    "AxLayer",
    "AxConv2D",
    "AxDense",
    "PassthroughLayer",
    "AxModel",
    "build_axdnn",
    "build_quantized_accurate",
    "available_workers",
    "batch_slices",
    "resolve_workers",
    "run_sharded",
    "validate_batch_size",
]
