"""Approximate inference engine (the TFApprox substitute).

Converts trained float models into 8-bit quantized models whose every
activation x weight product is evaluated through an approximate-multiplier
look-up table.
"""

from repro.axnn.approx_ops import (
    approx_dot_general,
    approx_matmul,
    exact_matmul,
    quantize_weights_sign_magnitude,
)
from repro.axnn.engine import AxModel, build_axdnn, build_quantized_accurate
from repro.axnn.layers import AxConv2D, AxDense, AxLayer, PassthroughLayer

__all__ = [
    "approx_matmul",
    "exact_matmul",
    "approx_dot_general",
    "quantize_weights_sign_magnitude",
    "AxLayer",
    "AxConv2D",
    "AxDense",
    "PassthroughLayer",
    "AxModel",
    "build_axdnn",
    "build_quantized_accurate",
]
