"""Building and running approximate DNNs (AxDNNs).

:func:`build_axdnn` converts a trained float :class:`repro.nn.Sequential`
model into an :class:`AxModel`:

1. a calibration batch is pushed through the float model, recording the
   activation range at the input of every compute layer;
2. every ``Conv2D`` / ``Dense`` layer is replaced by its quantized,
   LUT-multiplied counterpart (:class:`repro.axnn.layers.AxConv2D` /
   :class:`AxDense`) bound to the requested approximate multiplier;
3. every other layer is wrapped as a pass-through evaluated in inference
   mode.

Passing the accurate multiplier (``mul8u_1JFF``) yields the paper's
"quantized accurate DNN"; passing any other named multiplier yields the
corresponding AxDNN.  Per-layer multiplier assignment is also supported so
that mixed configurations (e.g. approximate convolutions, exact classifier)
can be studied — the paper applies the approximate multipliers to the
convolutional layers only, which is the default here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.axnn.kernels import normalize_strategy
from repro.axnn.layers import AxConv2D, AxDense, AxLayer, PassthroughLayer
from repro.nn.runtime import WorkerSpec, run_sharded, validate_batch_size
from repro.errors import ConfigurationError
from repro.multipliers.base import Multiplier
from repro.multipliers.library import get_multiplier
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.quantization.quantizer import ActivationObserver
from repro.quantization.schemes import AffineQuantization

MultiplierSpec = Union[str, Multiplier]


class AxModel:
    """An inference-only approximate DNN."""

    def __init__(
        self,
        layers: Sequence[AxLayer],
        name: str,
        multiplier: Multiplier,
        bits: int,
        source: Sequential,
        kernel: str = "auto",
    ) -> None:
        self.layers: List[AxLayer] = list(layers)
        self.name = name
        self.multiplier = multiplier
        self.bits = bits
        self.source = source
        #: requested kernel strategy (per-layer resolution in kernel_report)
        self.kernel = kernel

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    @property
    def output_shape(self):
        """Per-sample output shape (inherited from the built source model)."""
        return tuple(self.source.output_shape)

    def predict(
        self, x: np.ndarray, batch_size: int = 64, workers: WorkerSpec = None
    ) -> np.ndarray:
        """Batched inference returning logits.

        AxDNN inference is gradient-free, so the wrapped float layers run
        under ``no_grad_cache`` and keep no backward buffers.  ``workers``
        shards the batches across threads (``"auto"`` = one per core; the
        default reads ``REPRO_DEFAULT_WORKERS``, else 1); the batch slicing
        never depends on the worker count, so logits are bit-identical for
        every ``workers`` value.
        """
        validate_batch_size(batch_size)
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] == 0:
            return np.zeros((0,) + self.output_shape, dtype=np.float64)
        return run_sharded(self.forward, x, batch_size, workers=workers)

    def predict_classes(
        self, x: np.ndarray, batch_size: int = 64, workers: WorkerSpec = None
    ) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(
            self.predict(x, batch_size=batch_size, workers=workers), axis=-1
        )

    def accuracy(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 64,
        workers: WorkerSpec = None,
    ) -> float:
        """Classification accuracy in [0, 1]."""
        return accuracy(
            self.predict_classes(x, batch_size=batch_size, workers=workers),
            np.asarray(y),
        )

    def accuracy_percent(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 64,
        workers: WorkerSpec = None,
    ) -> float:
        """Classification accuracy in percent (the unit used by the paper)."""
        return self.accuracy(x, y, batch_size=batch_size, workers=workers) * 100.0

    def compute_layers(self) -> List[AxLayer]:
        """The quantized compute layers (AxConv2D / AxDense)."""
        return [
            layer for layer in self.layers if isinstance(layer, (AxConv2D, AxDense))
        ]

    def kernel_report(self) -> Dict[str, str]:
        """Resolved kernel strategy per compute layer (for logs and tests)."""
        return {layer.name: layer.kernel.describe() for layer in self.compute_layers()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AxModel(name={self.name!r}, multiplier={self.multiplier.name!r}, "
            f"bits={self.bits}, layers={len(self.layers)})"
        )


def _calibrate_activations(
    model: Sequential, calibration_data: np.ndarray, bits: int
) -> Dict[str, AffineQuantization]:
    """Record the activation range at the input of every compute layer."""
    observers: Dict[str, ActivationObserver] = {}
    x = np.asarray(calibration_data, dtype=np.float64)
    out = x
    for layer in model.layers:
        if isinstance(layer, (Conv2D, Dense)):
            observer = observers.setdefault(layer.name, ActivationObserver())
            observer.update(out)
        out = layer.forward(out, training=False)
    return {name: obs.affine_scheme(bits=bits) for name, obs in observers.items()}


def build_axdnn(
    model: Sequential,
    multiplier: MultiplierSpec,
    calibration_data: np.ndarray,
    bits: int = 8,
    convolution_only: bool = False,
    per_layer_multipliers: Optional[Dict[str, MultiplierSpec]] = None,
    name: Optional[str] = None,
    kernel: str = "auto",
) -> AxModel:
    """Convert a trained float model into a quantized approximate model.

    Parameters
    ----------
    model:
        Trained float model (must be built).
    multiplier:
        Default multiplier for every compute layer — a
        :class:`repro.multipliers.base.Multiplier` or a registry name/paper
        label (e.g. ``"mul8u_17KS"`` or ``"M4"``).
    calibration_data:
        Batch of representative inputs used to calibrate activation ranges.
    bits:
        Fixed-point bit width (8 in the paper).
    convolution_only:
        When True, only convolution layers use the approximate multiplier and
        dense layers use the accurate one (the paper replaces the multipliers
        "in the convolutional layers").  Default False: all compute layers
        use the configured multiplier.
    per_layer_multipliers:
        Optional explicit mapping from float-layer name to multiplier,
        overriding ``multiplier`` for those layers.
    kernel:
        Matmul kernel strategy for every compute layer: ``"auto"``
        (structure-based selection, the default), ``"gather"``,
        ``"percode"``, ``"errorcorrection"`` or ``"exact"`` — see
        :mod:`repro.axnn.kernels`.  All strategies are bit-identical; they
        differ only in throughput and memory.
    """
    if not model.layers:
        raise ConfigurationError("cannot build an AxDNN from an empty model")
    if calibration_data is None or np.asarray(calibration_data).size == 0:
        raise ConfigurationError("calibration_data must contain at least one sample")
    kernel = normalize_strategy(kernel)

    default_multiplier = (
        multiplier if isinstance(multiplier, Multiplier) else get_multiplier(multiplier)
    )
    accurate = get_multiplier("mul8u_1JFF")
    overrides: Dict[str, Multiplier] = {}
    if per_layer_multipliers:
        for layer_name, spec in per_layer_multipliers.items():
            overrides[layer_name] = (
                spec if isinstance(spec, Multiplier) else get_multiplier(spec)
            )

    schemes = _calibrate_activations(model, calibration_data, bits)
    ax_layers: List[AxLayer] = []
    for layer in model.layers:
        if isinstance(layer, Conv2D):
            chosen = overrides.get(layer.name, default_multiplier)
            ax_layers.append(
                AxConv2D(
                    layer, chosen, schemes[layer.name], weight_bits=bits, kernel=kernel
                )
            )
        elif isinstance(layer, Dense):
            chosen = overrides.get(
                layer.name, accurate if convolution_only else default_multiplier
            )
            ax_layers.append(
                AxDense(
                    layer, chosen, schemes[layer.name], weight_bits=bits, kernel=kernel
                )
            )
        else:
            ax_layers.append(PassthroughLayer(layer))

    model_name = name or f"ax_{model.name}_{default_multiplier.name}"
    return AxModel(
        ax_layers, model_name, default_multiplier, bits, source=model, kernel=kernel
    )


def build_quantized_accurate(
    model: Sequential,
    calibration_data: np.ndarray,
    bits: int = 8,
    name: Optional[str] = None,
    kernel: str = "auto",
) -> AxModel:
    """The paper's quantized accurate DNN: 8-bit fixed point, exact multiplier."""
    return build_axdnn(
        model,
        "mul8u_1JFF",
        calibration_data,
        bits=bits,
        name=name or f"quantized_{model.name}",
        kernel=kernel,
    )
