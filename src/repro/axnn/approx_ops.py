"""Quantized matrix products routed through an approximate-multiplier LUT.

This is the computational core of the AxDNN inference engine and the direct
substitute for TFApprox's CUDA kernels: every scalar activation x weight
product inside a convolution or dense layer is looked up in the multiplier's
256x256 product table.

The decomposition used (sign-magnitude weights, affine activations) is

    y = sa * sw * ( sum_k sign_k * LUT[qa_k, mag_k]  -  za * sum_k sign_k * mag_k )

where only the first summation depends on the approximate multiplier — the
zero-point correction term is a constant per output neuron and is folded in
exactly, as a hardware accelerator would fold it into the bias.

:func:`approx_matmul` is the *reference* gather kernel; the pluggable
BLAS-backed strategies in :mod:`repro.axnn.kernels` (per-code / low-rank /
error-correction decompositions) are bit-identical replacements selected per
Ax-layer, see PERFORMANCE.md.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.multipliers.base import Multiplier

#: bound on the number of int64 elements materialised per indexing chunk
_DEFAULT_CHUNK_ELEMENTS = 4_000_000


def quantize_weights_sign_magnitude(
    weights: np.ndarray, bits: int = 8
) -> tuple:
    """Quantize a float weight matrix to (sign, magnitude, scale).

    The magnitude uses the full unsigned range of the multiplier
    (``0 .. 2**bits - 1``); the sign is in {-1, 0, +1}.
    """
    weights = np.asarray(weights, dtype=np.float64)
    qmax = (1 << bits) - 1
    max_abs = float(np.max(np.abs(weights))) if weights.size else 0.0
    scale = max(max_abs, 1e-12) / qmax
    magnitude = np.clip(np.round(np.abs(weights) / scale), 0, qmax).astype(np.int64)
    sign = np.sign(weights).astype(np.int64)
    return sign, magnitude, scale


def approx_matmul(
    activation_codes: np.ndarray,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
    lut: np.ndarray,
    chunk_elements: int = _DEFAULT_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Approximate integer matrix product ``(M, K) @ (K, N) -> (M, N)``.

    Parameters
    ----------
    activation_codes:
        Unsigned activation codes, shape ``(M, K)``.
    weight_sign, weight_magnitude:
        Signed/unsigned weight decomposition, both shape ``(K, N)``.
    lut:
        Product look-up table of the approximate multiplier,
        shape ``(2**bits, 2**bits)``.
    chunk_elements:
        Upper bound on the number of intermediate product elements held in
        memory at once; rows of the activation matrix are processed in
        chunks of ``max(1, chunk_elements // (K * N))``.
    """
    activation_codes = np.asarray(activation_codes, dtype=np.int64)
    weight_sign = np.asarray(weight_sign, dtype=np.int64)
    weight_magnitude = np.asarray(weight_magnitude, dtype=np.int64)
    if activation_codes.ndim != 2 or weight_sign.ndim != 2:
        raise ShapeError("approx_matmul expects 2-D operands")
    if activation_codes.shape[1] != weight_sign.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: {activation_codes.shape} vs {weight_sign.shape}"
        )
    if weight_sign.shape != weight_magnitude.shape:
        raise ShapeError("weight sign and magnitude must have identical shapes")

    rows, inner = activation_codes.shape
    outputs = weight_sign.shape[1]
    result = np.empty((rows, outputs), dtype=np.int64)
    chunk_rows = max(1, chunk_elements // max(1, inner * outputs))
    for start in range(0, rows, chunk_rows):
        stop = min(start + chunk_rows, rows)
        block = activation_codes[start:stop]  # (m, K)
        products = lut[block[:, :, None], weight_magnitude[None, :, :]].astype(np.int64)
        products *= weight_sign[None, :, :]
        result[start:stop] = products.sum(axis=1)
    return result


def exact_matmul(
    activation_codes: np.ndarray,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
) -> np.ndarray:
    """Exact integer product with the same interface as :func:`approx_matmul`.

    Used as a fast path when the configured multiplier is bit-exact (the
    quantized accurate DNN), where a LUT gather would only waste time.
    """
    signed_weights = (weight_sign * weight_magnitude).astype(np.float64)
    return np.rint(
        np.asarray(activation_codes, dtype=np.float64) @ signed_weights
    ).astype(np.int64)


def zero_point_correction_vector(
    weight_sign: np.ndarray, weight_magnitude: np.ndarray
) -> np.ndarray:
    """Per-output-neuron zero-point correction ``sum_k sign_k * mag_k``.

    A constant of the (quantized) weights; Ax-layers precompute it once at
    construction instead of once per forward call.
    """
    return (
        np.asarray(weight_sign, dtype=np.int64)
        * np.asarray(weight_magnitude, dtype=np.int64)
    ).sum(axis=0)


def approx_dot_general(
    activation_codes: np.ndarray,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
    multiplier: Multiplier,
    zero_point: int,
    use_exact_fastpath: Optional[bool] = None,
    kernel=None,
    zero_point_correction: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Full quantized dot product including the zero-point correction term.

    Returns the integer accumulator ``sum_k (qa_k - za) * qw_k`` where the
    ``qa * |qw|`` partial products go through the approximate multiplier.

    ``kernel`` selects the matmul strategy: ``None`` keeps the historical
    behaviour (exact BLAS fast path for bit-exact multipliers, LUT gather
    otherwise); a strategy name (``"auto"``, ``"gather"``, ``"percode"``,
    ``"errorcorrection"``, ``"exact"``) or a prebuilt
    :class:`repro.axnn.kernels.MatmulKernel` routes the product through the
    pluggable kernel engine.  Passing a strategy *name* rebuilds the bound
    kernel — including its per-weight factor tables — on every call, which
    can dominate the matmul itself at large shapes; repeated callers should
    build the kernel once with :func:`repro.axnn.kernels.make_kernel` and
    pass the instance (the Ax-layers do exactly that at construction).
    ``zero_point_correction`` optionally supplies the precomputed
    :func:`zero_point_correction_vector`.
    """
    if kernel is not None:
        from repro.axnn.kernels import make_kernel

        bound = make_kernel(multiplier, weight_sign, weight_magnitude, kernel)
        accumulator = bound.matmul(activation_codes)
    else:
        if use_exact_fastpath is None:
            use_exact_fastpath = multiplier.is_exact()
        if use_exact_fastpath:
            accumulator = exact_matmul(activation_codes, weight_sign, weight_magnitude)
        else:
            accumulator = approx_matmul(
                activation_codes, weight_sign, weight_magnitude, multiplier.lut()
            )
    if zero_point:
        if zero_point_correction is None:
            zero_point_correction = zero_point_correction_vector(
                weight_sign, weight_magnitude
            )
        accumulator = accumulator - zero_point * zero_point_correction[None, :]
    return accumulator
