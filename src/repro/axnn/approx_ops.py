"""Quantized matrix products routed through an approximate-multiplier LUT.

This is the computational core of the AxDNN inference engine and the direct
substitute for TFApprox's CUDA kernels: every scalar activation x weight
product inside a convolution or dense layer is looked up in the multiplier's
256x256 product table.

The decomposition used (sign-magnitude weights, affine activations) is

    y = sa * sw * ( sum_k sign_k * LUT[qa_k, mag_k]  -  za * sum_k sign_k * mag_k )

where only the first summation depends on the approximate multiplier — the
zero-point correction term is a constant per output neuron and is folded in
exactly, as a hardware accelerator would fold it into the bias.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.multipliers.base import Multiplier

#: bound on the number of int64 elements materialised per indexing chunk
_DEFAULT_CHUNK_ELEMENTS = 4_000_000


def quantize_weights_sign_magnitude(
    weights: np.ndarray, bits: int = 8
) -> tuple:
    """Quantize a float weight matrix to (sign, magnitude, scale).

    The magnitude uses the full unsigned range of the multiplier
    (``0 .. 2**bits - 1``); the sign is in {-1, 0, +1}.
    """
    weights = np.asarray(weights, dtype=np.float64)
    qmax = (1 << bits) - 1
    max_abs = float(np.max(np.abs(weights))) if weights.size else 0.0
    scale = max(max_abs, 1e-12) / qmax
    magnitude = np.clip(np.round(np.abs(weights) / scale), 0, qmax).astype(np.int64)
    sign = np.sign(weights).astype(np.int64)
    return sign, magnitude, scale


def approx_matmul(
    activation_codes: np.ndarray,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
    lut: np.ndarray,
    chunk_elements: int = _DEFAULT_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Approximate integer matrix product ``(M, K) @ (K, N) -> (M, N)``.

    Parameters
    ----------
    activation_codes:
        Unsigned activation codes, shape ``(M, K)``.
    weight_sign, weight_magnitude:
        Signed/unsigned weight decomposition, both shape ``(K, N)``.
    lut:
        Product look-up table of the approximate multiplier,
        shape ``(2**bits, 2**bits)``.
    chunk_elements:
        Upper bound on the number of intermediate product elements held in
        memory at once; rows of the activation matrix are processed in
        chunks of ``max(1, chunk_elements // (K * N))``.
    """
    activation_codes = np.asarray(activation_codes, dtype=np.int64)
    weight_sign = np.asarray(weight_sign, dtype=np.int64)
    weight_magnitude = np.asarray(weight_magnitude, dtype=np.int64)
    if activation_codes.ndim != 2 or weight_sign.ndim != 2:
        raise ShapeError("approx_matmul expects 2-D operands")
    if activation_codes.shape[1] != weight_sign.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: {activation_codes.shape} vs {weight_sign.shape}"
        )
    if weight_sign.shape != weight_magnitude.shape:
        raise ShapeError("weight sign and magnitude must have identical shapes")

    rows, inner = activation_codes.shape
    outputs = weight_sign.shape[1]
    signed_weights = weight_sign * weight_magnitude  # used only via the LUT gather
    result = np.empty((rows, outputs), dtype=np.int64)
    chunk_rows = max(1, chunk_elements // max(1, inner * outputs))
    for start in range(0, rows, chunk_rows):
        stop = min(start + chunk_rows, rows)
        block = activation_codes[start:stop]  # (m, K)
        products = lut[block[:, :, None], weight_magnitude[None, :, :]].astype(np.int64)
        products *= weight_sign[None, :, :]
        result[start:stop] = products.sum(axis=1)
    del signed_weights
    return result


def exact_matmul(
    activation_codes: np.ndarray,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
) -> np.ndarray:
    """Exact integer product with the same interface as :func:`approx_matmul`.

    Used as a fast path when the configured multiplier is bit-exact (the
    quantized accurate DNN), where a LUT gather would only waste time.
    """
    signed_weights = (weight_sign * weight_magnitude).astype(np.float64)
    return np.rint(
        np.asarray(activation_codes, dtype=np.float64) @ signed_weights
    ).astype(np.int64)


def approx_dot_general(
    activation_codes: np.ndarray,
    weight_sign: np.ndarray,
    weight_magnitude: np.ndarray,
    multiplier: Multiplier,
    zero_point: int,
    use_exact_fastpath: Optional[bool] = None,
) -> np.ndarray:
    """Full quantized dot product including the zero-point correction term.

    Returns the integer accumulator ``sum_k (qa_k - za) * qw_k`` where the
    ``qa * |qw|`` partial products go through the approximate multiplier.
    """
    if use_exact_fastpath is None:
        use_exact_fastpath = multiplier.is_exact()
    if use_exact_fastpath:
        accumulator = exact_matmul(activation_codes, weight_sign, weight_magnitude)
    else:
        accumulator = approx_matmul(
            activation_codes, weight_sign, weight_magnitude, multiplier.lut()
        )
    if zero_point:
        correction = (weight_sign * weight_magnitude).sum(axis=0)  # (N,)
        accumulator = accumulator - zero_point * correction[None, :]
    return accumulator
