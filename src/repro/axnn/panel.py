"""Fused multi-victim evaluation: one shared im2col feeding every victim.

The paper's robustness figures (Fig. 4-8) evaluate ~9 victim AxDNNs on
*identical* adversarial inputs.  Run naively, every victim pays the full
patch extraction (im2col) and activation quantization of every layer, even
though those stages are pure functions of the layer input and the layer
geometry/scheme — which the victims share wherever their activations have
not yet diverged.

:class:`VictimPanel` walks all victims through the network in lockstep and
maintains a *partition* of the victims into groups whose current activation
is provably identical:

* every victim starts in one group (they all see the same input batch);
* a float passthrough layer wrapping the same underlying layer object
  keeps its group intact and is evaluated once per group;
* an Ax compute layer extracts patches **once per group** (conv), quantizes
  **once per distinct activation scheme**, and evaluates the LUT product
  once per distinct ``(multiplier, weights, scheme)`` — which is where the
  victims finally diverge, each continuing in its own (sub)group.

Because the partition refines purely on static layer structure, the whole
plan is computed once at construction; per batch only the fused compute
runs.  Every shared stage computes exactly the value the per-victim path
would (``extract_cols`` / ``quantize_cols`` / ``forward_from_codes`` are
the same functions ``AxLayer.forward`` composes), so panel outputs are
bit-identical to evaluating each victim independently — the property
``tests/test_victim_panel.py`` asserts against every robustness grid.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.axnn.engine import AxModel
from repro.axnn.layers import AxConv2D, AxDense, PassthroughLayer
from repro.errors import ConfigurationError
from repro.nn.runtime import WorkerSpec, run_sharded, validate_batch_size

#: a group is a tuple of victim indices whose activations are identical
_Group = Tuple[int, ...]


def _same_compute(a, b) -> bool:
    """Whether two Ax layers produce identical outputs from identical codes.

    Kernel strategy is deliberately ignored: all strategies are
    bit-identical, so two layers differing only in kernel still share.
    """
    if a.multiplier is not b.multiplier:
        return False
    if a.activation_scheme != b.activation_scheme:
        return False
    if a.weight_scale != b.weight_scale:
        return False
    if not np.array_equal(a.weight_sign, b.weight_sign):
        return False
    if not np.array_equal(a.weight_magnitude, b.weight_magnitude):
        return False
    if (a.bias is None) != (b.bias is None):
        return False
    return a.bias is None or np.array_equal(a.bias, b.bias)


def _refine(members: _Group, layers, same) -> List[_Group]:
    """Partition ``members`` into runs equivalent under ``same`` (stable)."""
    subgroups: List[List[int]] = []
    reps: List = []
    for member, layer in zip(members, layers):
        for index, rep in enumerate(reps):
            if same(rep, layer):
                subgroups[index].append(member)
                break
        else:
            reps.append(layer)
            subgroups.append([member])
    return [tuple(group) for group in subgroups]


class VictimPanel:
    """A set of victim AxDNNs evaluated together on shared inputs.

    ``victims`` maps victim name to :class:`AxModel`; insertion order is
    preserved everywhere.  All victims must be *lockstep-compatible*: same
    layer count and same per-sample output shape (true for any set built
    from one source model, which is how every figure builds its panel).
    Check :meth:`compatible` first when the victim set is arbitrary.
    """

    def __init__(self, victims: Mapping[str, AxModel]) -> None:
        self.victims: Dict[str, AxModel] = dict(victims)
        if not self.victims:
            raise ConfigurationError("VictimPanel requires at least one victim")
        self._names = list(self.victims)
        self._models = list(self.victims.values())
        if not self.compatible(self._models):
            raise ConfigurationError(
                "panel victims are not lockstep-compatible (layer counts or "
                "output shapes differ); evaluate them individually instead"
            )
        self.output_shape = self._models[0].output_shape
        self._plan = self._build_plan()

    # ------------------------------------------------------------- planning
    @staticmethod
    def compatible(models: Sequence[AxModel]) -> bool:
        """Whether ``models`` can be walked in lockstep."""
        if not models:
            return False
        first = models[0]
        return all(
            len(m.layers) == len(first.layers)
            and m.output_shape == first.output_shape
            for m in models
        )

    def _build_plan(self):
        """Static per-layer fusion plan via partition refinement.

        Each plan entry is a list of steps ``(mode, group, extra)``:

        * ``("shared", group, None)`` — one float passthrough forward for
          the whole group;
        * ``("conv", group, scheme_splits)`` / ``("dense", group,
          scheme_splits)`` — one patch extraction per group, one
          quantization per scheme subgroup, one LUT product per compute
          subgroup; ``scheme_splits`` is a list of ``(scheme_subgroup,
          [compute_subgroups...])``;
        * ``("solo", (v,), None)`` — plain per-victim forward.
        """
        models = self._models
        groups: List[_Group] = [tuple(range(len(models)))]
        plan = []
        for layer_index in range(len(models[0].layers)):
            steps = []
            next_groups: List[_Group] = []
            for group in groups:
                layers = [models[v].layers[layer_index] for v in group]
                first = layers[0]
                if isinstance(first, PassthroughLayer) and all(
                    isinstance(l, PassthroughLayer) and l.layer is first.layer
                    for l in layers
                ):
                    steps.append(("shared", group, None))
                    next_groups.append(group)
                    continue
                fused_type = None
                if all(isinstance(l, AxConv2D) for l in layers) and all(
                    l.geometry == first.geometry for l in layers
                ):
                    fused_type = "conv"
                elif all(isinstance(l, AxDense) for l in layers):
                    fused_type = "dense"
                if fused_type is not None:
                    scheme_splits = []
                    for scheme_group in _refine(
                        group,
                        layers,
                        lambda a, b: a.activation_scheme == b.activation_scheme,
                    ):
                        scheme_layers = [
                            models[v].layers[layer_index] for v in scheme_group
                        ]
                        compute_groups = _refine(
                            scheme_group, scheme_layers, _same_compute
                        )
                        scheme_splits.append((scheme_group, compute_groups))
                        next_groups.extend(compute_groups)
                    steps.append((fused_type, group, scheme_splits))
                    continue
                # heterogeneous group (mixed layer kinds / geometries):
                # fall back to per-victim evaluation from here on
                for victim in group:
                    steps.append(("solo", (victim,), None))
                    next_groups.append((victim,))
            plan.append(steps)
            groups = next_groups
        return plan

    # -------------------------------------------------------------- compute
    def forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Logits for one batch, keyed by victim name (bit-identical to
        running each victim's ``forward`` on ``x``)."""
        x = np.asarray(x, dtype=np.float64)
        models = self._models
        activations: Dict[_Group, np.ndarray] = {
            tuple(range(len(models))): x
        }
        for layer_index, steps in enumerate(self._plan):
            next_activations: Dict[_Group, np.ndarray] = {}
            for mode, group, extra in steps:
                value = activations[group]
                layer = models[group[0]].layers[layer_index]
                if mode == "shared" or mode == "solo":
                    next_activations[group] = layer.forward(value)
                elif mode == "conv":
                    cols = layer.extract_cols(value)
                    batch, out_h, out_w, _ = cols.shape
                    for scheme_group, compute_groups in extra:
                        codes = models[scheme_group[0]].layers[
                            layer_index
                        ].quantize_cols(cols)
                        for compute_group in compute_groups:
                            rep = models[compute_group[0]].layers[layer_index]
                            next_activations[compute_group] = (
                                rep.forward_from_codes(codes, batch, out_h, out_w)
                            )
                else:  # dense
                    for scheme_group, compute_groups in extra:
                        codes = models[scheme_group[0]].layers[
                            layer_index
                        ].quantize_input(value)
                        for compute_group in compute_groups:
                            rep = models[compute_group[0]].layers[layer_index]
                            next_activations[compute_group] = (
                                rep.forward_from_codes(codes)
                            )
            activations = next_activations
        by_victim: Dict[str, np.ndarray] = {}
        for group, value in activations.items():
            for victim in group:
                by_victim[self._names[victim]] = value
        return {name: by_victim[name] for name in self._names}

    def _forward_stacked(self, x: np.ndarray) -> np.ndarray:
        """Panel logits stacked to ``(batch, n_victims, *output_shape)`` so
        the sharded runtime can concatenate shard results along axis 0."""
        outputs = self.forward(x)
        return np.stack([outputs[name] for name in self._names], axis=1)

    def predict(
        self, x: np.ndarray, batch_size: int = 64, workers: WorkerSpec = None
    ) -> Dict[str, np.ndarray]:
        """Batched panel inference returning logits per victim.

        Same sharding contract as :meth:`AxModel.predict`: gradient-free,
        batch slicing independent of the worker count, results
        bit-identical for every ``workers`` value.
        """
        validate_batch_size(batch_size)
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] == 0:
            empty = np.zeros((0,) + self.output_shape, dtype=np.float64)
            return {name: empty.copy() for name in self._names}
        stacked = run_sharded(self._forward_stacked, x, batch_size, workers=workers)
        return {
            name: stacked[:, index]
            for index, name in enumerate(self._names)
        }

    def predict_classes(
        self, x: np.ndarray, batch_size: int = 64, workers: WorkerSpec = None
    ) -> Dict[str, np.ndarray]:
        """Predicted class labels per victim."""
        logits = self.predict(x, batch_size=batch_size, workers=workers)
        return {name: np.argmax(value, axis=-1) for name, value in logits.items()}

    # ------------------------------------------------------------ reporting
    def fusion_report(self) -> List[str]:
        """One line per layer describing how much work the panel shares."""
        lines = []
        n = len(self._models)
        for layer_index, steps in enumerate(self._plan):
            parts = []
            for mode, group, extra in steps:
                if mode in ("shared", "solo"):
                    parts.append(f"{mode}x{len(group)}")
                else:
                    quantizations = len(extra)
                    products = sum(len(cg) for _, cg in extra)
                    stages = "1 extract, " if mode == "conv" else ""
                    parts.append(
                        f"{mode}[{len(group)} victims, {stages}"
                        f"{quantizations} quantize, {products} products]"
                    )
            name = self._models[0].layers[layer_index].name
            lines.append(f"{name}: {' + '.join(parts)}")
        lines.append(f"panel: {n} victims, {len(self._plan)} layers")
        return lines

    def __len__(self) -> int:
        return len(self._models)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VictimPanel(victims={self._names!r})"
