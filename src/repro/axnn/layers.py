"""Inference-only layers of the approximate DNN (AxDNN).

An AxDNN is built from a trained float model by
:func:`repro.axnn.engine.build_axdnn`: compute layers (convolutions and dense
layers) become :class:`AxConv2D` / :class:`AxDense`, which quantize their
inputs and weights to 8-bit fixed point and evaluate every product through
the configured approximate multiplier; all other layers (activations,
pooling, flatten, dropout, batch-norm) keep their float behaviour in
evaluation mode via :class:`PassthroughLayer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.axnn.approx_ops import (
    quantize_weights_sign_magnitude,
    zero_point_correction_vector,
)
from repro.axnn.kernels import KernelSpec, make_kernel
from repro.errors import ShapeError
from repro.multipliers.base import Multiplier
from repro.nn.functional import im2col
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.quantization.schemes import AffineQuantization


class AxLayer:
    """Base class for inference-only AxDNN layers."""

    def __init__(self, name: str) -> None:
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PassthroughLayer(AxLayer):
    """Wraps a float layer, evaluated in inference mode."""

    def __init__(self, layer: Layer) -> None:
        super().__init__(layer.name)
        self.layer = layer

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.layer.forward(x, training=False)


class AxDense(AxLayer):
    """Quantized dense layer evaluated through an approximate multiplier."""

    def __init__(
        self,
        source: Dense,
        multiplier: Multiplier,
        activation_scheme: AffineQuantization,
        weight_bits: int = 8,
        kernel: KernelSpec = "auto",
    ) -> None:
        super().__init__(f"ax_{source.name}")
        self.multiplier = multiplier
        self.activation_scheme = activation_scheme
        weight = source.params["weight"]
        self.weight_sign, self.weight_magnitude, self.weight_scale = (
            quantize_weights_sign_magnitude(weight, bits=weight_bits)
        )
        self.bias = source.params.get("bias")
        self.units = source.units
        # Bound kernel and zero-point correction are built once per layer:
        # the weights are constant during inference, so every per-weight
        # table (per-code factors, signed-weight BLAS operand, correction
        # vector) is paid for here instead of on every forward call.
        self.kernel = make_kernel(
            multiplier, self.weight_sign, self.weight_magnitude, kernel
        )
        self._zero_point_correction = zero_point_correction_vector(
            self.weight_sign, self.weight_magnitude
        )

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Activation codes for ``x`` — shareable across panel victims whose
        layers use the same quantization scheme."""
        if x.ndim != 2:
            raise ShapeError(f"{self.name}: expected 2-D input, got {x.shape}")
        return self.activation_scheme.quantize(x)

    def forward_from_codes(self, codes: np.ndarray) -> np.ndarray:
        """Evaluate the layer from precomputed activation codes.

        ``forward`` is exactly ``forward_from_codes(quantize_input(x))``;
        the split lets :class:`repro.axnn.panel.VictimPanel` quantize once
        and feed every victim's LUT product from the shared codes.
        """
        accumulator = self.kernel.matmul(codes)
        zero_point = self.activation_scheme.zero_point
        if zero_point:
            accumulator = accumulator - zero_point * self._zero_point_correction[None, :]
        y = accumulator.astype(np.float64) * (
            self.activation_scheme.scale * self.weight_scale
        )
        if self.bias is not None:
            y = y + self.bias
        return y

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.forward_from_codes(self.quantize_input(x))


class AxConv2D(AxLayer):
    """Quantized 2-D convolution evaluated through an approximate multiplier."""

    def __init__(
        self,
        source: Conv2D,
        multiplier: Multiplier,
        activation_scheme: AffineQuantization,
        weight_bits: int = 8,
        kernel: KernelSpec = "auto",
    ) -> None:
        super().__init__(f"ax_{source.name}")
        self.multiplier = multiplier
        self.activation_scheme = activation_scheme
        self.kernel_size = source.kernel_size
        self.stride = source.stride
        self.pad_amount = source.pad_amount
        self.filters = source.filters
        flattened = source.flattened_weight()  # (kh*kw*cin, filters)
        self.weight_sign, self.weight_magnitude, self.weight_scale = (
            quantize_weights_sign_magnitude(flattened, bits=weight_bits)
        )
        self.bias = source.params.get("bias")
        self.kernel = make_kernel(
            multiplier, self.weight_sign, self.weight_magnitude, kernel
        )
        self._zero_point_correction = zero_point_correction_vector(
            self.weight_sign, self.weight_magnitude
        )

    @property
    def geometry(self) -> tuple:
        """Patch-extraction geometry; victims with equal geometry can share
        one im2col per batch (the expensive data movement of this layer)."""
        return (self.kernel_size, self.stride, self.pad_amount)

    def extract_cols(self, x: np.ndarray) -> np.ndarray:
        """The im2col patch matrix for ``x`` — a pure function of the input
        and :attr:`geometry`, hence shareable across panel victims."""
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got {x.shape}")
        return im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.pad_amount
        )

    def quantize_cols(self, cols: np.ndarray) -> np.ndarray:
        """Activation codes of a patch matrix — shareable across victims
        whose layers use the same quantization scheme."""
        patch = cols.shape[-1]
        return self.activation_scheme.quantize(cols.reshape(-1, patch))

    def forward_from_codes(
        self, codes: np.ndarray, batch: int, out_h: int, out_w: int
    ) -> np.ndarray:
        """Evaluate the layer from precomputed activation codes.

        ``forward`` is exactly this applied to
        ``quantize_cols(extract_cols(x))``; the decomposition is what the
        fused multi-victim panel exploits.
        """
        accumulator = self.kernel.matmul(codes)
        zero_point = self.activation_scheme.zero_point
        if zero_point:
            accumulator = accumulator - zero_point * self._zero_point_correction[None, :]
        y = accumulator.astype(np.float64) * (
            self.activation_scheme.scale * self.weight_scale
        )
        y = y.reshape(batch, out_h, out_w, self.filters)
        if self.bias is not None:
            y = y + self.bias
        return y

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols = self.extract_cols(x)
        batch, out_h, out_w, _ = cols.shape
        return self.forward_from_codes(
            self.quantize_cols(cols), batch, out_h, out_w
        )
