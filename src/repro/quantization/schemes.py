"""Quantization schemes: affine (asymmetric) and symmetric fixed point.

An affine scheme maps a real value ``x`` to an unsigned integer ``q`` via

    q = clip(round(x / scale) + zero_point, 0, 2**bits - 1)

and back via ``x ≈ (q - zero_point) * scale``.  A symmetric scheme maps to a
signed integer without a zero point.  Both are per-tensor, matching the
fixed-point quantization used by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, ConfigurationError


@dataclass(frozen=True)
class AffineQuantization:
    """Per-tensor affine (asymmetric, unsigned) quantization."""

    scale: float
    zero_point: int
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if not 1 <= self.bits <= 16:
            raise ConfigurationError(f"bits must be in [1, 16], got {self.bits}")
        if not 0 <= self.zero_point <= self.qmax:
            raise ConfigurationError(
                f"zero_point must be in [0, {self.qmax}], got {self.zero_point}"
            )

    @property
    def qmax(self) -> int:
        """Largest quantized code."""
        return (1 << self.bits) - 1

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Quantize a float array to integer codes (int64)."""
        q = np.round(np.asarray(x, dtype=np.float64) / self.scale) + self.zero_point
        return np.clip(q, 0, self.qmax).astype(np.int64)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """Map integer codes back to floats."""
        return (np.asarray(q, dtype=np.float64) - self.zero_point) * self.scale

    def round_trip(self, x: np.ndarray) -> np.ndarray:
        """Quantize then dequantize (the fixed-point projection of ``x``)."""
        return self.dequantize(self.quantize(x))


@dataclass(frozen=True)
class SymmetricQuantization:
    """Per-tensor symmetric (signed, no zero point) quantization."""

    scale: float
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if not 2 <= self.bits <= 16:
            raise ConfigurationError(f"bits must be in [2, 16], got {self.bits}")

    @property
    def qmax(self) -> int:
        """Largest positive quantized code (magnitude bound)."""
        return (1 << (self.bits - 1)) - 1

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Quantize a float array to signed integer codes (int64)."""
        q = np.round(np.asarray(x, dtype=np.float64) / self.scale)
        return np.clip(q, -self.qmax, self.qmax).astype(np.int64)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """Map signed integer codes back to floats."""
        return np.asarray(q, dtype=np.float64) * self.scale

    def round_trip(self, x: np.ndarray) -> np.ndarray:
        """Quantize then dequantize (the fixed-point projection of ``x``)."""
        return self.dequantize(self.quantize(x))


@dataclass
class QuantizedTensor:
    """An integer tensor together with the scheme that produced it."""

    codes: np.ndarray
    scheme: object

    @property
    def shape(self) -> tuple:
        return self.codes.shape

    def dequantize(self) -> np.ndarray:
        """Recover the float approximation of the original tensor."""
        return self.scheme.dequantize(self.codes)


def calibrate_affine(
    x: np.ndarray, bits: int = 8, min_range: float = 1e-8
) -> AffineQuantization:
    """Min/max calibration of an affine scheme over a float tensor."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise CalibrationError("cannot calibrate on an empty tensor")
    lo = float(min(x.min(), 0.0))
    hi = float(max(x.max(), 0.0))
    span = max(hi - lo, min_range)
    qmax = (1 << bits) - 1
    scale = span / qmax
    zero_point = int(np.clip(np.round(-lo / scale), 0, qmax))
    return AffineQuantization(scale=scale, zero_point=zero_point, bits=bits)


def calibrate_symmetric(
    x: np.ndarray, bits: int = 8, min_range: float = 1e-8
) -> SymmetricQuantization:
    """Max-abs calibration of a symmetric scheme over a float tensor."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise CalibrationError("cannot calibrate on an empty tensor")
    amax = max(float(np.abs(x).max()), min_range)
    qmax = (1 << (bits - 1)) - 1
    return SymmetricQuantization(scale=amax / qmax, bits=bits)
