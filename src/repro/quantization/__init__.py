"""Fixed-point (integer) quantization used by the approximate inference engine.

The paper quantizes the inference path of both the accurate DNN and the
AxDNNs to 8-bit fixed point before substituting the multipliers (Algorithm 1,
line 7).  This package provides affine/symmetric quantization schemes,
min/max calibration and a small container type for quantized tensors.
"""

from repro.quantization.schemes import (
    AffineQuantization,
    QuantizedTensor,
    SymmetricQuantization,
    calibrate_affine,
    calibrate_symmetric,
)
from repro.quantization.quantizer import (
    ActivationObserver,
    LayerQuantizationConfig,
    QuantizationConfig,
)

__all__ = [
    "AffineQuantization",
    "SymmetricQuantization",
    "QuantizedTensor",
    "calibrate_affine",
    "calibrate_symmetric",
    "ActivationObserver",
    "LayerQuantizationConfig",
    "QuantizationConfig",
]
