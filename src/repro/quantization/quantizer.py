"""Model-level quantization configuration and activation calibration.

The approximate inference engine quantizes, per compute layer,

* the input activations with an unsigned affine scheme (activations are
  non-negative after ReLU / input normalisation), and
* the weights with a signed symmetric scheme (sign-magnitude products go
  through the unsigned approximate multiplier, see
  :mod:`repro.multipliers.signed`).

:class:`ActivationObserver` records activation ranges over a calibration
batch; :class:`QuantizationConfig` stores the resulting per-layer schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import CalibrationError
from repro.quantization.schemes import (
    AffineQuantization,
    SymmetricQuantization,
    calibrate_affine,
    calibrate_symmetric,
)


class ActivationObserver:
    """Tracks the running min/max of a tensor stream for calibration."""

    def __init__(self) -> None:
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._count = 0

    def update(self, x: np.ndarray) -> None:
        """Fold one batch of activations into the running range."""
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            return
        batch_min = float(x.min())
        batch_max = float(x.max())
        self._min = batch_min if self._min is None else min(self._min, batch_min)
        self._max = batch_max if self._max is None else max(self._max, batch_max)
        self._count += 1

    @property
    def observed_batches(self) -> int:
        return self._count

    def affine_scheme(self, bits: int = 8) -> AffineQuantization:
        """Build an affine scheme covering the observed range."""
        if self._min is None or self._max is None:
            raise CalibrationError("observer has not seen any data")
        lo = min(self._min, 0.0)
        hi = max(self._max, 0.0)
        span = max(hi - lo, 1e-8)
        qmax = (1 << bits) - 1
        scale = span / qmax
        zero_point = int(np.clip(np.round(-lo / scale), 0, qmax))
        return AffineQuantization(scale=scale, zero_point=zero_point, bits=bits)


@dataclass
class LayerQuantizationConfig:
    """Quantization schemes of a single compute layer."""

    activation: AffineQuantization
    weight: SymmetricQuantization

    @classmethod
    def calibrate(
        cls, activations: np.ndarray, weights: np.ndarray, bits: int = 8
    ) -> "LayerQuantizationConfig":
        """Calibrate both schemes directly from sample tensors."""
        return cls(
            activation=calibrate_affine(activations, bits=bits),
            weight=calibrate_symmetric(weights, bits=bits),
        )


@dataclass
class QuantizationConfig:
    """Per-layer quantization configuration for a whole model."""

    bits: int = 8
    layers: Dict[str, LayerQuantizationConfig] = field(default_factory=dict)

    def add_layer(self, name: str, config: LayerQuantizationConfig) -> None:
        """Register the schemes of a named layer."""
        self.layers[name] = config

    def layer(self, name: str) -> LayerQuantizationConfig:
        """Return the schemes of a named layer."""
        try:
            return self.layers[name]
        except KeyError as exc:
            raise CalibrationError(
                f"layer {name!r} has no quantization config; calibrated layers: "
                f"{sorted(self.layers)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self.layers

    def __len__(self) -> int:
        return len(self.layers)
