"""Reporting, ASCII tables, digitised paper data and trend checks."""

from repro.analysis.experiments import (
    TrendCheck,
    approximation_not_universally_defensive,
    collapse_under_attack,
    compare_with_paper_grid,
    high_error_multiplier_more_vulnerable,
    l2_milder_than_linf,
    monotonic_decrease,
    quantization_helps_but_approximation_hurts,
    summarize,
)
from repro.analysis.paper_data import (
    ALEXNET_FIGURES,
    ALEXNET_LABELS,
    HEADLINE_CLAIMS,
    LENET_FIGURES,
    LENET_LABELS,
    PAPER_EPSILONS,
    TABLE2_TRANSFERABILITY,
    alexnet_paper_grid,
    lenet_paper_grid,
)
from repro.analysis.tables import (
    format_comparison,
    format_grid,
    format_robustness_grid,
    format_transfer_table,
)

__all__ = [
    "TrendCheck",
    "monotonic_decrease",
    "collapse_under_attack",
    "l2_milder_than_linf",
    "high_error_multiplier_more_vulnerable",
    "approximation_not_universally_defensive",
    "quantization_helps_but_approximation_hurts",
    "summarize",
    "compare_with_paper_grid",
    "format_grid",
    "format_robustness_grid",
    "format_comparison",
    "format_transfer_table",
    "PAPER_EPSILONS",
    "LENET_LABELS",
    "ALEXNET_LABELS",
    "LENET_FIGURES",
    "ALEXNET_FIGURES",
    "TABLE2_TRANSFERABILITY",
    "HEADLINE_CLAIMS",
    "lenet_paper_grid",
    "alexnet_paper_grid",
]
