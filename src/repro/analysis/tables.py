"""ASCII rendering of robustness grids and comparison tables.

The paper presents its results as heat-map tables (Figures 4-7); these
helpers render :class:`repro.robustness.sweep.RobustnessGrid` objects — and
raw NumPy grids such as the digitised paper data — in the same row/column
layout for terminals and the EXPERIMENTS.md report.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.robustness.sweep import RobustnessGrid


def format_grid(
    values: np.ndarray,
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    title: Optional[str] = None,
    cell_width: int = 5,
    float_format: str = "{:.0f}",
) -> str:
    """Render a 2-D array as an aligned ASCII table."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (len(row_labels), len(column_labels)):
        raise ShapeError(
            f"values shape {values.shape} does not match labels "
            f"({len(row_labels)}, {len(column_labels)})"
        )
    label_width = max((len(str(label)) for label in row_labels), default=4) + 2
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * label_width + "".join(
        f"{str(label):>{cell_width}}" for label in column_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row_index, row_label in enumerate(row_labels):
        cells = "".join(
            f"{float_format.format(value):>{cell_width}}"
            for value in values[row_index]
        )
        lines.append(f"{str(row_label):<{label_width}}" + cells)
    return "\n".join(lines)


def format_robustness_grid(grid: RobustnessGrid, title: Optional[str] = None) -> str:
    """Render a robustness grid in the paper's figure layout (eps rows, multiplier columns)."""
    heading = title or f"{grid.attack_key} on {grid.dataset_name}"
    row_labels = [f"{eps:.2f}" for eps in grid.epsilons]
    return format_grid(grid.values, row_labels, grid.victim_labels, title=heading)


def format_comparison(
    measured: RobustnessGrid,
    reference: np.ndarray,
    reference_name: str = "paper",
) -> str:
    """Render measured and reference grids side by side (same layout)."""
    reference = np.asarray(reference, dtype=np.float64)
    row_labels = [f"{eps:.2f}" for eps in measured.epsilons]
    measured_text = format_grid(
        measured.values, row_labels, measured.victim_labels, title="measured"
    )
    if reference.shape[0] != len(measured.epsilons):
        raise ShapeError(
            f"reference grid has {reference.shape[0]} rows, expected "
            f"{len(measured.epsilons)}"
        )
    reference_text = format_grid(
        reference,
        row_labels,
        measured.victim_labels[: reference.shape[1]],
        title=reference_name,
    )
    return measured_text + "\n\n" + reference_text


def format_transfer_table(cells, datasets: Sequence[str], victims: Sequence[str]) -> str:
    """Render a transferability table in the paper's Table II layout."""
    sources = sorted({cell.source for cell in cells})
    header = ["source"] + [f"{dataset}:{victim}" for dataset in datasets for victim in victims]
    lines = ["  ".join(f"{item:>12}" for item in header)]
    for source in sources:
        row = [source]
        for dataset in datasets:
            for victim in victims:
                match = [
                    cell
                    for cell in cells
                    if cell.source == source
                    and cell.victim == victim
                    and cell.dataset == dataset
                ]
                row.append(match[0].as_paper_cell() if match else "-")
        lines.append("  ".join(f"{item:>12}" for item in row))
    return "\n".join(lines)
