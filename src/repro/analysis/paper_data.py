"""Digitised result grids from the original paper.

Figures 4-7 of the paper print the percentage-robustness values of every
(multiplier, perturbation budget) cell; this module transcribes them so that
the reproduction can be compared quantitatively against the original
(trend/shape comparisons in :mod:`repro.analysis.experiments`, and the
paper-vs-measured tables in EXPERIMENTS.md).

All grids have perturbation budgets on the rows (``PAPER_EPSILONS`` order)
and multipliers on the columns (M1..M9 for the LeNet-5 set, the eight-entry
set for AlexNet).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: perturbation budgets used by every figure in the paper
PAPER_EPSILONS: List[float] = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0, 1.5, 2.0]

#: LeNet-5 / MNIST multiplier labels (paper order M1..M9)
LENET_LABELS: List[str] = ["M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9"]

#: AlexNet / CIFAR-10 multiplier labels (paper order)
ALEXNET_LABELS: List[str] = ["A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"]

# --------------------------------------------------------------------------
# Figure 4: LeNet-5 / MNIST under BIM and FGM
# --------------------------------------------------------------------------

FIG4A_BIM_LINF = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [97, 96, 96, 93, 94, 73, 92, 84, 74],
    [93, 90, 90, 85, 85, 70, 83, 71, 72],
    [77, 72, 77, 71, 75, 67, 63, 45, 77],
    [54, 50, 56, 51, 56, 49, 40, 23, 25],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
], dtype=np.float64)

FIG4B_BIM_L2 = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 97, 91, 95, 90, 93],
    [98, 98, 98, 96, 96, 91, 95, 90, 92],
    [98, 98, 98, 96, 96, 90, 95, 90, 91],
    [98, 97, 97, 96, 96, 90, 95, 89, 89],
    [97, 96, 97, 94, 95, 88, 93, 87, 84],
    [94, 92, 93, 88, 90, 80, 86, 77, 75],
    [86, 82, 83, 77, 81, 70, 75, 64, 64],
    [69, 65, 68, 62, 66, 57, 58, 48, 49],
], dtype=np.float64)

FIG4C_FGM_LINF = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [97, 97, 96, 94, 94, 87, 93, 86, 71],
    [94, 93, 93, 87, 87, 73, 88, 79, 77],
    [89, 86, 86, 76, 79, 70, 78, 65, 83],
    [77, 75, 73, 60, 68, 53, 65, 52, 41],
    [61, 59, 57, 42, 49, 34, 59, 41, 53],
    [11, 12, 12, 12, 12, 12, 10, 12, 10],
    [10, 10, 11, 12, 12, 12, 9, 11, 9],
    [10, 10, 11, 12, 12, 12, 9, 11, 9],
    [10, 10, 11, 12, 12, 12, 9, 11, 9],
], dtype=np.float64)

FIG4D_FGM_L2 = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 95, 90, 93],
    [98, 98, 98, 96, 96, 91, 95, 90, 93],
    [98, 98, 98, 96, 96, 90, 95, 90, 98],
    [98, 98, 98, 96, 96, 90, 95, 89, 98],
    [98, 97, 97, 95, 96, 89, 94, 88, 97],
    [96, 95, 95, 92, 83, 84, 97, 83, 81],
    [94, 92, 92, 87, 89, 78, 86, 76, 73],
    [89, 97, 87, 79, 82, 71, 80, 70, 65],
], dtype=np.float64)

# --------------------------------------------------------------------------
# Figure 5: LeNet-5 / MNIST under PGD and RAU
# --------------------------------------------------------------------------

FIG5A_PGD_L2 = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 97, 91, 96, 90, 93],
    [98, 98, 98, 96, 97, 91, 95, 90, 91],
    [98, 99, 98, 96, 96, 91, 95, 90, 90],
    [98, 98, 97, 96, 96, 90, 95, 89, 88],
    [98, 97, 97, 95, 95, 88, 94, 87, 85],
    [95, 94, 94, 90, 92, 83, 89, 80, 80],
    [91, 88, 88, 82, 86, 74, 81, 68, 69],
    [81, 77, 78, 71, 75, 64, 70, 55, 57],
], dtype=np.float64)

FIG5B_PGD_LINF = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [97, 96, 96, 93, 94, 87, 92, 85, 70],
    [93, 91, 91, 86, 86, 72, 84, 72, 74],
    [80, 75, 79, 72, 76, 69, 66, 45, 73],
    [59, 54, 59, 53, 59, 51, 44, 24, 32],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
], dtype=np.float64)

FIG5C_RAU_L2 = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 97, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 99, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
], dtype=np.float64)

FIG5D_RAU_LINF = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 97, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 99, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [95, 92, 91, 84, 86, 78, 89, 82, 77],
    [48, 38, 28, 14, 18, 13, 33, 18, 18],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0, 0],
], dtype=np.float64)

# --------------------------------------------------------------------------
# Figure 6: LeNet-5 / MNIST under CR and RAG
# --------------------------------------------------------------------------

FIG6A_CR_L2 = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 94],
    [98, 99, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 97, 97, 92, 96, 90, 89],
    [98, 98, 98, 96, 97, 91, 96, 90, 97],
    [98, 98, 98, 96, 97, 88, 95, 88, 77],
    [98, 98, 98, 96, 96, 90, 95, 87, 45],
    [98, 98, 97, 96, 96, 88, 94, 84, 51],
], dtype=np.float64)

FIG6B_RAG_L2 = np.array([
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 99, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
    [98, 98, 98, 96, 96, 91, 96, 90, 93],
], dtype=np.float64)

# --------------------------------------------------------------------------
# Figure 7: AlexNet / CIFAR-10 under CR, RAG and RAU
# --------------------------------------------------------------------------

FIG7A_CR_L2 = np.array([
    [80, 80, 80, 79, 80, 78, 80, 79],
    [80, 80, 80, 79, 80, 78, 80, 79],
    [80, 80, 79, 79, 80, 78, 80, 79],
    [80, 80, 78, 79, 80, 78, 80, 79],
    [80, 80, 76, 79, 80, 78, 80, 79],
    [80, 80, 74, 79, 80, 78, 80, 78],
    [79, 79, 80, 79, 80, 78, 80, 78],
    [77, 77, 80, 79, 79, 78, 79, 77],
    [75, 75, 80, 78, 77, 77, 77, 76],
    [73, 73, 80, 76, 75, 76, 76, 75],
], dtype=np.float64)

FIG7B_RAG_L2 = np.array([
    [80, 80, 80, 79, 80, 78, 80, 79],
    [80, 80, 80, 79, 80, 78, 80, 79],
    [79, 80, 80, 79, 80, 78, 80, 79],
    [79, 80, 80, 79, 80, 78, 80, 79],
    [79, 80, 80, 79, 80, 78, 80, 79],
    [79, 80, 80, 79, 80, 78, 80, 79],
    [79, 79, 80, 79, 80, 78, 80, 79],
    [79, 77, 78, 79, 79, 78, 79, 77],
    [79, 75, 76, 78, 77, 77, 77, 76],
    [73, 73, 74, 76, 75, 76, 76, 75],
], dtype=np.float64)

FIG7C_RAU_L2 = np.array([
    [80, 80, 80, 79, 80, 78, 78, 79],
    [80, 80, 80, 79, 80, 78, 78, 79],
    [80, 80, 80, 79, 80, 78, 78, 79],
    [80, 80, 80, 79, 80, 78, 78, 79],
    [80, 80, 80, 79, 80, 78, 78, 79],
    [80, 80, 80, 79, 80, 78, 78, 78],
    [79, 79, 80, 79, 80, 78, 78, 78],
    [77, 77, 78, 79, 79, 77, 77, 78],
    [75, 75, 76, 78, 78, 77, 77, 77],
    [73, 73, 74, 76, 76, 76, 75, 75],
], dtype=np.float64)

FIG7D_RAU_LINF = np.array([
    [80, 80, 80, 79, 80, 78, 80, 79],
    [74, 74, 75, 77, 76, 76, 77, 76],
    [67, 67, 68, 72, 70, 73, 70, 71],
    [57, 58, 59, 64, 62, 66, 62, 64],
    [47, 47, 49, 55, 52, 58, 54, 56],
    [37, 37, 40, 47, 43, 50, 43, 43],
    [8, 8, 10, 17, 12, 22, 13, 24],
    [0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0],
    [0, 0, 0, 0, 0, 0, 0, 0],
], dtype=np.float64)

# --------------------------------------------------------------------------
# Table II: transferability of the linf BIM attack (eps = 0.05)
# --------------------------------------------------------------------------

#: (source, victim, dataset) -> (accuracy before, accuracy after)
TABLE2_TRANSFERABILITY: Dict[tuple, tuple] = {
    ("AccL5", "AxL5", "MNIST"): (98.0, 97.0),
    ("AccL5", "AxAlx", "MNIST"): (67.0, 43.0),
    ("AccL5", "AxL5", "CIFAR-10"): (54.0, 9.0),
    ("AccL5", "AxAlx", "CIFAR-10"): (53.0, 4.0),
    ("AccAlx", "AxL5", "MNIST"): (98.0, 9.0),
    ("AccAlx", "AxAlx", "MNIST"): (67.0, 11.0),
    ("AccAlx", "AxL5", "CIFAR-10"): (54.0, 20.0),
    ("AccAlx", "AxAlx", "CIFAR-10"): (53.0, 10.0),
}

#: grids of the LeNet-5 figures keyed by (figure panel, attack key)
LENET_FIGURES: Dict[str, np.ndarray] = {
    "fig4a:BIM_linf": FIG4A_BIM_LINF,
    "fig4b:BIM_l2": FIG4B_BIM_L2,
    "fig4c:FGM_linf": FIG4C_FGM_LINF,
    "fig4d:FGM_l2": FIG4D_FGM_L2,
    "fig5a:PGD_l2": FIG5A_PGD_L2,
    "fig5b:PGD_linf": FIG5B_PGD_LINF,
    "fig5c:RAU_l2": FIG5C_RAU_L2,
    "fig5d:RAU_linf": FIG5D_RAU_LINF,
    "fig6a:CR_l2": FIG6A_CR_L2,
    "fig6b:RAG_l2": FIG6B_RAG_L2,
}

#: grids of the AlexNet figures keyed by (figure panel, attack key)
ALEXNET_FIGURES: Dict[str, np.ndarray] = {
    "fig7a:CR_l2": FIG7A_CR_L2,
    "fig7b:RAG_l2": FIG7B_RAG_L2,
    "fig7c:RAU_l2": FIG7C_RAU_L2,
    "fig7d:RAU_linf": FIG7D_RAU_LINF,
}

#: headline numbers quoted in the abstract / Section IV
HEADLINE_CLAIMS = {
    # l2 CR attack at eps = 1.5: 53% accuracy loss in the M8 AxDNN, near-zero
    # loss (0.06%) in the accurate DNN
    "cr_attack_axdnn_loss_percent": 53.0,
    "cr_attack_accurate_loss_percent": 0.06,
    # baseline (clean) accuracies of the accurate models
    "accurate_lenet5_accuracy": 98.0,
    "accurate_alexnet_accuracy": 81.0,
}


def lenet_paper_grid(attack_key: str) -> np.ndarray:
    """Return the paper's LeNet-5 grid for an attack key (e.g. ``"BIM_linf"``)."""
    for key, grid in LENET_FIGURES.items():
        if key.split(":", 1)[1] == attack_key:
            return grid
    raise KeyError(f"no LeNet-5 paper grid for attack {attack_key!r}")


def alexnet_paper_grid(attack_key: str) -> np.ndarray:
    """Return the paper's AlexNet grid for an attack key (e.g. ``"RAU_linf"``)."""
    for key, grid in ALEXNET_FIGURES.items():
        if key.split(":", 1)[1] == attack_key:
            return grid
    raise KeyError(f"no AlexNet paper grid for attack {attack_key!r}")
