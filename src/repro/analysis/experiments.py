"""Trend/shape checks comparing the reproduction against the paper.

Because the reproduction runs on synthetic datasets and behavioural
multiplier stand-ins (see DESIGN.md), absolute accuracy values differ from
the paper.  What is expected to hold — and what these functions verify — is
the *shape* of every result:

* robustness decreases (never meaningfully increases) as the perturbation
  budget grows;
* linf attacks are far more damaging than their l2 counterparts;
* high-MAE AxDNNs sit below low-MAE AxDNNs;
* the gradient attacks collapse accuracy to ~0 beyond a small linf budget;
* the decision attacks (CR / RAU) hurt the high-error AxDNNs much more than
  the accurate DNN, while RAG barely moves anything;
* quantization alone improves robustness while approximation on top of
  quantization removes the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.robustness.quantization_analysis import QuantizationStudy
from repro.robustness.sweep import RobustnessGrid


@dataclass(frozen=True)
class TrendCheck:
    """Outcome of one trend comparison."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def monotonic_decrease(
    grid: RobustnessGrid, victim: str, tolerance: float = 6.0
) -> TrendCheck:
    """Robustness of a victim should not increase by more than ``tolerance`` with eps."""
    column = grid.column(victim)
    increases = np.diff(column)
    worst = float(increases.max()) if increases.size else 0.0
    return TrendCheck(
        name=f"monotonic_decrease[{grid.attack_key}:{victim}]",
        passed=worst <= tolerance,
        detail=f"largest robustness increase along eps sweep = {worst:.1f} points",
    )


def collapse_under_attack(
    grid: RobustnessGrid, epsilon: float, threshold: float = 20.0
) -> TrendCheck:
    """Every victim's robustness should fall below ``threshold`` at ``epsilon``."""
    row = grid.row(epsilon)
    worst = float(row.max())
    return TrendCheck(
        name=f"collapse[{grid.attack_key}@eps={epsilon}]",
        passed=worst <= threshold,
        detail=f"max robustness across victims = {worst:.1f}% (threshold {threshold}%)",
    )


def l2_milder_than_linf(
    l2_grid: RobustnessGrid, linf_grid: RobustnessGrid, epsilon: float
) -> TrendCheck:
    """At a given budget the l2 variant should preserve more accuracy than linf."""
    l2_mean = float(l2_grid.row(epsilon).mean())
    linf_mean = float(linf_grid.row(epsilon).mean())
    return TrendCheck(
        name=f"l2_milder_than_linf[{l2_grid.attack_key} vs {linf_grid.attack_key}@{epsilon}]",
        passed=l2_mean >= linf_mean,
        detail=f"mean robustness l2 = {l2_mean:.1f}%, linf = {linf_mean:.1f}%",
    )


def high_error_multiplier_more_vulnerable(
    grid: RobustnessGrid,
    low_error_victim: str,
    high_error_victim: str,
    epsilon: float,
    slack: float = 3.0,
) -> TrendCheck:
    """A high-MAE AxDNN should not be meaningfully more robust than a low-MAE one."""
    low = float(grid.column(low_error_victim)[grid.epsilons.index(epsilon)])
    high = float(grid.column(high_error_victim)[grid.epsilons.index(epsilon)])
    return TrendCheck(
        name=(
            f"mae_ordering[{grid.attack_key}@{epsilon}:"
            f"{low_error_victim}>={high_error_victim}]"
        ),
        passed=high <= low + slack,
        detail=f"{low_error_victim}={low:.1f}%, {high_error_victim}={high:.1f}%",
    )


def approximation_not_universally_defensive(
    grid: RobustnessGrid, accurate_victim: str = "M1", slack: float = 2.0
) -> TrendCheck:
    """The paper's core claim: some AxDNN loses more accuracy than the accurate DNN.

    Passes when at least one (multiplier, eps) cell shows an accuracy loss
    exceeding the accurate DNN's loss at the same budget by ``slack`` points.
    """
    losses = grid.accuracy_loss()
    accurate_index = grid.victim_labels.index(accurate_victim)
    accurate_losses = losses[:, accurate_index]
    other = np.delete(losses, accurate_index, axis=1)
    margin = other - accurate_losses[:, None]
    worst = float(margin.max()) if margin.size else 0.0
    return TrendCheck(
        name=f"not_universally_defensive[{grid.attack_key}]",
        passed=worst >= slack,
        detail=(
            f"max extra accuracy loss of an AxDNN over the accurate DNN = "
            f"{worst:.1f} points"
        ),
    )


def quantization_helps_but_approximation_hurts(
    study: QuantizationStudy,
    approx_grid: RobustnessGrid,
    quantized_victim: str = "M1",
    approximate_victim: str = "M8",
) -> TrendCheck:
    """Fig. 8 vs Fig. 4/5: quantization gains robustness, approximation gives it back."""
    quant_gain = study.mean_quantization_gain()
    baseline = approx_grid.accuracy_loss()
    quant_index = approx_grid.victim_labels.index(quantized_victim)
    approx_index = approx_grid.victim_labels.index(approximate_victim)
    extra_loss = float(
        (baseline[:, approx_index] - baseline[:, quant_index]).max()
    )
    passed = quant_gain >= -1.0 and extra_loss > 0.0
    return TrendCheck(
        name="quantization_vs_approximation",
        passed=passed,
        detail=(
            f"mean robustness gain of quantization = {quant_gain:.1f} points; "
            f"max extra loss of {approximate_victim} over {quantized_victim} = "
            f"{extra_loss:.1f} points"
        ),
    )


def summarize(checks: Sequence[TrendCheck]) -> Dict[str, object]:
    """Aggregate a list of checks into a JSON-friendly summary."""
    return {
        "total": len(checks),
        "passed": sum(1 for check in checks if check.passed),
        "failed": [check.name for check in checks if not check.passed],
        "details": {check.name: check.detail for check in checks},
    }


def compare_with_paper_grid(
    measured: RobustnessGrid, paper_grid: np.ndarray
) -> Dict[str, float]:
    """Quantitative shape comparison between a measured grid and the paper grid.

    Reports the rank correlation of the epsilon-profile (averaged over
    multipliers) and the mean absolute difference of normalised accuracy-loss
    profiles.  Both grids must share the epsilon ordering; the measured grid
    may have a different number of multiplier columns.
    """
    paper_grid = np.asarray(paper_grid, dtype=np.float64)
    measured_profile = measured.values.mean(axis=1)
    paper_profile = paper_grid.mean(axis=1)
    n = min(len(measured_profile), len(paper_profile))
    measured_profile = measured_profile[:n]
    paper_profile = paper_profile[:n]

    def _normalise(profile: np.ndarray) -> np.ndarray:
        baseline = profile[0] if profile[0] > 0 else 1.0
        return profile / baseline

    measured_norm = _normalise(measured_profile)
    paper_norm = _normalise(paper_profile)
    # Spearman-style rank correlation without scipy.stats dependency
    measured_rank = np.argsort(np.argsort(measured_profile))
    paper_rank = np.argsort(np.argsort(paper_profile))
    if np.std(measured_rank) == 0 or np.std(paper_rank) == 0:
        rank_correlation = 1.0 if np.allclose(measured_rank, paper_rank) else 0.0
    else:
        rank_correlation = float(np.corrcoef(measured_rank, paper_rank)[0, 1])
    return {
        "rank_correlation": rank_correlation,
        "mean_abs_profile_difference": float(
            np.mean(np.abs(measured_norm - paper_norm))
        ),
        "measured_final_drop_percent": float(
            (1.0 - measured_norm[-1]) * 100.0
        ),
        "paper_final_drop_percent": float((1.0 - paper_norm[-1]) * 100.0),
    }
