"""Generate the EXPERIMENTS.md paper-vs-measured report from benchmark results.

The benchmark harness (``pytest benchmarks/ --benchmark-only``) writes every
measured grid and summary payload to ``benchmarks/results/*.json``.  This
module turns that directory into a Markdown report with, for every paper
table and figure: the measured grid, the digitised paper grid, and the
shape-comparison statistics.

Usage::

    python -m repro.cli report --results benchmarks/results --output EXPERIMENTS.md
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.experiments import compare_with_paper_grid
from repro.analysis.paper_data import (
    ALEXNET_FIGURES,
    HEADLINE_CLAIMS,
    LENET_FIGURES,
    TABLE2_TRANSFERABILITY,
)
from repro.analysis.tables import format_grid
from repro.robustness.sweep import RobustnessGrid

#: measured-result file name -> (paper figure key, description)
FIGURE_INDEX: Dict[str, tuple] = {
    "fig4a_bim_linf": ("fig4a:BIM_linf", "Fig. 4a — LeNet-5/MNIST, linf BIM"),
    "fig4b_bim_l2": ("fig4b:BIM_l2", "Fig. 4b — LeNet-5/MNIST, l2 BIM"),
    "fig4c_fgm_linf": ("fig4c:FGM_linf", "Fig. 4c — LeNet-5/MNIST, linf FGM"),
    "fig4d_fgm_l2": ("fig4d:FGM_l2", "Fig. 4d — LeNet-5/MNIST, l2 FGM"),
    "fig5a_pgd_l2": ("fig5a:PGD_l2", "Fig. 5a — LeNet-5/MNIST, l2 PGD"),
    "fig5b_pgd_linf": ("fig5b:PGD_linf", "Fig. 5b — LeNet-5/MNIST, linf PGD"),
    "fig5c_rau_l2": ("fig5c:RAU_l2", "Fig. 5c — LeNet-5/MNIST, l2 RAU"),
    "fig5d_rau_linf": ("fig5d:RAU_linf", "Fig. 5d — LeNet-5/MNIST, linf RAU"),
    "fig6a_cr_l2": ("fig6a:CR_l2", "Fig. 6a — LeNet-5/MNIST, l2 CR"),
    "fig6b_rag_l2": ("fig6b:RAG_l2", "Fig. 6b — LeNet-5/MNIST, l2 RAG"),
    "fig7a_cr_l2": ("fig7a:CR_l2", "Fig. 7a — AlexNet/CIFAR-10, l2 CR"),
    "fig7b_rag_l2": ("fig7b:RAG_l2", "Fig. 7b — AlexNet/CIFAR-10, l2 RAG"),
    "fig7c_rau_l2": ("fig7c:RAU_l2", "Fig. 7c — AlexNet/CIFAR-10, l2 RAU"),
    "fig7d_rau_linf": ("fig7d:RAU_linf", "Fig. 7d — AlexNet/CIFAR-10, linf RAU"),
}

_ALL_PAPER_FIGURES = {**LENET_FIGURES, **ALEXNET_FIGURES}


def load_grid(results_dir: str, name: str) -> Optional[RobustnessGrid]:
    """Load one measured grid written by the benchmark harness, if present."""
    path = os.path.join(results_dir, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return RobustnessGrid.from_dict(json.load(handle))


def load_payload(results_dir: str, name: str) -> Optional[dict]:
    """Load an arbitrary result payload, if present."""
    path = os.path.join(results_dir, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def _grid_markdown(title: str, grid: RobustnessGrid, paper: np.ndarray) -> List[str]:
    lines = [f"### {title}", ""]
    rows = [f"{eps:.2f}" for eps in grid.epsilons]
    lines.append("Measured robustness [%] (rows: perturbation budget, columns: multipliers):")
    lines.append("")
    lines.append("```")
    lines.append(format_grid(grid.values, rows, grid.victim_labels))
    lines.append("```")
    lines.append("")
    lines.append("Paper values for the same panel:")
    lines.append("")
    lines.append("```")
    paper_rows = [f"{eps:.2f}" for eps in grid.epsilons[: paper.shape[0]]]
    lines.append(
        format_grid(paper[: len(paper_rows)], paper_rows, [f"P{i+1}" for i in range(paper.shape[1])])
    )
    lines.append("```")
    comparison = compare_with_paper_grid(grid, paper)
    lines.append("")
    lines.append(
        "Shape comparison — rank correlation of the budget profile: "
        f"**{comparison['rank_correlation']:.2f}**, final-budget accuracy drop "
        f"(measured vs paper): {comparison['measured_final_drop_percent']:.0f}% vs "
        f"{comparison['paper_final_drop_percent']:.0f}%."
    )
    lines.append("")
    return lines


def generate_experiments_markdown(results_dir: str) -> str:
    """Build the full EXPERIMENTS.md content from a results directory."""
    lines: List[str] = []
    lines.append("# EXPERIMENTS — paper vs measured")
    lines.append("")
    lines.append(
        "This report is generated from `benchmarks/results/` (written by "
        "`pytest benchmarks/ --benchmark-only`) via "
        "`python -m repro.cli report`.  Absolute values differ from the paper "
        "because the datasets and multiplier netlists are synthetic "
        "substitutes (see DESIGN.md); the comparison targets are the trends."
    )
    lines.append("")

    # headline claims -------------------------------------------------------
    headline = load_payload(results_dir, "headline_claims")
    lines.append("## Headline claims")
    lines.append("")
    if headline:
        lines.append("| Claim | Paper | Measured |")
        lines.append("|---|---|---|")
        lines.append(
            "| Max accuracy loss of an AxDNN under the l2 CR attack | "
            f"{headline['paper_axdnn_loss_percent']:.0f}% | "
            f"{headline['measured_cr_axdnn_max_loss']:.1f}% |"
        )
        lines.append(
            "| Accuracy loss of the accurate DNN under the same attack | "
            f"{headline['paper_accurate_loss_percent']:.2f}% | "
            f"{headline['measured_cr_accurate_max_loss']:.2f}% |"
        )
        lines.append(
            "| MAE vs robustness correlation (linf BIM, informative budgets) | "
            "negative | "
            f"{headline['mae_vs_robustness_correlation']:.2f} |"
        )
        checks = headline.get("trend_checks", {})
        lines.append(
            f"| Trend checks passed | — | {checks.get('passed', 0)}/{checks.get('total', 0)} |"
        )
    else:
        lines.append("*(run `pytest benchmarks/bench_headline_claims.py --benchmark-only` to fill this section)*")
    lines.append("")

    # per-figure grids -------------------------------------------------------
    lines.append("## Figures 4–7 (robustness heat-maps)")
    lines.append("")
    for name, (paper_key, description) in FIGURE_INDEX.items():
        grid = load_grid(results_dir, name)
        if grid is None:
            lines.append(f"### {description}")
            lines.append("")
            lines.append("*(not yet measured)*")
            lines.append("")
            continue
        paper = _ALL_PAPER_FIGURES[paper_key]
        lines.extend(_grid_markdown(description, grid, paper))

    # figure 1 ---------------------------------------------------------------
    lines.append("## Figure 1 (motivational case study)")
    lines.append("")
    for name, description in [
        ("fig1_ffnn_pgd_linf", "FFNN, linf PGD"),
        ("fig1_ffnn_cr_l2", "FFNN, l2 CR"),
        ("fig1_lenet_pgd_linf", "LeNet-5, linf PGD"),
        ("fig1_lenet_cr_l2", "LeNet-5, l2 CR"),
    ]:
        grid = load_grid(results_dir, name)
        if grid is None:
            continue
        rows = [f"{eps:.2f}" for eps in grid.epsilons]
        lines.append(f"### {description}")
        lines.append("")
        lines.append("```")
        lines.append(format_grid(grid.values, rows, grid.victim_labels))
        lines.append("```")
        lines.append("")

    # figure 8 ---------------------------------------------------------------
    lines.append("## Figure 8 (quantized vs float accurate LeNet-5)")
    lines.append("")
    fig8 = load_payload(results_dir, "fig8_quantization_study")
    if fig8:
        gain = fig8.pop("mean_quantization_gain", None)
        lines.append("| Attack | float robustness @ eps=0.2 | quantized robustness @ eps=0.2 |")
        lines.append("|---|---|---|")
        for attack_key in sorted(fig8):
            comparison = fig8[attack_key]
            lines.append(
                f"| {attack_key} | {comparison['float'][4]:.1f}% | "
                f"{comparison['quantized'][4]:.1f}% |"
            )
        if gain is not None:
            lines.append("")
            lines.append(
                f"Mean robustness gain of 8-bit quantization over the float model: "
                f"**{gain:+.2f} points** (paper: quantization improves robustness)."
            )
    else:
        lines.append("*(not yet measured)*")
    lines.append("")

    # table II ----------------------------------------------------------------
    lines.append("## Table II (transferability, linf BIM)")
    lines.append("")
    table2 = load_payload(results_dir, "table2_transferability")
    if table2:
        lines.append(
            f"Measured at eps = {table2['epsilon']} with the {table2['multiplier']} AxDNNs; "
            "cells are accuracy before/after the transferred attack."
        )
        lines.append("")
        lines.append("| Source | Victim | Dataset | Measured | Paper |")
        lines.append("|---|---|---|---|---|")
        for cell in table2["cells"]:
            paper_key = (
                cell["source"],
                cell["victim"],
                "MNIST" if cell["dataset"].startswith("mnist") else "CIFAR-10",
            )
            paper_value = TABLE2_TRANSFERABILITY.get(paper_key)
            paper_text = (
                f"{paper_value[0]:.0f}/{paper_value[1]:.0f}" if paper_value else "—"
            )
            lines.append(
                f"| {cell['source']} | {cell['victim']} | {cell['dataset']} | "
                f"{cell['before']:.0f}/{cell['after']:.0f} | {paper_text} |"
            )
    else:
        lines.append("*(not yet measured)*")
    lines.append("")

    # ablations ---------------------------------------------------------------
    lines.append("## Ablations (beyond the paper)")
    lines.append("")
    mae = load_payload(results_dir, "ablation_mae_vs_accuracy")
    if mae:
        lines.append("Clean AxDNN accuracy vs multiplier MAE (LeNet-5 set):")
        lines.append("")
        lines.append("| Label | Multiplier | MAE | Clean accuracy |")
        lines.append("|---|---|---|---|")
        for row in mae["rows"]:
            lines.append(
                f"| {row['label']} | {row['multiplier']} | {row['mae_percent']:.3f}% | "
                f"{row['clean_accuracy']:.1f}% |"
            )
        lines.append("")
    lut = load_payload(results_dir, "ablation_lut_vs_exact")
    if lut:
        lines.append(
            f"LUT-gather inference is **x{lut['slowdown']:.1f}** slower than the "
            "exact-integer fast path (the simulation cost of approximation)."
        )
        lines.append("")
    energy = load_payload(results_dir, "ablation_energy_accuracy")
    if energy:
        lines.append("Energy saving vs clean accuracy (LeNet-5 multiplier set):")
        lines.append("")
        lines.append("| Label | Energy saving | Clean accuracy |")
        lines.append("|---|---|---|")
        for row in energy["rows"]:
            lines.append(
                f"| {row['label']} | {row['energy_saving_percent']:.1f}% | "
                f"{row['clean_accuracy']:.1f}% |"
            )
        lines.append("")
    conv_only = load_payload(results_dir, "ablation_convolution_only")
    if conv_only:
        lines.append(
            "Approximating only the convolutions (paper setup) vs every compute "
            f"layer: {conv_only['convolution_only']:.1f}% vs "
            f"{conv_only['all_layers']:.1f}% clean accuracy."
        )
        lines.append("")

    # known divergences -------------------------------------------------------
    lines.append("## Divergences from the paper and their causes")
    lines.append("")
    lines.append(
        "The qualitative conclusions reproduce (robustness decreases with the "
        "budget, linf attacks dominate l2 attacks, RAG is harmless, attacks "
        "transfer across architectures, and at least one AxDNN loses more "
        "accuracy than the accurate DNN under the same attack), but several "
        "magnitudes differ and are worth calling out explicitly:"
    )
    lines.append("")
    lines.append(
        "1. **CR-attack magnitude.** The paper's 53% accuracy-loss headline "
        "comes from the specific error structure of the JV3/L40 EvoApprox "
        "netlists interacting with real MNIST contrast statistics.  Our "
        "behavioural stand-ins and synthetic digits reproduce the *sign* of "
        "the effect (the AxDNN loses accuracy while the accurate DNN loses "
        "essentially none) but at a much smaller magnitude."
    )
    lines.append(
        "2. **Gradient attacks at intermediate budgets.** In our grids the "
        "highest-error AxDNNs (M6/M8) are often slightly *more* robust than "
        "the accurate DNN around the collapse region — the defensive-"
        "approximation effect of Guesmi et al., caused by approximation noise "
        "degrading the transferability of gradients crafted on the accurate "
        "model.  The paper reports the opposite ordering for BIM/PGD.  Both "
        "regimes are consistent with the paper's own thesis that the effect "
        "of approximation is not consistent or universal."
    )
    lines.append(
        "3. **Overall attack strength.** The synthetic LeNet-5 collapses at "
        "slightly smaller linf budgets (0.15–0.25) than the paper's (0.25), "
        "because the synthetic digits are more separable and the model is "
        "smaller-capacity than a real-MNIST LeNet-5."
    )
    lines.append(
        "4. **Quantization gain (Fig. 8).** The paper reports a clear "
        "robustness improvement from 8-bit quantization; our measured mean "
        "gain is approximately neutral.  The antagonism direction "
        "(approximation degrades the quantized model) still holds."
    )
    lines.append("")

    lines.append("## Reference: headline constants from the paper")
    lines.append("")
    for key, value in HEADLINE_CLAIMS.items():
        lines.append(f"* `{key}` = {value}")
    lines.append("")
    return "\n".join(lines)


def write_experiments_markdown(results_dir: str, output_path: str) -> str:
    """Generate and write EXPERIMENTS.md; returns the written content."""
    content = generate_experiments_markdown(results_dir)
    with open(output_path, "w") as handle:
        handle.write(content)
    return content
