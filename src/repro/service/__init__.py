"""Robustness evaluation as a service.

An asyncio HTTP server (stdlib-only wire layer, no web framework) that
fronts the experiment :class:`~repro.experiments.session.Session`:
experiment submission with request coalescing by spec content hash,
SSE progress streams, micro-batched single-sample robustness queries,
explicit backpressure, deadline propagation and graceful drain.

Start it with ``python -m repro.cli serve`` (or ``python -m
repro.service``); drive it with any HTTP client.
"""

from repro.service.app import ServiceApp
from repro.service.coalescer import Coalescer
from repro.service.metrics import MetricsRegistry
from repro.service.microbatch import (
    MicroBatcher,
    QueryEvaluator,
    QueryItem,
    QueryOverloadError,
)
from repro.service.protocol import HttpError, Request
from repro.service.scheduler import (
    DrainingError,
    Job,
    JobScheduler,
    QueueFullError,
    TERMINAL_STATES,
)

__all__ = [
    "ServiceApp",
    "Coalescer",
    "MetricsRegistry",
    "MicroBatcher",
    "QueryEvaluator",
    "QueryItem",
    "QueryOverloadError",
    "HttpError",
    "Request",
    "DrainingError",
    "Job",
    "JobScheduler",
    "QueueFullError",
    "TERMINAL_STATES",
]
