"""Minimal HTTP/1.1 + Server-Sent-Events wire protocol on asyncio streams.

The service speaks plain HTTP so any stdlib client (``http.client``,
``urllib``, ``curl``) can drive it, but the repo takes no web-framework
dependency: this module is the entire wire layer — a strict request parser
with explicit limits (header block, body size, ``Content-Length`` only; a
chunked request body is answered with ``411``), a response writer, and the
SSE event formatter used by the job event stream.

Responses always carry ``Connection: close``: the service's clients are
either one-shot (submit, poll, query) or hold the connection for the
lifetime of an SSE stream, and closing after each exchange keeps the
parser single-shot and the server's connection state trivial.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: request parsing limits — generous for spec documents and query images,
#: but bounded so one client cannot balloon server memory
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 32 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """An error that maps onto one HTTP response.

    ``code`` is a stable machine-readable identifier carried in the JSON
    body (``{"error": code, "message": ...}``); ``headers`` lets a raiser
    attach response headers (``Retry-After`` for backpressure).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: Optional[Mapping[str, str]] = None,
        extra: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = dict(headers or {})
        self.extra = dict(extra or {})

    def body(self) -> dict:
        payload = {"error": self.code, "message": self.message}
        payload.update(self.extra)
        return payload


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""
    peer: str = ""
    path_params: Dict[str, str] = field(default_factory=dict)

    def json(self):
        """The body parsed as JSON; raises :class:`HttpError` 400 on garbage."""
        if not self.body:
            raise HttpError(400, "empty_body", "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            ) from None

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Parse one HTTP/1.1 request off a stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed requests (the caller answers
    with the error's status and closes the connection).
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close before a request
        raise HttpError(400, "truncated_request", "connection closed mid-header")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "headers_too_large", "request header block too large")
    if len(header_block) > max_header_bytes:
        raise HttpError(413, "headers_too_large", "request header block too large")

    lines = header_block.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request_line", f"malformed request line {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad_header", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(
            411, "length_required", "chunked request bodies are not supported"
        )
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "bad_content_length", f"Content-Length {length_text!r}")
        if length < 0:
            raise HttpError(400, "bad_content_length", f"Content-Length {length_text!r}")
        if length > max_body_bytes:
            raise HttpError(
                413, "body_too_large", f"request body of {length} bytes exceeds the limit"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated_body", "connection closed mid-body")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialise one complete HTTP response (always ``Connection: close``)."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    merged = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    merged.update(headers or {})
    for name, value in merged.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int, payload, headers: Optional[Mapping[str, str]] = None
) -> bytes:
    """A JSON response body (sorted keys, trailing newline for curl comfort)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, "application/json", headers)


def error_response(error: HttpError) -> bytes:
    return json_response(error.status, error.body(), headers=error.headers)


def sse_headers() -> bytes:
    """The response head opening a Server-Sent-Events stream."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def format_sse_event(
    data, event: Optional[str] = None, event_id: Optional[str] = None
) -> bytes:
    """One SSE frame: optional ``id``/``event`` lines plus JSON ``data``."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    text = json.dumps(data, sort_keys=True)
    for chunk in text.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_deadline_s(request: Request, payload=None) -> Optional[float]:
    """Extract a client deadline (seconds) from header or JSON body.

    Clients propagate their remaining budget via the ``X-Repro-Deadline-S``
    header (one-shot requests) or a ``deadline_s`` body field (submit /
    query payloads; the body wins when both are present).  Returns ``None``
    when the client sent no deadline.
    """
    raw: object = None
    if isinstance(payload, Mapping) and payload.get("deadline_s") is not None:
        raw = payload.get("deadline_s")
    else:
        header = request.header("x-repro-deadline-s")
        if header:
            raw = header
    if raw is None:
        return None
    try:
        deadline_s = float(raw)
    except (TypeError, ValueError):
        raise HttpError(
            400, "bad_deadline", f"deadline_s must be a number of seconds, got {raw!r}"
        ) from None
    if deadline_s <= 0:
        raise HttpError(
            400, "bad_deadline", f"deadline_s must be positive, got {deadline_s!r}"
        )
    return deadline_s


def match_path(pattern: str, path: str) -> Optional[Dict[str, str]]:
    """Match ``/v1/jobs/{id}/events``-style patterns; returns the params.

    Segments in braces capture one non-empty path segment; everything else
    must match literally.  Returns ``None`` on a mismatch.
    """
    pattern_parts = pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    params: Dict[str, str] = {}
    for pattern_part, path_part in zip(pattern_parts, path_parts):
        if pattern_part.startswith("{") and pattern_part.endswith("}"):
            if not path_part:
                return None
            params[pattern_part[1:-1]] = path_part
        elif pattern_part != path_part:
            return None
    return params
