"""Thread-safe service metrics with Prometheus-style text rendering.

The service exposes everything an operator needs to reason about load and
cache behaviour on ``GET /metrics``: monotonic counters (requests,
coalesce hits, micro-batch flushes), gauges (queue depth — sampled at
render time via callables, so the value is always current), and fixed-
bucket latency histograms.  Rendering follows the Prometheus text
exposition format (``# TYPE`` headers, ``_bucket{le=...}`` cumulative
histogram rows) so the endpoint can be scraped as-is, but the module is
stdlib-only and carries no client-library dependency.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: default latency buckets (seconds) — spans sub-millisecond cache hits
#: through multi-minute training jobs
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics)."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram buckets must be unique and ascending, got {buckets!r}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.total = 0.0
        self.n = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.total += value
        self.n += 1


class MetricsRegistry:
    """Counters, gauges and histograms behind one lock, rendered as text."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._counter_names: List[str] = []
        self._gauges: Dict[str, Union[float, Callable[[], float]]] = {}
        self._gauge_names: List[str] = []
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}
        self._histogram_names: List[str] = []

    # ------------------------------------------------------------- counters
    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Add ``amount`` to the counter ``name`` (created on first use)."""
        key = (name, _label_key(labels))
        with self._lock:
            if name not in self._counter_names:
                self._counter_names.append(name)
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def counter_value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> float:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    # --------------------------------------------------------------- gauges
    def set_gauge(
        self, name: str, value: Union[float, Callable[[], float]]
    ) -> None:
        """Set a gauge to a value, or register a callable sampled at render."""
        with self._lock:
            if name not in self._gauge_names:
                self._gauge_names.append(name)
            self._gauges[name] = value

    def gauge_value(self, name: str) -> float:
        with self._lock:
            value = self._gauges.get(name, 0.0)
        return float(value() if callable(value) else value)

    # ----------------------------------------------------------- histograms
    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation into the histogram ``name``."""
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(buckets)
                if name not in self._histogram_names:
                    self._histogram_names.append(name)
            histogram.observe(value)

    # -------------------------------------------------------------- render
    def render(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        with self._lock:
            counters = dict(self._counters)
            counter_names = list(self._counter_names)
            gauges = dict(self._gauges)
            gauge_names = list(self._gauge_names)
            histograms = {
                key: (hist.bounds, list(hist.counts), hist.total, hist.n)
                for key, hist in self._histograms.items()
            }
            histogram_names = list(self._histogram_names)
        lines: List[str] = []
        prefix = f"{self.namespace}_" if self.namespace else ""
        for name in counter_names:
            full = f"{prefix}{name}"
            lines.append(f"# TYPE {full} counter")
            for (cname, key), value in sorted(counters.items()):
                if cname == name:
                    lines.append(f"{full}{_render_labels(key)} {_format_value(value)}")
        for name in gauge_names:
            full = f"{prefix}{name}"
            value = gauges[name]
            sampled = float(value() if callable(value) else value)
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_format_value(sampled)}")
        for name in histogram_names:
            full = f"{prefix}{name}"
            lines.append(f"# TYPE {full} histogram")
            for (hname, key), (bounds, counts, total, n) in sorted(histograms.items()):
                if hname != name:
                    continue
                cumulative = 0
                for bound, count in zip(
                    list(bounds) + [math.inf], counts
                ):
                    cumulative += count
                    label = _render_labels(key, (("le", _format_value(bound)),))
                    lines.append(f"{full}_bucket{label} {cumulative}")
                lines.append(f"{full}_sum{_render_labels(key)} {_format_value(total)}")
                lines.append(f"{full}_count{_render_labels(key)} {n}")
        return "\n".join(lines) + "\n"
