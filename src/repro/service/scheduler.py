"""Job scheduling for the robustness service: a bounded worker pool.

``POST /v1/experiments`` lands here.  A :class:`Job` wraps one
``Session.run`` of one :class:`~repro.experiments.spec.ExperimentSpec`;
its id *is* the spec's content hash, so identical submissions share one
job through the :class:`~repro.service.coalescer.Coalescer` — the first
client pays, everyone watches the same event stream and reads the same
result.

Backpressure is explicit: at most ``workers`` jobs run concurrently and at
most ``queue_depth`` more may wait.  A submission past that bound raises
:class:`QueueFullError` carrying a ``retry_after_s`` estimate (queue
length x a running average of job duration / pool width), which the HTTP
layer turns into ``429`` + ``Retry-After`` — the client sheds load instead
of the server dying under it.

Deadlines propagate: a client budget becomes a
:class:`~repro.resilience.Deadline` at submit time, and a job whose budget
is already spent when a worker picks it up fails with
``deadline_exceeded`` instead of wasting the pool on an answer nobody is
waiting for.

``drain()`` is the SIGTERM path: stop accepting, finish everything already
accepted, return.  Jobs run through the content-addressed store, so even a
hard kill after drain times out loses at most in-flight compute — never
stored artifacts.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.experiments.session import ExperimentResult, ProgressEvent, Session
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ArtifactStore
from repro.nn.runtime import WorkerSpec
from repro.resilience import Deadline
from repro.service.coalescer import Coalescer
from repro.service.metrics import MetricsRegistry

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"

TERMINAL_STATES = (SUCCEEDED, FAILED)


class QueueFullError(ReproError):
    """The scheduler's queue is at depth; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DrainingError(ReproError):
    """The scheduler is draining and accepts no new work."""


class Job:
    """One experiment run: state, result and an ordered event log.

    Events — the ``Session``'s :class:`ProgressEvent`s plus the service's
    own lifecycle markers (``job:queued``, ``job:running``, ...) — are
    appended under a condition variable and indexed by a job-local ``seq``
    (1-based, gap-free), so an SSE consumer can resume from any cursor
    (``Last-Event-ID``) without missing or duplicating frames.
    """

    def __init__(self, spec: ExperimentSpec, deadline: Optional[Deadline] = None) -> None:
        self.id = spec.content_hash()
        self.spec = spec
        self.deadline = deadline
        self.state = QUEUED
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[ExperimentResult] = None
        self.error: Optional[dict] = None
        self.attached = 0  # coalesced submissions that joined this job
        self._cond = threading.Condition()
        self._events: List[dict] = []

    # --------------------------------------------------------------- events
    def _append_event(self, payload: dict) -> None:
        with self._cond:
            payload["seq"] = len(self._events) + 1
            self._events.append(payload)
            self._cond.notify_all()

    def record_event(self, event: ProgressEvent) -> None:
        """The ``Session`` progress callback: append one pipeline event."""
        payload = event.to_dict()
        payload["session_seq"] = payload.pop("seq")
        self._append_event(payload)

    def mark(self, state: str, detail: str = "") -> None:
        """Move the job to ``state`` and log the transition as an event."""
        with self._cond:
            self.state = state
            if state == RUNNING:
                self.started = time.time()
            elif state in TERMINAL_STATES:
                self.finished = time.time()
        self._append_event(
            {
                "stage": "job",
                "status": state,
                "detail": detail,
                "timestamp": time.time(),
            }
        )

    def events_since(self, cursor: int) -> List[dict]:
        """Every event with ``seq > cursor`` (the SSE resume contract)."""
        with self._cond:
            return [event for event in self._events if event["seq"] > cursor]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the job is terminal; True when it finished in time."""
        deadline = Deadline(timeout_s)
        with self._cond:
            while not self.terminal:
                remaining = deadline.remaining()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining if remaining is not None else 1.0)
        return True

    # ------------------------------------------------------------- snapshot
    def snapshot(self, include_result: bool = True) -> dict:
        """The job as a JSON payload (the ``GET /v1/jobs/{id}`` body)."""
        with self._cond:
            payload = {
                "job_id": self.id,
                "name": self.spec.name,
                "kind": self.spec.kind,
                "state": self.state,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "attached": self.attached,
                "n_events": len(self._events),
                "error": self.error,
            }
            if self.started is not None and self.finished is not None:
                payload["elapsed_s"] = self.finished - self.started
            if self.result is not None:
                payload["from_cache"] = self.result.from_cache
                if include_result:
                    payload["result"] = self.result.to_dict()
        return payload


class JobScheduler:
    """A bounded thread pool running coalesced experiment jobs."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        workers: int = 2,
        queue_depth: int = 16,
        session_workers: WorkerSpec = None,
        metrics: Optional[MetricsRegistry] = None,
        min_retry_after_s: float = 1.0,
    ) -> None:
        from repro.errors import ConfigurationError

        if not isinstance(workers, int) or workers < 1:
            raise ConfigurationError(f"workers must be a positive int, got {workers!r}")
        if not isinstance(queue_depth, int) or queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be a positive int, got {queue_depth!r}"
            )
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.workers = workers
        self.queue_depth = queue_depth
        self.session_workers = session_workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.min_retry_after_s = float(min_retry_after_s)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service-job"
        )
        self._coalescer: Coalescer[Job] = Coalescer(
            retry_failed=lambda job: job.state == FAILED
        )
        self._lock = threading.Lock()
        self._queued = 0
        self._running = 0
        self._draining = False
        self._avg_run_s = 0.0  # EMA of job wall clock, 0 until the first job
        self.metrics.set_gauge("queue_depth", lambda: float(self.queued_count))
        self.metrics.set_gauge("running_jobs", lambda: float(self.running_count))

    # ------------------------------------------------------------ accounting
    @property
    def queued_count(self) -> int:
        with self._lock:
            return self._queued

    @property
    def running_count(self) -> int:
        with self._lock:
            return self._running

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def retry_after_s(self) -> float:
        """Estimated seconds until a queue slot frees (for ``Retry-After``)."""
        with self._lock:
            backlog = self._queued + self._running
            avg = self._avg_run_s
        if avg <= 0.0:
            return self.min_retry_after_s
        return max(self.min_retry_after_s, round(backlog * avg / self.workers, 1))

    # ---------------------------------------------------------------- submit
    def submit(
        self, spec: ExperimentSpec, deadline_s: Optional[float] = None
    ) -> "tuple[Job, bool]":
        """Queue one spec (or attach to its in-flight/finished twin).

        Returns ``(job, coalesced)``.  Raises :class:`DrainingError` during
        shutdown and :class:`QueueFullError` past the queue depth — only
        *new* jobs consume queue slots; attaching to an existing job is
        always admitted (it costs nothing but a watcher).
        """
        with self._lock:
            if self._draining:
                raise DrainingError("service is draining; not accepting new jobs")

        deadline = Deadline(deadline_s) if deadline_s is not None else None
        created: List[Job] = []

        def factory() -> Job:
            with self._lock:
                if self._queued >= self.queue_depth:
                    raise QueueFullError(
                        f"job queue is full ({self._queued}/{self.queue_depth} queued)",
                        retry_after_s=0.0,  # estimate attached by the caller
                    )
                self._queued += 1
            job = Job(spec, deadline=deadline)
            created.append(job)
            return job

        try:
            job, coalesced = self._coalescer.attach(spec.content_hash(), factory)
        except QueueFullError as exc:
            self.metrics.inc("jobs_rejected_total")
            raise QueueFullError(str(exc), retry_after_s=self.retry_after_s()) from None
        if coalesced:
            with job._cond:
                job.attached += 1
            self.metrics.inc("coalesce_hits_total")
            return job, True
        self.metrics.inc("jobs_submitted_total")
        job.mark(QUEUED, f"spec {job.id[:12]}")
        self._executor.submit(self._run, job)
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        return self._coalescer.get(job_id)

    def jobs(self) -> List[Job]:
        return self._coalescer.entries()

    # ------------------------------------------------------------------- run
    def _run(self, job: Job) -> None:
        with self._lock:
            self._queued -= 1
            self._running += 1
        start = time.perf_counter()
        try:
            if job.deadline is not None and job.deadline.expired():
                job.error = {
                    "error": "deadline_exceeded",
                    "message": (
                        f"job spent its {job.deadline.timeout_s:.1f}s budget "
                        f"in the queue"
                    ),
                }
                job.mark(FAILED, "deadline exceeded before start")
                self.metrics.inc("jobs_completed_total", labels={"state": "expired"})
                return
            job.mark(RUNNING, f"spec {job.id[:12]}")
            session = Session(
                store=self.store,
                workers=self.session_workers,
                progress=job.record_event,
            )
            result = session.run(job.spec)
            job.result = result
            job.mark(
                SUCCEEDED,
                f"{'cache hit' if result.from_cache else 'computed'} "
                f"in {result.elapsed_s:.2f}s",
            )
            self.metrics.inc("jobs_completed_total", labels={"state": SUCCEEDED})
            self.metrics.observe("job_duration_seconds", result.elapsed_s)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = {"error": type(exc).__name__, "message": str(exc)}
            job.mark(FAILED, f"{type(exc).__name__}: {exc}")
            self.metrics.inc("jobs_completed_total", labels={"state": FAILED})
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._running -= 1
                self._avg_run_s = (
                    elapsed
                    if self._avg_run_s == 0.0
                    else 0.8 * self._avg_run_s + 0.2 * elapsed
                )

    # ----------------------------------------------------------------- drain
    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop accepting work and wait for accepted jobs to finish.

        Returns True when every job reached a terminal state within the
        timeout.  Idempotent; safe to call from any thread.
        """
        with self._lock:
            self._draining = True
        deadline = Deadline(timeout_s)
        clean = True
        for job in self.jobs():
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                clean = job.terminal and clean
                continue
            clean = job.wait(remaining) and clean
        self._executor.shutdown(wait=clean)
        return clean
