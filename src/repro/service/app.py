"""The robustness evaluation service: asyncio HTTP app and lifecycle.

:class:`ServiceApp` wires the pieces into one server:

- ``POST /v1/experiments`` — submit an :class:`ExperimentSpec`; identical
  concurrent submissions coalesce onto one job (202 with ``coalesced``
  telling the client whether it attached or created).
- ``GET /v1/jobs/{id}`` — job state + result; ``GET /v1/jobs/{id}/events``
  streams the job's event log as Server-Sent Events with ``Last-Event-ID``
  resume.
- ``POST /v1/query`` — single-sample robustness queries, micro-batched
  across concurrent clients into fused predict passes (bit-identical to
  serial evaluation).
- ``GET /healthz`` and ``GET /metrics`` — liveness and Prometheus text.

Backpressure surfaces as ``429`` + ``Retry-After`` when the job queue is
at depth.  ``SIGTERM``/``SIGINT`` trigger a graceful drain: stop
accepting, finish accepted jobs and in-flight query batches, close the
listener, exit.  Everything is stdlib + numpy; there is no web framework.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
from typing import Optional

from repro.errors import ConfigurationError, SpecValidationError
from repro.experiments.spec import ExperimentSpec, ModelSpec, VictimSpec
from repro.experiments.store import ArtifactStore
from repro.nn.runtime import WorkerSpec
from repro.resilience import Deadline
from repro.service.metrics import MetricsRegistry
from repro.service.microbatch import (
    MicroBatcher,
    QueryEvaluator,
    QueryItem,
    QueryOverloadError,
)
from repro.service.protocol import (
    HttpError,
    Request,
    error_response,
    format_sse_event,
    json_response,
    match_path,
    parse_deadline_s,
    read_request,
    render_response,
    sse_headers,
)
from repro.service.scheduler import DrainingError, JobScheduler, QueueFullError

logger = logging.getLogger("repro.service")

#: SSE poll interval — how often an event stream checks for fresh events
SSE_POLL_S = 0.05


def _route_label(path: str) -> str:
    """Collapse job ids out of paths so metric label cardinality stays bounded."""
    params = match_path("/v1/jobs/{id}", path)
    if params is not None:
        return "/v1/jobs/{id}"
    params = match_path("/v1/jobs/{id}/events", path)
    if params is not None:
        return "/v1/jobs/{id}/events"
    return path


class ServiceApp:
    """The HTTP application plus its server lifecycle.

    Usable three ways: ``run()`` blocks until shutdown (the ``repro serve``
    path), ``serve_forever()`` is the awaitable core for embedding in an
    existing loop, and tests drive :meth:`handle_request` directly or run
    the whole server on a background thread via ``run()`` +
    :meth:`request_shutdown`.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        workers: int = 2,
        queue_depth: int = 16,
        session_workers: WorkerSpec = None,
        max_batch: int = 32,
        max_delay_s: float = 0.005,
        drain_timeout_s: float = 30.0,
        store_url: Optional[str] = None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.store = (
            store
            if isinstance(store, ArtifactStore)
            else ArtifactStore(store, store_url=store_url)
        )
        self.scheduler = JobScheduler(
            store=self.store,
            workers=workers,
            queue_depth=queue_depth,
            session_workers=session_workers,
            metrics=self.metrics,
        )
        self.evaluator = QueryEvaluator(
            store=self.store,
            session_workers=session_workers,
            metrics=self.metrics,
        )
        self.batcher = MicroBatcher(
            self.evaluator,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            metrics=self.metrics,
        )
        self.drain_timeout_s = float(drain_timeout_s)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.ready = threading.Event()  # set once the listener is bound
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------- dispatch
    async def handle_request(self, request: Request):
        """Route one request; returns response bytes, or an async generator
        of chunks for streaming (SSE) responses."""
        method, path = request.method, request.path
        if path == "/healthz":
            return self._handle_healthz(request)
        if path == "/metrics":
            return self._handle_metrics(request)
        if path == "/v1/experiments":
            if method != "POST":
                raise HttpError(405, "method_not_allowed", f"{method} {path}")
            return self._handle_submit(request)
        if path == "/v1/query":
            if method != "POST":
                raise HttpError(405, "method_not_allowed", f"{method} {path}")
            return await self._handle_query(request)
        params = match_path("/v1/jobs/{id}", path)
        if params is not None:
            if method != "GET":
                raise HttpError(405, "method_not_allowed", f"{method} {path}")
            request.path_params = params
            return self._handle_job(request)
        params = match_path("/v1/jobs/{id}/events", path)
        if params is not None:
            if method != "GET":
                raise HttpError(405, "method_not_allowed", f"{method} {path}")
            request.path_params = params
            return self._stream_job_events(request)
        raise HttpError(404, "not_found", f"no route for {method} {path}")

    # ------------------------------------------------------------ endpoints
    def _handle_healthz(self, request: Request) -> bytes:
        draining = self.scheduler.draining
        payload = {
            "status": "draining" if draining else "ok",
            "queued": self.scheduler.queued_count,
            "running": self.scheduler.running_count,
            # degraded = remote store circuit open, serving from local cache.
            # Deliberately NOT a 503: the node still answers everything its
            # cache (or a recompute) can serve, so it must stay in rotation.
            "degraded": self.store.degraded,
        }
        return json_response(503 if draining else 200, payload)

    def _handle_metrics(self, request: Request) -> bytes:
        for name, value in self.store.stats.snapshot().items():
            self.metrics.set_gauge(f"store_{name}", float(value))
        # circuit/degraded/journal state: sampled at scrape time like the
        # stats snapshot above (0=closed, 1=open, 2=half-open)
        self.metrics.set_gauge("store_breaker_state", float(self.store.breaker_state_code()))
        self.metrics.set_gauge("store_degraded", 1.0 if self.store.degraded else 0.0)
        self.metrics.set_gauge("store_journal_pending", float(self.store.journal_pending()))
        body = self.metrics.render().encode("utf-8")
        return render_response(200, body, "text/plain; version=0.0.4")

    def _handle_submit(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "invalid_spec", "request body must be a JSON object")
        deadline_s = parse_deadline_s(request, payload)
        document = payload.get("experiment", payload)
        try:
            spec = ExperimentSpec.from_dict(document)
        except SpecValidationError as exc:
            raise HttpError(
                400, "invalid_spec", exc.reason, extra={"path": exc.path}
            ) from None
        except ConfigurationError as exc:
            raise HttpError(400, "invalid_spec", str(exc)) from None
        try:
            job, coalesced = self.scheduler.submit(spec, deadline_s=deadline_s)
        except QueueFullError as exc:
            raise HttpError(
                429,
                "queue_full",
                str(exc),
                headers={"Retry-After": f"{exc.retry_after_s:.0f}"},
                extra={"retry_after_s": exc.retry_after_s},
            ) from None
        except DrainingError as exc:
            raise HttpError(503, "draining", str(exc)) from None
        body = job.snapshot(include_result=False)
        body["coalesced"] = coalesced
        return json_response(202, body)

    def _handle_job(self, request: Request) -> bytes:
        job = self.scheduler.get(request.path_params["id"])
        if job is None:
            raise HttpError(
                404, "unknown_job", f"no job {request.path_params['id']!r}"
            )
        include_result = request.query.get("result", "1") not in ("0", "false")
        return json_response(200, job.snapshot(include_result=include_result))

    def _stream_job_events(self, request: Request):
        job = self.scheduler.get(request.path_params["id"])
        if job is None:
            raise HttpError(
                404, "unknown_job", f"no job {request.path_params['id']!r}"
            )
        cursor = 0
        last_id = request.header("last-event-id")
        if last_id:
            try:
                cursor = max(0, int(last_id))
            except ValueError:
                raise HttpError(
                    400, "bad_cursor", f"Last-Event-ID {last_id!r} is not an integer"
                ) from None

        async def stream():
            position = cursor
            yield sse_headers()
            while True:
                events = job.events_since(position)
                for event in events:
                    position = event["seq"]
                    yield format_sse_event(
                        event, event="progress", event_id=str(position)
                    )
                if job.terminal and not job.events_since(position):
                    yield format_sse_event(
                        job.snapshot(include_result=False), event="done"
                    )
                    return
                await asyncio.sleep(SSE_POLL_S)

        return stream()

    async def _handle_query(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "invalid_query", "request body must be a JSON object")
        deadline_s = parse_deadline_s(request, payload)
        try:
            model_spec = ModelSpec.from_dict(payload.get("model") or {})
            victim_spec = VictimSpec.from_dict(payload.get("victims") or {})
        except SpecValidationError as exc:
            raise HttpError(
                400, "invalid_query", exc.reason, extra={"path": exc.path}
            ) from None
        except ConfigurationError as exc:
            raise HttpError(400, "invalid_query", str(exc)) from None
        item = self._parse_query_item(payload)
        deadline = Deadline(deadline_s) if deadline_s is not None else None
        try:
            status, body = await self.batcher.submit(
                model_spec, victim_spec, item, deadline=deadline
            )
        except QueryOverloadError as exc:
            raise HttpError(
                429, "query_overload", str(exc), headers={"Retry-After": "1"}
            ) from None
        return json_response(status, body)

    @staticmethod
    def _parse_query_item(payload: dict) -> QueryItem:
        image = payload.get("image")
        sample_index = payload.get("sample_index")
        if image is None and sample_index is None:
            raise HttpError(
                400, "invalid_query", "query needs either 'image' or 'sample_index'"
            )
        if sample_index is not None and not isinstance(sample_index, int):
            raise HttpError(
                400, "invalid_query", f"sample_index must be an int, got {sample_index!r}"
            )
        label = payload.get("label")
        if label is not None and not isinstance(label, int):
            raise HttpError(
                400, "invalid_query", f"label must be an int, got {label!r}"
            )
        return QueryItem(image=image, sample_index=sample_index, label=label)

    # ----------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = asyncio.get_running_loop().time()
        status = 500
        path = "?"
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(error_response(exc))
                status = exc.status
                return
            if request is None:
                return  # clean close before a request
            path = request.path
            try:
                response = await self.handle_request(request)
            except HttpError as exc:
                writer.write(error_response(exc))
                status = exc.status
                return
            except Exception as exc:  # noqa: BLE001 - connection isolation
                logger.exception("unhandled error serving %s", request.path)
                writer.write(
                    error_response(HttpError(500, "internal", str(exc)))
                )
                status = 500
                return
            if isinstance(response, (bytes, bytearray)):
                writer.write(response)
                status = int(response[9:12] or b"200")
            else:  # async generator of chunks (SSE)
                status = 200
                async for chunk in response:
                    writer.write(chunk)
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            self.metrics.inc(
                "http_requests_total",
                labels={"path": _route_label(path), "status": str(status)},
            )
            self.metrics.observe(
                "http_request_seconds",
                asyncio.get_running_loop().time() - start,
            )
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -------------------------------------------------------------- lifecycle
    async def serve_forever(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind, serve until :meth:`request_shutdown` (or SIGTERM), drain."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._install_signal_handlers()
        self.ready.set()
        logger.info("serving on %s:%s", self.host, self.port)
        try:
            await self._shutdown.wait()
        finally:
            await self._drain()

    def run(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Blocking entry point (the ``repro serve`` command)."""
        asyncio.run(self.serve_forever(host=host, port=port))

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # signal handlers only work on the main thread
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                return

    def request_shutdown(self) -> None:
        """Trigger a graceful drain; safe to call from any thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is None or shutdown is None:
            return
        loop.call_soon_threadsafe(shutdown.set)

    async def _drain(self) -> None:
        """The SIGTERM path: stop accepting, finish accepted work, close."""
        logger.info("draining: %d queued, %d running",
                    self.scheduler.queued_count, self.scheduler.running_count)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.drain()
        clean = await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.drain, self.drain_timeout_s
        )
        if not clean:  # pragma: no cover - only on drain timeout
            logger.warning("drain timed out after %.1fs", self.drain_timeout_s)
        logger.info("drained")
