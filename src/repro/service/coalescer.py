"""Request coalescing by content hash (keyed single-flight).

Two clients asking for the same experiment describe the same computation —
the spec's content hash proves it — so the service runs it once and both
watch the same job.  :class:`Coalescer` is the in-process half of that
contract: a keyed registry where the first submitter creates the entry and
every later identical submission *attaches* to it, whatever its state
(queued, running, or already finished — finished entries are still valid
because results are content-addressed and deterministic).

The cross-process half is owned by the artifact store: when two service
processes (or a service and a CLI run) race on one spec, the store's
single-writer training lease makes one of them compute while the other
polls the store for the winner's artifact (``Session._claim_training``),
and the result cache turns the loser's remaining pipeline into hits.  The
coalescer therefore only needs to dedupe *within* this process; it never
coordinates across processes itself.

Failed entries are not reused: a later identical submission replaces them
and retries the computation (the failure may have been transient — a
deadline, a flaky disk).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class Coalescer(Generic[T]):
    """A keyed registry where identical keys share one live entry."""

    def __init__(self, retry_failed: Callable[[T], bool] = None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, T] = {}
        self._retry_failed = retry_failed
        self.hits = 0
        self.misses = 0

    def attach(self, key: str, factory: Callable[[], T]) -> Tuple[T, bool]:
        """The entry for ``key``, creating it via ``factory`` when absent.

        Returns ``(entry, attached)`` — ``attached`` is True when an
        existing entry was joined (a coalesce hit).  An entry the
        ``retry_failed`` predicate marks as failed is replaced instead of
        joined, so a transient failure does not poison the key forever.
        ``factory`` runs under the registry lock: keep it cheap (job
        construction, not computation).
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and not (
                self._retry_failed is not None and self._retry_failed(existing)
            ):
                self.hits += 1
                return existing, True
            entry = factory()
            self._entries[key] = entry
            self.misses += 1
            return entry, False

    def get(self, key: str) -> Optional[T]:
        with self._lock:
            return self._entries.get(key)

    def entries(self) -> List[T]:
        with self._lock:
            return list(self._entries.values())

    def forget(self, key: str) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
