"""Micro-batching of single-sample robustness queries.

``POST /v1/query`` answers "what does this victim set predict for this one
sample" — the interactive workload.  Individually those queries waste the
batched kernels this repo spent seven PRs building; fused they are almost
free.  The :class:`MicroBatcher` therefore holds each arriving query for
at most ``max_delay_s`` (or until ``max_batch`` queries of the same
*target* are waiting), stacks them into one batch, and runs **one**
``predict_classes`` pass — through the fused
:class:`~repro.axnn.panel.VictimPanel` when the victim set is
lockstep-compatible, per victim otherwise.

Bit-identity is the contract that makes this safe: every predict path in
the repo slices batches row-independently (the sharded runtime's worker
invariance is exactly batch invariance), so the fused answer for a query
is bit-identical to evaluating that sample alone.  The service never
trades correctness for throughput — only latency, bounded by
``max_delay_s``.

Targets — a trained source model plus its built victim set — are resolved
through the :class:`~repro.experiments.session.Session` (training is
store-cached and lease-coordinated) and kept in a small LRU so repeated
queries pay nothing after the first.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.axnn.panel import VictimPanel
from repro.errors import ConfigurationError, ReproError
from repro.experiments.spec import ModelSpec, VictimSpec, content_hash
from repro.experiments.store import ArtifactStore
from repro.nn.runtime import WorkerSpec
from repro.resilience import Deadline
from repro.service.metrics import MetricsRegistry

#: histogram buckets for micro-batch sizes
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class QueryOverloadError(ReproError):
    """Too many queries are pending; the client should retry later."""


@dataclass
class QueryItem:
    """One parsed query: either an explicit image or a test-set index."""

    image: Optional[np.ndarray] = None
    sample_index: Optional[int] = None
    label: Optional[int] = None


@dataclass
class QueryTarget:
    """A resolved evaluation target: trained source model + victim set."""

    key: str
    model_spec: ModelSpec
    victim_spec: VictimSpec
    trained: object  # TrainedModel
    victims: Dict[str, object]  # name -> AxModel
    panel: Optional[VictimPanel] = None
    image_shape: Tuple[int, ...] = ()

    def victim_names(self) -> List[str]:
        return list(self.victims.keys())


def target_key(model_spec: ModelSpec, victim_spec: VictimSpec) -> str:
    """Content hash identifying one (model, victims) query target."""
    return content_hash(
        {"model": model_spec.to_dict(), "victims": victim_spec.to_dict()},
        "query-target",
    )


class QueryEvaluator:
    """Resolve query targets (store-cached) and evaluate stacked batches.

    Thread-safe: targets are built under a lock (one build at a time — the
    expensive part, training, is store-cached and lease-coordinated anyway)
    and kept in an LRU of ``max_targets`` entries.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        session_workers: WorkerSpec = None,
        max_targets: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not isinstance(max_targets, int) or max_targets < 1:
            raise ConfigurationError(
                f"max_targets must be a positive int, got {max_targets!r}"
            )
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.session_workers = session_workers
        self.max_targets = max_targets
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._targets: "OrderedDict[str, QueryTarget]" = OrderedDict()

    # -------------------------------------------------------------- targets
    def resolve(self, model_spec: ModelSpec, victim_spec: VictimSpec) -> QueryTarget:
        """The built target for (model, victims), LRU-cached by content hash."""
        key = target_key(model_spec, victim_spec)
        with self._lock:
            cached = self._targets.get(key)
            if cached is not None:
                self._targets.move_to_end(key)
                self.metrics.inc("query_target_hits_total")
                return cached
            # build under the lock: concurrent queries for one new target
            # must not train twice in-process (the store lease would catch
            # it across processes, but in-process we can simply serialise)
            from repro.experiments.session import Session

            self.metrics.inc("query_target_builds_total")
            session = Session(store=self.store, workers=self.session_workers)
            trained = session.resolve_model(model_spec)
            victims = session.build_victims(trained, victim_spec)
            panel = None
            models = list(victims.values())
            if len(models) >= 2 and VictimPanel.compatible(models):
                panel = VictimPanel(victims)
            target = QueryTarget(
                key=key,
                model_spec=model_spec,
                victim_spec=victim_spec,
                trained=trained,
                victims=victims,
                panel=panel,
                image_shape=tuple(trained.dataset.image_shape),
            )
            self._targets[key] = target
            while len(self._targets) > self.max_targets:
                self._targets.popitem(last=False)
            return target

    # ------------------------------------------------------------- evaluate
    def _item_image(self, target: QueryTarget, item: QueryItem) -> np.ndarray:
        if item.image is not None:
            image = np.asarray(item.image, dtype=np.float64)
            if image.shape != target.image_shape:
                raise ConfigurationError(
                    f"query image has shape {tuple(image.shape)}, the target "
                    f"expects {target.image_shape}"
                )
            return image
        if item.sample_index is None:
            raise ConfigurationError(
                "query needs either an 'image' or a 'sample_index'"
            )
        test = target.trained.dataset.test
        if not 0 <= item.sample_index < len(test):
            raise ConfigurationError(
                f"sample_index {item.sample_index} out of range "
                f"(test split holds {len(test)} samples)"
            )
        return np.asarray(test.images[item.sample_index], dtype=np.float64)

    def evaluate(
        self, model_spec: ModelSpec, victim_spec: VictimSpec, items: List[QueryItem]
    ) -> List[Tuple[int, dict]]:
        """Answer a stacked batch of queries with ONE predict pass per victim.

        Returns one ``(http_status, payload)`` per item, in order.  A
        malformed item (bad shape, out-of-range index) fails alone with
        400; the rest of the batch still evaluates.  The predictions are
        bit-identical to evaluating each sample in its own batch — batched
        prediction is row-independent (the same invariance the sharded
        runtime proves per worker count).
        """
        target = self.resolve(model_spec, victim_spec)
        images: List[np.ndarray] = []
        slots: List[Optional[int]] = []  # per item: row in the batch, or None
        results: List[Optional[Tuple[int, dict]]] = [None] * len(items)
        for index, item in enumerate(items):
            try:
                images.append(self._item_image(target, item))
            except ConfigurationError as exc:
                results[index] = (400, {"error": "invalid_query", "message": str(exc)})
                slots.append(None)
            else:
                slots.append(len(images) - 1)
        if images:
            batch = np.stack(images, axis=0)
            if target.panel is not None:
                predictions = target.panel.predict_classes(batch)
            else:
                predictions = {
                    name: victim.predict_classes(batch)
                    for name, victim in target.victims.items()
                }
            source = target.trained.model.predict_classes(batch)
            for index, (item, slot) in enumerate(zip(items, slots)):
                if slot is None:
                    continue
                predicted = {
                    name: int(classes[slot]) for name, classes in predictions.items()
                }
                payload = {
                    "target": target.key,
                    "predictions": predicted,
                    "source_prediction": int(source[slot]),
                }
                if item.label is not None:
                    payload["label"] = int(item.label)
                    payload["correct"] = {
                        name: bool(value == item.label)
                        for name, value in predicted.items()
                    }
                results[index] = (200, payload)
        return [
            result if result is not None else (500, {"error": "internal"})
            for result in results
        ]


@dataclass
class _Pending:
    item: QueryItem
    future: "asyncio.Future"
    deadline: Optional[Deadline]
    model_spec: ModelSpec
    victim_spec: VictimSpec
    enqueued: float = 0.0


@dataclass
class _Bucket:
    model_spec: ModelSpec
    victim_spec: VictimSpec
    pending: List[_Pending] = field(default_factory=list)
    timer: Optional["asyncio.TimerHandle"] = None


class MicroBatcher:
    """Fuse concurrent single-sample queries into batched predict passes.

    Lives on the asyncio event loop: :meth:`submit` parks each query in a
    per-target bucket; the bucket flushes after ``max_delay_s`` or as soon
    as ``max_batch`` queries wait, whichever comes first.  Evaluation runs
    on a private worker thread (never the event loop), so slow predictions
    stall neither accepts nor unrelated targets.
    """

    def __init__(
        self,
        evaluator: QueryEvaluator,
        max_batch: int = 32,
        max_delay_s: float = 0.005,
        max_pending: int = 256,
        query_workers: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be a positive int, got {max_batch!r}"
            )
        if max_delay_s < 0:
            raise ConfigurationError(f"max_delay_s must be >= 0, got {max_delay_s!r}")
        self.evaluator = evaluator
        self.max_batch = max_batch
        self.max_delay_s = float(max_delay_s)
        self.max_pending = int(max_pending)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=query_workers, thread_name_prefix="repro-service-query"
        )
        self._buckets: Dict[str, _Bucket] = {}
        self._pending_total = 0
        self._inflight: "set[asyncio.Task]" = set()
        self.metrics.set_gauge(
            "query_pending", lambda: float(self._pending_total)
        )

    # --------------------------------------------------------------- submit
    async def submit(
        self,
        model_spec: ModelSpec,
        victim_spec: VictimSpec,
        item: QueryItem,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[int, dict]:
        """Queue one query; resolves to its ``(status, payload)`` answer."""
        if self._pending_total >= self.max_pending:
            self.metrics.inc("queries_rejected_total")
            raise QueryOverloadError(
                f"{self._pending_total} queries pending (limit {self.max_pending})"
            )
        loop = asyncio.get_running_loop()
        key = target_key(model_spec, victim_spec)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(
                model_spec=model_spec, victim_spec=victim_spec
            )
        pending = _Pending(
            item=item,
            future=loop.create_future(),
            deadline=deadline,
            model_spec=model_spec,
            victim_spec=victim_spec,
            enqueued=loop.time(),
        )
        bucket.pending.append(pending)
        self._pending_total += 1
        self.metrics.inc("queries_total")
        if len(bucket.pending) >= self.max_batch:
            self._flush(key)
        elif bucket.timer is None:
            bucket.timer = loop.call_later(self.max_delay_s, self._flush, key)
        return await pending.future

    # ---------------------------------------------------------------- flush
    def _flush(self, key: str) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None or not bucket.pending:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        task = asyncio.get_running_loop().create_task(self._run_batch(bucket))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, bucket: _Bucket) -> None:
        loop = asyncio.get_running_loop()
        ready: List[_Pending] = []
        for pending in bucket.pending:
            if pending.deadline is not None and pending.deadline.expired():
                self._resolve(
                    pending,
                    (
                        504,
                        {
                            "error": "deadline_exceeded",
                            "message": "query deadline expired before evaluation",
                        },
                    ),
                )
            else:
                ready.append(pending)
        if not ready:
            return
        self.metrics.inc("query_batches_total")
        self.metrics.observe(
            "query_batch_size", float(len(ready)), buckets=BATCH_SIZE_BUCKETS
        )
        start = loop.time()
        try:
            results = await loop.run_in_executor(
                self._executor,
                self.evaluator.evaluate,
                bucket.model_spec,
                bucket.victim_spec,
                [pending.item for pending in ready],
            )
        except Exception as exc:  # noqa: BLE001 - per-batch isolation
            failure = (
                500,
                {"error": type(exc).__name__, "message": str(exc)},
            )
            for pending in ready:
                self._resolve(pending, failure)
            return
        self.metrics.observe("query_batch_latency_seconds", loop.time() - start)
        for pending, result in zip(ready, results):
            self._resolve(pending, result)

    def _resolve(self, pending: _Pending, result: Tuple[int, dict]) -> None:
        self._pending_total -= 1
        if not pending.future.done():
            pending.future.set_result(result)

    # ---------------------------------------------------------------- drain
    async def drain(self) -> None:
        """Flush every bucket and wait for in-flight batches to finish."""
        for key in list(self._buckets):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)

    @property
    def pending_count(self) -> int:
        return self._pending_total
