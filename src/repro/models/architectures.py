"""Model architectures used in the paper.

* LeNet-5 — "two sets of convolutional and average pooling layers, followed
  by a flattening convolutional layer, two fully-connected layers, and
  finally a softmax classifier" (Section IV.A).
* AlexNet — "five convolutional layers, three average pooling layers, and two
  fully connected layers", scaled to 32x32 CIFAR-style inputs.
* FFNN — the small feed-forward network of the motivational case study
  (Fig. 1).

The networks use ReLU activations; the classifier layers output logits and
training uses softmax cross-entropy (the softmax classifier of the paper).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.nn import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    ReLU,
    Sequential,
)

MNIST_SHAPE: Tuple[int, int, int] = (28, 28, 1)
CIFAR_SHAPE: Tuple[int, int, int] = (32, 32, 3)
NUM_CLASSES = 10


def build_ffnn(
    input_shape: Tuple[int, int, int] = MNIST_SHAPE,
    hidden_units: Sequence[int] = (128, 64),
    num_classes: int = NUM_CLASSES,
    seed: int = 0,
) -> Sequential:
    """The feed-forward network of the motivational case study (Fig. 1)."""
    layers = [Flatten()]
    for units in hidden_units:
        layers.append(Dense(units))
        layers.append(ReLU())
    layers.append(Dense(num_classes))
    return Sequential(layers, input_shape=input_shape, name="ffnn", seed=seed)


def build_lenet5(
    input_shape: Tuple[int, int, int] = MNIST_SHAPE,
    num_classes: int = NUM_CLASSES,
    seed: int = 0,
) -> Sequential:
    """LeNet-5 with ReLU activations and average pooling."""
    height = input_shape[0]
    # spatial size reaching the flattening convolution: ((H-4)/2 - 4) / 2
    flattening_kernel = ((height - 4) // 2 - 4) // 2
    layers = [
        Conv2D(6, kernel_size=5, padding="valid"),
        ReLU(),
        AvgPool2D(pool_size=2),
        Conv2D(16, kernel_size=5, padding="valid"),
        ReLU(),
        AvgPool2D(pool_size=2),
        # the "flattening convolutional layer" of the paper: a valid
        # convolution whose kernel covers the whole remaining feature map
        Conv2D(120, kernel_size=flattening_kernel, padding="valid"),
        ReLU(),
        Flatten(),
        Dense(84),
        ReLU(),
        Dense(num_classes),
    ]
    return Sequential(layers, input_shape=input_shape, name="lenet5", seed=seed)


def build_alexnet(
    input_shape: Tuple[int, int, int] = CIFAR_SHAPE,
    num_classes: int = NUM_CLASSES,
    seed: int = 0,
    dropout_rate: float = 0.2,
) -> Sequential:
    """A CIFAR-scale AlexNet: five conv layers, three average pools, two FC layers."""
    layers = [
        Conv2D(16, kernel_size=3, padding="same"),
        ReLU(),
        AvgPool2D(pool_size=2),
        Conv2D(32, kernel_size=3, padding="same"),
        ReLU(),
        AvgPool2D(pool_size=2),
        Conv2D(48, kernel_size=3, padding="same"),
        ReLU(),
        Conv2D(48, kernel_size=3, padding="same"),
        ReLU(),
        Conv2D(32, kernel_size=3, padding="same"),
        ReLU(),
        AvgPool2D(pool_size=2),
        Flatten(),
        Dense(128),
        ReLU(),
        Dropout(dropout_rate, seed=seed),
        Dense(64),
        ReLU(),
        Dense(num_classes),
    ]
    return Sequential(layers, input_shape=input_shape, name="alexnet", seed=seed)


ARCHITECTURES = {
    "ffnn": build_ffnn,
    "lenet5": build_lenet5,
    "alexnet": build_alexnet,
}


def build_architecture(name: str, **kwargs) -> Sequential:
    """Build a named architecture (``ffnn`` / ``lenet5`` / ``alexnet``)."""
    try:
        builder = ARCHITECTURES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        ) from exc
    return builder(**kwargs)


def multiply_counts(model: Sequential) -> list:
    """Number of scalar multiplications per compute layer for one input sample.

    Used by the energy model to compare approximate-multiplier configurations.
    """
    counts = []
    shape = model.input_shape
    for layer in model.layers:
        out_shape = layer.output_shape(shape)
        if isinstance(layer, Conv2D):
            kernel = layer.kernel_size
            in_channels = shape[2]
            per_position = kernel * kernel * in_channels
            positions = out_shape[0] * out_shape[1]
            counts.append(int(positions * per_position * layer.filters))
        elif isinstance(layer, Dense):
            counts.append(int(np.prod(shape) * layer.units))
        shape = out_shape
    return counts
