"""Train-and-cache model zoo.

Examples, tests and benchmarks all need the same trained accurate models
(AccL5, AccAlx, the FFNN).  Training them takes tens of seconds on CPU, so
this module trains each configuration once and caches the weights (plus the
reached accuracy) under a cache directory; later calls load the weights.

The cache key encodes the architecture, the dataset generator parameters and
the training budget, so changing any of those retrains automatically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.datasets import Dataset, load_synthetic_cifar10, load_synthetic_mnist
from repro.models.architectures import build_alexnet, build_ffnn, build_lenet5
from repro.nn import Adam, Sequential, Trainer, load_weights, save_weights

#: default cache directory (repository-local, overridable via environment)
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_MODEL_CACHE", os.path.join(os.path.expanduser("~"), ".cache", "repro-models")
)


@dataclass
class TrainedModel:
    """A trained accurate model together with its dataset and test accuracy."""

    model: Sequential
    dataset: Dataset
    test_accuracy: float

    @property
    def baseline_accuracy_percent(self) -> float:
        """Clean test accuracy in percent (the paper's A_th baseline)."""
        return self.test_accuracy * 100.0


def _cache_paths(cache_dir: str, key: str) -> Tuple[str, str]:
    weights = os.path.join(cache_dir, f"{key}.npz")
    meta = os.path.join(cache_dir, f"{key}.json")
    return weights, meta


def _train(
    model: Sequential,
    dataset: Dataset,
    epochs: int,
    learning_rate: float,
    batch_size: int,
    seed: int,
) -> float:
    trainer = Trainer(model, optimizer=Adam(learning_rate), seed=seed)
    trainer.fit(
        dataset.train.images,
        dataset.train.labels,
        epochs=epochs,
        batch_size=batch_size,
        shuffle=True,
    )
    return trainer.evaluate(dataset.test.images, dataset.test.labels)


def _load_or_train(
    key: str,
    model: Sequential,
    dataset: Dataset,
    epochs: int,
    learning_rate: float,
    batch_size: int,
    seed: int,
    cache_dir: Optional[str],
    force_retrain: bool = False,
) -> TrainedModel:
    cache_dir = cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR
    os.makedirs(cache_dir, exist_ok=True)
    weights_path, meta_path = _cache_paths(cache_dir, key)
    if not force_retrain and os.path.exists(weights_path) and os.path.exists(meta_path):
        try:
            load_weights(model, weights_path)
            with open(meta_path) as handle:
                meta = json.load(handle)
            return TrainedModel(
                model=model, dataset=dataset, test_accuracy=meta["test_accuracy"]
            )
        except Exception:
            # a stale or incompatible cache entry (e.g. written by an older
            # version of the library) is silently discarded and retrained
            pass
    accuracy = _train(model, dataset, epochs, learning_rate, batch_size, seed)
    save_weights(model, weights_path)
    with open(meta_path, "w") as handle:
        json.dump({"test_accuracy": accuracy, "epochs": epochs}, handle)
    return TrainedModel(model=model, dataset=dataset, test_accuracy=accuracy)


def trained_lenet5(
    n_train: int = 2000,
    n_test: int = 400,
    epochs: int = 4,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    force_retrain: bool = False,
) -> TrainedModel:
    """The accurate LeNet-5 (AccL5) trained on synthetic MNIST."""
    dataset = load_synthetic_mnist(n_train=n_train, n_test=n_test, seed=seed)
    model = build_lenet5(seed=seed)
    key = f"lenet5_mnist_n{n_train}_t{n_test}_e{epochs}_s{seed}"
    return _load_or_train(
        key, model, dataset, epochs, 1e-3, 32, seed, cache_dir, force_retrain
    )


def trained_ffnn(
    n_train: int = 2000,
    n_test: int = 400,
    epochs: int = 4,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    force_retrain: bool = False,
) -> TrainedModel:
    """The accurate FFNN of the motivational case study, on synthetic MNIST."""
    dataset = load_synthetic_mnist(n_train=n_train, n_test=n_test, seed=seed)
    model = build_ffnn(seed=seed)
    key = f"ffnn_mnist_n{n_train}_t{n_test}_e{epochs}_s{seed}"
    return _load_or_train(
        key, model, dataset, epochs, 1e-3, 32, seed, cache_dir, force_retrain
    )


def trained_alexnet(
    n_train: int = 2000,
    n_test: int = 400,
    epochs: int = 6,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    force_retrain: bool = False,
) -> TrainedModel:
    """The accurate AlexNet (AccAlx) trained on synthetic CIFAR-10."""
    dataset = load_synthetic_cifar10(n_train=n_train, n_test=n_test, seed=seed)
    model = build_alexnet(seed=seed)
    key = f"alexnet_cifar_n{n_train}_t{n_test}_e{epochs}_s{seed}"
    return _load_or_train(
        key, model, dataset, epochs, 1e-3, 32, seed, cache_dir, force_retrain
    )


def trained_model(
    architecture: str,
    dataset_name: str,
    n_train: int = 1500,
    n_test: int = 300,
    epochs: int = 4,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    force_retrain: bool = False,
) -> TrainedModel:
    """Train (and cache) any architecture on any synthetic dataset.

    This is the generic entry point behind the transferability experiments
    (Table II), which need every architecture trained on every dataset —
    e.g. an AlexNet trained on MNIST-shaped inputs.

    Parameters
    ----------
    architecture:
        ``"ffnn"``, ``"lenet5"`` or ``"alexnet"``.
    dataset_name:
        ``"mnist"`` or ``"cifar10"`` (the synthetic substitutes).
    """
    from repro.models.architectures import build_architecture

    dataset_name = dataset_name.lower()
    if dataset_name in ("mnist", "synthetic-mnist"):
        dataset = load_synthetic_mnist(n_train=n_train, n_test=n_test, seed=seed)
    elif dataset_name in ("cifar10", "cifar-10", "synthetic-cifar10"):
        dataset = load_synthetic_cifar10(n_train=n_train, n_test=n_test, seed=seed)
    else:
        raise ValueError(
            f"unknown dataset {dataset_name!r}; expected 'mnist' or 'cifar10'"
        )
    model = build_architecture(
        architecture, input_shape=dataset.image_shape, seed=seed
    )
    key = (
        f"{architecture}_{dataset.name}_n{n_train}_t{n_test}_e{epochs}_s{seed}"
    )
    return _load_or_train(
        key, model, dataset, epochs, 1e-3, 32, seed, cache_dir, force_retrain
    )
