"""Model architectures (LeNet-5, AlexNet, FFNN) and the train-and-cache zoo."""

from repro.models.architectures import (
    ARCHITECTURES,
    CIFAR_SHAPE,
    MNIST_SHAPE,
    NUM_CLASSES,
    build_alexnet,
    build_architecture,
    build_ffnn,
    build_lenet5,
    multiply_counts,
)
from repro.models.zoo import (
    DEFAULT_CACHE_DIR,
    TrainedModel,
    trained_alexnet,
    trained_ffnn,
    trained_lenet5,
    trained_model,
)

__all__ = [
    "build_ffnn",
    "build_lenet5",
    "build_alexnet",
    "build_architecture",
    "multiply_counts",
    "ARCHITECTURES",
    "MNIST_SHAPE",
    "CIFAR_SHAPE",
    "NUM_CLASSES",
    "TrainedModel",
    "trained_lenet5",
    "trained_ffnn",
    "trained_alexnet",
    "trained_model",
    "DEFAULT_CACHE_DIR",
]
