"""Environment-variable parsing that names the variable in its errors.

Scale knobs and runtime switches throughout the repo (``REPRO_BENCH_*``,
``REPRO_LEASE_TTL``, ``REPRO_MAX_RETRIES``, ...) are plain environment
variables.  Parsing them with bare ``int(os.environ.get(...))`` turns a
typo like ``REPRO_BENCH_SAMPLES=6O`` into a naked ``ValueError: invalid
literal for int()`` raised at import time, with no hint of *which*
variable is broken.  These helpers raise
:class:`~repro.errors.ConfigurationError` carrying the variable name, the
offending value and the expected type, and optionally enforce a lower
bound.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigurationError


def _parse(name: str, raw: str, caster, kind: str, minimum):
    try:
        value = caster(raw)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"environment variable {name} must be {kind}, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ConfigurationError(
            f"environment variable {name} must be >= {minimum}, got {value}"
        )
    return value


def env_int(name: str, default: int, minimum: Optional[int] = None) -> int:
    """``int(os.environ[name])`` with a named error and optional lower bound.

    An unset or empty variable returns ``default`` (the default is *not*
    bound-checked — callers own their defaults).
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return _parse(name, raw.strip(), int, "an integer", minimum)


def env_float(name: str, default: float, minimum: Optional[float] = None) -> float:
    """``float(os.environ[name])`` with a named error and optional lower bound."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return _parse(name, raw.strip(), float, "a number", minimum)


def env_str(name: str, default: str, choices: Optional[tuple] = None) -> str:
    """``os.environ[name]`` with optional membership validation."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    if choices is not None and raw not in choices:
        raise ConfigurationError(
            f"environment variable {name} must be one of {sorted(choices)}, "
            f"got {raw!r}"
        )
    return raw


__all__ = ["env_int", "env_float", "env_str"]
