"""One-bit adder cells: exact and approximate mirror adders.

The approximate mirror adders (AMA) follow the style introduced by Gupta et
al. ("Low-Power Digital Signal Processing Using Approximate Adders", IEEE
TCAD 2013) and used by the defensive-approximation baseline of Guesmi et al.
(ASPLOS 2021): each cell removes transistors from the exact mirror adder,
which manifests behaviourally as a handful of wrong rows in the 8-row truth
table.  The exact truth tables implemented here are documented per class and
verified by the test-suite; they are behavioural stand-ins for the published
netlists (see DESIGN.md, substitution table).

Every cell is a stateless object exposing ``add(a, b, cin) -> (sum, cout)``
on vectorised bit arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple

import numpy as np

from repro.circuits.bitops import bit_and, bit_not, bit_or, bit_xor, majority


class AdderCell(ABC):
    """Interface for a one-bit (full) adder cell."""

    #: short, registry-friendly identifier
    name: str = "adder"

    @abstractmethod
    def add(
        self, a: np.ndarray, b: np.ndarray, cin: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sum, carry_out)`` for bit arrays ``a``, ``b``, ``cin``."""

    def truth_table(self) -> np.ndarray:
        """Return the 8x5 truth table ``[a, b, cin, sum, cout]`` of the cell."""
        rows = []
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    s, cout = self.add(
                        np.array([a]), np.array([b]), np.array([cin])
                    )
                    rows.append([a, b, cin, int(s[0]), int(cout[0])])
        return np.array(rows, dtype=np.int64)

    def error_count(self) -> Tuple[int, int]:
        """Number of wrong (sum, carry) rows relative to the exact adder."""
        exact = ExactFullAdder().truth_table()
        approx = self.truth_table()
        sum_errors = int(np.sum(exact[:, 3] != approx[:, 3]))
        carry_errors = int(np.sum(exact[:, 4] != approx[:, 4]))
        return sum_errors, carry_errors

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ExactFullAdder(AdderCell):
    """The exact (mirror) full adder: ``sum = a^b^cin``, ``cout = maj(a,b,cin)``."""

    name = "exact"

    def add(self, a, b, cin):
        s = bit_xor(bit_xor(a, b), cin)
        cout = majority(a, b, cin)
        return s, cout


class ApproximateMirrorAdder1(AdderCell):
    """AMA1: exact carry, ``sum = NOT(cout)``.

    Truth-table errors: sum wrong for inputs 000 and 111 (2 of 8 rows);
    carry exact.
    """

    name = "ama1"

    def add(self, a, b, cin):
        cout = majority(a, b, cin)
        s = bit_not(cout)
        return s, cout


class ApproximateMirrorAdder2(AdderCell):
    """AMA2: ``sum = NOT(a)``, ``cout = a``.

    Truth-table errors: sum wrong for 4 of 8 rows, carry wrong for 2 of 8
    rows (inputs 011 and 100).
    """

    name = "ama2"

    def add(self, a, b, cin):
        a = np.asarray(a, dtype=np.int64)
        return bit_not(a), a.copy()


class ApproximateMirrorAdder3(AdderCell):
    """AMA3: ``sum = cin``, ``cout = a``.

    Truth-table errors: sum wrong for 4 of 8 rows, carry wrong for 2 of 8
    rows.  Compared with AMA2 the sum error has the opposite sign bias.
    """

    name = "ama3"

    def add(self, a, b, cin):
        a = np.asarray(a, dtype=np.int64)
        cin = np.asarray(cin, dtype=np.int64)
        return cin.copy(), a.copy()


class ApproximateMirrorAdder4(AdderCell):
    """AMA4: ``sum = b``, ``cout = a``.

    A very aggressive approximation that ignores the carry input entirely.
    """

    name = "ama4"

    def add(self, a, b, cin):
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return b.copy(), a.copy()


class ApproximateMirrorAdder5(AdderCell):
    """AMA5: exact sum, ``cout = a OR (b AND cin)``.

    Carry wrong for input 011 only (1 of 8 rows); sum exact.  This is the
    mildest approximate cell in the family.
    """

    name = "ama5"

    def add(self, a, b, cin):
        s = bit_xor(bit_xor(a, b), cin)
        cout = bit_or(a, bit_and(b, cin))
        return s, cout


class LowerOrCell(AdderCell):
    """Lower-part OR adder cell: ``sum = a OR b``, ``cout = 0``.

    Used for the least-significant columns of lower-part-OR adders (LOA) and
    OR-compressed multiplier columns.
    """

    name = "lower_or"

    def add(self, a, b, cin):
        s = bit_or(a, b)
        cout = np.zeros_like(np.asarray(a, dtype=np.int64))
        return s, cout


#: registry of available adder cells keyed by their short name
ADDER_CELLS: Dict[str, AdderCell] = {
    cell.name: cell
    for cell in (
        ExactFullAdder(),
        ApproximateMirrorAdder1(),
        ApproximateMirrorAdder2(),
        ApproximateMirrorAdder3(),
        ApproximateMirrorAdder4(),
        ApproximateMirrorAdder5(),
        LowerOrCell(),
    )
}


def get_adder_cell(name: str) -> AdderCell:
    """Look up an adder cell by name (see :data:`ADDER_CELLS`)."""
    try:
        return ADDER_CELLS[name]
    except KeyError as exc:
        known = ", ".join(sorted(ADDER_CELLS))
        raise KeyError(f"unknown adder cell {name!r}; known cells: {known}") from exc
