"""Bit-level, vectorised circuit models.

This package provides behavioural gate-level models of the arithmetic
circuits that the paper's approximate multipliers are built from:

* one-bit adder cells — the exact mirror adder and the approximate mirror
  adders (AMA1..AMA5) used by the "defensive approximation" baseline of
  Guesmi et al. (ASPLOS 2021), plus a lower-OR cell;
* ripple-carry adders assembled from per-bit cells;
* 4:2 compressors (exact and approximate) for compressor-tree multipliers;
* unsigned array multipliers whose internal adders can be swapped for
  approximate cells column-by-column.

All circuits operate on NumPy integer arrays and are fully vectorised, so a
complete 256x256 look-up table for an 8-bit multiplier can be evaluated in a
single call.
"""

from repro.circuits.bitops import (
    bit_and,
    bit_not,
    bit_or,
    bit_xor,
    from_bits,
    to_bits,
)
from repro.circuits.adders import (
    AdderCell,
    ExactFullAdder,
    ApproximateMirrorAdder1,
    ApproximateMirrorAdder2,
    ApproximateMirrorAdder3,
    ApproximateMirrorAdder4,
    ApproximateMirrorAdder5,
    LowerOrCell,
    ADDER_CELLS,
)
from repro.circuits.ripple import RippleCarryAdder, LowerPartOrAdder
from repro.circuits.compressors import (
    Compressor42,
    ExactCompressor42,
    ApproximateCompressor42A,
    ApproximateCompressor42B,
)
from repro.circuits.array_multiplier import (
    ArrayMultiplierCircuit,
    CompressorTreeMultiplierCircuit,
)

__all__ = [
    "bit_and",
    "bit_not",
    "bit_or",
    "bit_xor",
    "from_bits",
    "to_bits",
    "AdderCell",
    "ExactFullAdder",
    "ApproximateMirrorAdder1",
    "ApproximateMirrorAdder2",
    "ApproximateMirrorAdder3",
    "ApproximateMirrorAdder4",
    "ApproximateMirrorAdder5",
    "LowerOrCell",
    "ADDER_CELLS",
    "RippleCarryAdder",
    "LowerPartOrAdder",
    "Compressor42",
    "ExactCompressor42",
    "ApproximateCompressor42A",
    "ApproximateCompressor42B",
    "ArrayMultiplierCircuit",
    "CompressorTreeMultiplierCircuit",
]
