"""Ripple-carry adders assembled from one-bit adder cells.

A :class:`RippleCarryAdder` chains ``width`` one-bit cells; each bit position
can use a different cell, which is how lower-part approximate adders (e.g.
the Guesmi-style mirror-adder array multiplier, or LOA adders) are modelled:
the ``k`` least-significant positions use an approximate cell and the rest
use the exact full adder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.adders import AdderCell, ExactFullAdder, LowerOrCell
from repro.circuits.bitops import from_bits, to_bits
from repro.errors import ConfigurationError


class RippleCarryAdder:
    """A ``width``-bit ripple-carry adder with per-bit configurable cells.

    Parameters
    ----------
    width:
        Number of bit positions.
    cells:
        Either a single :class:`AdderCell` used for every position, or a
        sequence of ``width`` cells ordered LSB first.
    """

    def __init__(
        self,
        width: int,
        cells: Union[AdderCell, Sequence[AdderCell], None] = None,
    ) -> None:
        if width <= 0:
            raise ConfigurationError(f"adder width must be positive, got {width}")
        self.width = width
        if cells is None:
            cells = ExactFullAdder()
        if isinstance(cells, AdderCell):
            cell_list: List[AdderCell] = [cells] * width
        else:
            cell_list = list(cells)
            if len(cell_list) != width:
                raise ConfigurationError(
                    f"expected {width} adder cells, got {len(cell_list)}"
                )
        self.cells = cell_list

    @classmethod
    def with_approximate_lower_bits(
        cls,
        width: int,
        approx_cell: AdderCell,
        approx_bits: int,
        exact_cell: Optional[AdderCell] = None,
    ) -> "RippleCarryAdder":
        """Build an adder whose ``approx_bits`` LSB positions use ``approx_cell``."""
        if not 0 <= approx_bits <= width:
            raise ConfigurationError(
                f"approx_bits must be in [0, {width}], got {approx_bits}"
            )
        exact = exact_cell if exact_cell is not None else ExactFullAdder()
        cells = [approx_cell] * approx_bits + [exact] * (width - approx_bits)
        return cls(width, cells)

    def add_bits(
        self, a_bits: np.ndarray, b_bits: np.ndarray, cin: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Add two bit arrays of shape ``(..., width)``; return ``(sum_bits, cout)``."""
        a_bits = np.asarray(a_bits, dtype=np.int64)
        b_bits = np.asarray(b_bits, dtype=np.int64)
        if a_bits.shape != b_bits.shape or a_bits.shape[-1] != self.width:
            raise ConfigurationError(
                "operand bit arrays must both have last dimension "
                f"{self.width}; got {a_bits.shape} and {b_bits.shape}"
            )
        carry = (
            np.zeros(a_bits.shape[:-1], dtype=np.int64)
            if cin is None
            else np.asarray(cin, dtype=np.int64)
        )
        sum_bits = np.zeros_like(a_bits)
        for position, cell in enumerate(self.cells):
            s, carry = cell.add(a_bits[..., position], b_bits[..., position], carry)
            sum_bits[..., position] = s
        return sum_bits, carry

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Add two unsigned integer arrays, returning ``width + 1``-bit results."""
        a_bits = to_bits(np.asarray(a), self.width)
        b_bits = to_bits(np.asarray(b), self.width)
        sum_bits, cout = self.add_bits(a_bits, b_bits)
        return from_bits(sum_bits) + (cout.astype(np.int64) << self.width)


class LowerPartOrAdder(RippleCarryAdder):
    """Lower-part OR adder (LOA): OR cells in the LSBs, exact adders above."""

    def __init__(self, width: int, approx_bits: int) -> None:
        if not 0 <= approx_bits <= width:
            raise ConfigurationError(
                f"approx_bits must be in [0, {width}], got {approx_bits}"
            )
        cells = [LowerOrCell()] * approx_bits + [ExactFullAdder()] * (width - approx_bits)
        super().__init__(width, cells)
        self.approx_bits = approx_bits
