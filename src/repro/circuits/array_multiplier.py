"""Unsigned multiplier circuits built from adder cells and compressors.

Two circuit families are provided:

:class:`ArrayMultiplierCircuit`
    The classic carry-propagate array multiplier: partial-product rows are
    accumulated one after another with ripple-carry adders.  The adder cells
    used for the least-significant result columns can be replaced with
    approximate mirror adders — this is exactly the construction used by the
    "defensive approximation" baseline of Guesmi et al. (ASPLOS 2021).

:class:`CompressorTreeMultiplierCircuit`
    A Dadda-style multiplier: partial-product columns are reduced with 4:2
    compressors (exact or approximate) until at most two bits per column
    remain, then a final exact ripple-carry adder produces the product.

Both circuits are fully vectorised over NumPy arrays so a complete 256x256
look-up table is a single call.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.adders import AdderCell, ExactFullAdder
from repro.circuits.bitops import from_bits, to_bits
from repro.circuits.compressors import Compressor42, ExactCompressor42
from repro.circuits.ripple import RippleCarryAdder
from repro.errors import ConfigurationError


class ArrayMultiplierCircuit:
    """An ``width x width`` unsigned array multiplier with configurable cells.

    Parameters
    ----------
    width:
        Operand bit width (8 for the paper's multipliers).
    approx_cell:
        Adder cell used in the ``approx_columns`` least-significant columns of
        the accumulation adders.  ``None`` selects the exact full adder
        everywhere (an exact multiplier).
    approx_columns:
        Number of least-significant result columns whose adder cells are
        replaced by ``approx_cell``.
    """

    def __init__(
        self,
        width: int = 8,
        approx_cell: Optional[AdderCell] = None,
        approx_columns: int = 0,
    ) -> None:
        if width <= 0:
            raise ConfigurationError(f"multiplier width must be positive, got {width}")
        result_width = 2 * width
        if not 0 <= approx_columns <= result_width:
            raise ConfigurationError(
                f"approx_columns must be in [0, {result_width}], got {approx_columns}"
            )
        if approx_columns > 0 and approx_cell is None:
            raise ConfigurationError(
                "approx_columns > 0 requires an approximate adder cell"
            )
        self.width = width
        self.result_width = result_width
        self.approx_cell = approx_cell
        self.approx_columns = approx_columns
        exact = ExactFullAdder()
        cells: List[AdderCell] = []
        for column in range(result_width):
            if approx_cell is not None and column < approx_columns:
                cells.append(approx_cell)
            else:
                cells.append(exact)
        self._row_adder = RippleCarryAdder(result_width, cells)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply unsigned integer arrays ``a`` and ``b`` element-wise."""
        a = np.asarray(a)
        b = np.asarray(b)
        a_bits = to_bits(a, self.width)
        b_bits = to_bits(b, self.width)
        accumulator = np.zeros(a_bits.shape[:-1] + (self.result_width,), dtype=np.int64)
        for row in range(self.width):
            # partial-product row `row`: (a & -b_row) shifted left by `row`
            row_bits = np.zeros_like(accumulator)
            pp = a_bits * b_bits[..., row : row + 1]
            row_bits[..., row : row + self.width] = pp
            accumulator, _ = self._row_adder.add_bits(accumulator, row_bits)
        return from_bits(accumulator)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cell = self.approx_cell.name if self.approx_cell is not None else "exact"
        return (
            f"ArrayMultiplierCircuit(width={self.width}, approx_cell={cell!r}, "
            f"approx_columns={self.approx_columns})"
        )


class CompressorTreeMultiplierCircuit:
    """A Dadda-style unsigned multiplier using 4:2 compressors.

    Parameters
    ----------
    width:
        Operand bit width.
    compressor:
        Compressor used for the ``approx_columns`` least-significant columns.
    approx_columns:
        Number of least-significant product columns reduced with the
        (possibly approximate) ``compressor``; higher columns always use the
        exact compressor.
    """

    def __init__(
        self,
        width: int = 8,
        compressor: Optional[Compressor42] = None,
        approx_columns: int = 0,
    ) -> None:
        if width <= 0:
            raise ConfigurationError(f"multiplier width must be positive, got {width}")
        result_width = 2 * width
        if not 0 <= approx_columns <= result_width:
            raise ConfigurationError(
                f"approx_columns must be in [0, {result_width}], got {approx_columns}"
            )
        self.width = width
        self.result_width = result_width
        self.approx_columns = approx_columns
        self._approx_compressor = compressor if compressor is not None else ExactCompressor42()
        self._exact_compressor = ExactCompressor42()
        self._final_adder = RippleCarryAdder(result_width, ExactFullAdder())

    def _compressor_for(self, column: int) -> Compressor42:
        if column < self.approx_columns:
            return self._approx_compressor
        return self._exact_compressor

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply unsigned integer arrays ``a`` and ``b`` element-wise."""
        a = np.asarray(a)
        b = np.asarray(b)
        a_bits = to_bits(a, self.width)
        b_bits = to_bits(b, self.width)
        batch_shape = a_bits.shape[:-1]
        zero = np.zeros(batch_shape, dtype=np.int64)

        # Build the partial-product columns: column j holds bits a_i & b_k with i+k=j.
        columns: List[List[np.ndarray]] = [[] for _ in range(self.result_width)]
        for i in range(self.width):
            for k in range(self.width):
                columns[i + k].append(a_bits[..., i] * b_bits[..., k])

        # Reduce columns with 4:2 compressors (and 3:2 full adders for the
        # leftover triples) until every column has <= 2 bits.
        full_adder = ExactFullAdder()
        while any(len(column) > 2 for column in columns):
            new_columns: List[List[np.ndarray]] = [[] for _ in range(self.result_width)]
            for j in range(self.result_width):
                column = columns[j]
                index = 0
                while len(column) - index >= 4:
                    compressor = self._compressor_for(j)
                    x1, x2, x3, x4 = column[index : index + 4]
                    s, carry, cout = compressor.compress(x1, x2, x3, x4, zero)
                    new_columns[j].append(s)
                    if j + 1 < self.result_width:
                        new_columns[j + 1].append(carry)
                        new_columns[j + 1].append(cout)
                    index += 4
                if len(column) - index == 3:
                    x1, x2, x3 = column[index : index + 3]
                    s, carry = full_adder.add(x1, x2, x3)
                    new_columns[j].append(s)
                    if j + 1 < self.result_width:
                        new_columns[j + 1].append(carry)
                    index += 3
                new_columns[j].extend(column[index:])
            columns = new_columns

        # Final carry-propagate addition of the two remaining rows.
        row_a = np.zeros(batch_shape + (self.result_width,), dtype=np.int64)
        row_b = np.zeros_like(row_a)
        for j, column in enumerate(columns):
            if len(column) >= 1:
                row_a[..., j] = column[0]
            if len(column) == 2:
                row_b[..., j] = column[1]
        sum_bits, _ = self._final_adder.add_bits(row_a, row_b)
        return from_bits(sum_bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressorTreeMultiplierCircuit(width={self.width}, "
            f"compressor={self._approx_compressor.name!r}, "
            f"approx_columns={self.approx_columns})"
        )
