"""Vectorised bit-manipulation helpers used by the circuit models.

All functions operate on NumPy integer arrays of arbitrary shape.  Bits are
represented as ``int64`` arrays containing only 0s and 1s; bit vectors are
stored least-significant-bit first along the last axis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def to_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Decompose unsigned integers into a bit array (LSB first).

    Parameters
    ----------
    values:
        Array of non-negative integers.
    width:
        Number of bits to extract.  Values must fit in ``width`` bits.

    Returns
    -------
    numpy.ndarray
        Array of shape ``values.shape + (width,)`` with entries in {0, 1}.
    """
    values = np.asarray(values)
    if width <= 0:
        raise ShapeError(f"bit width must be positive, got {width}")
    if np.any(values < 0):
        raise ShapeError("to_bits expects non-negative integers")
    if np.any(values >= (1 << width)):
        raise ShapeError(f"values do not fit in {width} bits")
    shifts = np.arange(width, dtype=np.int64)
    return ((values[..., None].astype(np.int64) >> shifts) & 1).astype(np.int64)


def from_bits(bits: np.ndarray) -> np.ndarray:
    """Recompose a bit array (LSB first along the last axis) into integers."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[-1]
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))
    return np.sum(bits * weights, axis=-1)


def bit_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Logical AND of two bit arrays."""
    return np.asarray(a, dtype=np.int64) & np.asarray(b, dtype=np.int64)


def bit_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Logical OR of two bit arrays."""
    return np.asarray(a, dtype=np.int64) | np.asarray(b, dtype=np.int64)


def bit_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Logical XOR of two bit arrays."""
    return np.asarray(a, dtype=np.int64) ^ np.asarray(b, dtype=np.int64)


def bit_not(a: np.ndarray) -> np.ndarray:
    """Logical NOT of a bit array (1 - a)."""
    return 1 - np.asarray(a, dtype=np.int64)


def majority(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Majority vote of three bit arrays."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    c = np.asarray(c, dtype=np.int64)
    return ((a + b + c) >= 2).astype(np.int64)
