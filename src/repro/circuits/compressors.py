"""Exact and approximate 4:2 compressors.

A 4:2 compressor takes four partial-product bits plus a carry-in and produces
a sum bit, a carry bit and a carry-out such that

    x1 + x2 + x3 + x4 + cin == sum + 2 * (carry + cout)

Approximate compressors break this identity for a documented subset of the 32
input combinations; they are the building blocks of the compressor-tree
multipliers in :mod:`repro.circuits.array_multiplier`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.circuits.bitops import bit_and, bit_or, bit_xor


class Compressor42(ABC):
    """Interface for a 4:2 compressor operating on vectorised bit arrays."""

    name: str = "compressor42"

    @abstractmethod
    def compress(
        self,
        x1: np.ndarray,
        x2: np.ndarray,
        x3: np.ndarray,
        x4: np.ndarray,
        cin: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sum, carry, cout)`` bit arrays."""

    def truth_table(self) -> np.ndarray:
        """Return the 32x8 truth table ``[x1..x4, cin, sum, carry, cout]``."""
        rows = []
        for value in range(32):
            bits = [(value >> k) & 1 for k in range(5)]
            x1, x2, x3, x4, cin = (np.array([bit]) for bit in bits)
            s, c, co = self.compress(x1, x2, x3, x4, cin)
            rows.append(bits + [int(s[0]), int(c[0]), int(co[0])])
        return np.array(rows, dtype=np.int64)

    def error_rate(self) -> float:
        """Fraction of the 32 input rows whose weighted output value is wrong."""
        table = self.truth_table()
        expected = table[:, :5].sum(axis=1)
        produced = table[:, 5] + 2 * (table[:, 6] + table[:, 7])
        return float(np.mean(expected != produced))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ExactCompressor42(Compressor42):
    """The exact 4:2 compressor (mux-based decomposition)."""

    name = "exact42"

    def compress(self, x1, x2, x3, x4, cin):
        x1 = np.asarray(x1, dtype=np.int64)
        x2 = np.asarray(x2, dtype=np.int64)
        x3 = np.asarray(x3, dtype=np.int64)
        x4 = np.asarray(x4, dtype=np.int64)
        cin = np.asarray(cin, dtype=np.int64)
        t = bit_xor(bit_xor(x1, x2), bit_xor(x3, x4))
        s = bit_xor(t, cin)
        # cout = x3 when x1 ^ x2 else x1  (standard mux form)
        sel = bit_xor(x1, x2)
        cout = np.where(sel == 1, x3, x1)
        # carry = cin when t else x4
        carry = np.where(t == 1, cin, x4)
        return s, carry, cout


class ApproximateCompressor42A(Compressor42):
    """Approximate 4:2 compressor that ignores the carry-in.

    ``sum = x1^x2^x3^x4``, ``carry = (x1&x2) | (x3&x4)``, ``cout = 0``.
    The weighted output is wrong whenever ``cin = 1``, when two inputs from
    different pairs are set (e.g. ``x1`` and ``x3``), or when more than two
    inputs are set.  The error is always an under-estimate, which makes
    multipliers built from this cell negatively biased.
    """

    name = "approx42a"

    def compress(self, x1, x2, x3, x4, cin):
        s = bit_xor(bit_xor(x1, x2), bit_xor(x3, x4))
        carry = bit_or(bit_and(x1, x2), bit_and(x3, x4))
        cout = np.zeros_like(np.asarray(x1, dtype=np.int64))
        return s, carry, cout


class ApproximateCompressor42B(Compressor42):
    """A more aggressive approximate 4:2 compressor (OR-based sum).

    ``sum = (x1|x2) ^ (x3|x4)``, ``carry = (x1&x2) | (x3&x4)``, ``cout = 0``;
    the carry-in is ignored.  Compared with variant A the sum term introduces
    additional over-estimates, partially cancelling the missing carries.
    """

    name = "approx42b"

    def compress(self, x1, x2, x3, x4, cin):
        s = bit_xor(bit_or(x1, x2), bit_or(x3, x4))
        carry = bit_or(bit_and(x1, x2), bit_and(x3, x4))
        cout = np.zeros_like(np.asarray(x1, dtype=np.int64))
        return s, carry, cout


COMPRESSORS = {
    compressor.name: compressor
    for compressor in (
        ExactCompressor42(),
        ApproximateCompressor42A(),
        ApproximateCompressor42B(),
    )
}
