"""Content-addressed on-disk artifact store.

Artifacts — trained model weights, crafted adversarial suites, finished
result grids — are cached under a root directory keyed by *(kind, digest)*,
where ``digest`` is the spec content hash that produced the artifact
(:mod:`repro.experiments.spec`).  Because the digest covers everything that
determines the computation (architecture, dataset parameters, training
budget, seeds, attack parameters, budgets), a hit is always safe to reuse
and sharing a store between runs, processes or CI jobs is free.

Layout::

    <root>/<kind>/<digest[:2]>/<digest>.npz        array artifacts
    <root>/<kind>/<digest[:2]>/<digest>.json       JSON artifacts
    <root>/<kind>/<digest[:2]>/<digest>.meta.json  provenance sidecar

The root defaults to ``$REPRO_ARTIFACT_DIR`` when set, else
``~/.cache/repro``.  Writes are atomic (temp file + ``os.replace``), so a
crashed or concurrent writer never leaves a torn artifact; readers treat
unreadable entries as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import zipfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

#: environment variable overriding the default store root
STORE_ENV_VAR = "REPRO_ARTIFACT_DIR"

_HEX_DIGITS = frozenset("0123456789abcdef")


def default_store_root() -> str:
    """The artifact-store root: ``$REPRO_ARTIFACT_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@dataclass
class StoreStats:
    """Hit/miss/put counters of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def snapshot(self) -> dict:
        """The counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class ArtifactEntry:
    """One stored artifact: its key, payload size and modification time."""

    kind: str
    digest: str
    path: str
    size_bytes: int
    mtime: float


def _validate_key(kind: str, digest: str) -> None:
    if not isinstance(kind, str) or not kind or "/" in kind or kind.startswith("."):
        raise ConfigurationError(f"artifact kind must be a simple name, got {kind!r}")
    if (
        not isinstance(digest, str)
        or len(digest) < 8
        or not set(digest) <= _HEX_DIGITS
    ):
        raise ConfigurationError(
            f"artifact digest must be a lowercase hex string, got {digest!r}"
        )


class ArtifactStore:
    """Content-addressed artifact cache rooted at a directory.

    Array artifacts travel as ``dict[str, np.ndarray]`` (stored as ``.npz``);
    JSON artifacts as plain JSON-serialisable payloads.  Every ``put`` may
    attach a ``meta`` payload (typically the producing spec's ``to_dict()``),
    written as a sidecar for provenance and debugging.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(root if root is not None else default_store_root())
        self.stats = StoreStats()
        self._lock = threading.Lock()
        os.makedirs(self.root, exist_ok=True)

    # ----------------------------------------------------------------- paths
    def _path(self, kind: str, digest: str, extension: str) -> str:
        _validate_key(kind, digest)
        return os.path.join(self.root, kind, digest[:2], f"{digest}{extension}")

    def _payload_path(self, kind: str, digest: str) -> Optional[str]:
        for extension in (".npz", ".json"):
            path = self._path(kind, digest, extension)
            if os.path.exists(path):
                return path
        return None

    @staticmethod
    def _atomic_write(path: str, writer) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=os.path.splitext(path)[1]
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                writer(handle)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def _write_meta(self, kind: str, digest: str, meta: Optional[dict]) -> None:
        if meta is None:
            return
        payload = {"kind": kind, "digest": digest, "created": time.time(), "meta": meta}
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._atomic_write(
            self._path(kind, digest, ".meta.json"), lambda handle: handle.write(body)
        )

    # ------------------------------------------------------------------- API
    def has(self, kind: str, digest: str) -> bool:
        """Whether an artifact exists for *(kind, digest)* (does not count stats)."""
        return self._payload_path(kind, digest) is not None

    def get_arrays(self, kind: str, digest: str) -> Optional[Dict[str, np.ndarray]]:
        """Load an array artifact, or ``None`` on a miss."""
        path = self._path(kind, digest, ".npz")
        with self._lock:
            if not os.path.exists(path):
                self.stats.misses += 1
                return None
            try:
                with np.load(path) as archive:
                    arrays = {key: archive[key] for key in archive.files}
            except (OSError, ValueError, zipfile.BadZipFile, zlib.error):
                # torn or corrupted entry: drop it and report a miss
                self.stats.misses += 1
                self._unlink_entry(kind, digest)
                return None
            self.stats.hits += 1
            return arrays

    def put_arrays(
        self,
        kind: str,
        digest: str,
        arrays: Dict[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> str:
        """Store an array artifact; returns the payload path."""
        if not arrays:
            raise ConfigurationError("array artifacts must contain at least one array")
        path = self._path(kind, digest, ".npz")
        with self._lock:
            self._atomic_write(path, lambda handle: np.savez(handle, **arrays))
            self._write_meta(kind, digest, meta)
            self.stats.puts += 1
        return path

    def get_json(self, kind: str, digest: str):
        """Load a JSON artifact, or ``None`` on a miss."""
        path = self._path(kind, digest, ".json")
        with self._lock:
            if not os.path.exists(path):
                self.stats.misses += 1
                return None
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                self.stats.misses += 1
                self._unlink_entry(kind, digest)
                return None
            self.stats.hits += 1
            return payload

    def put_json(self, kind: str, digest: str, payload, meta: Optional[dict] = None) -> str:
        """Store a JSON artifact; returns the payload path."""
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        path = self._path(kind, digest, ".json")
        with self._lock:
            self._atomic_write(path, lambda handle: handle.write(body))
            self._write_meta(kind, digest, meta)
            self.stats.puts += 1
        return path

    def get_meta(self, kind: str, digest: str) -> Optional[dict]:
        """Load the provenance sidecar of an artifact, if one was written."""
        path = self._path(kind, digest, ".meta.json")
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------ management
    def _unlink_entry(self, kind: str, digest: str) -> bool:
        removed = False
        for extension in (".npz", ".json", ".meta.json"):
            path = self._path(kind, digest, extension)
            if os.path.exists(path):
                os.unlink(path)
                removed = True
        return removed

    def evict(self, kind: str, digest: str) -> bool:
        """Remove one artifact (and its sidecar); True when something was removed."""
        with self._lock:
            removed = self._unlink_entry(kind, digest)
            if removed:
                self.stats.evictions += 1
            return removed

    def clear(self) -> int:
        """Remove every artifact in the store; returns the number evicted."""
        evicted = 0
        for entry in self.entries():
            if self.evict(entry.kind, entry.digest):
                evicted += 1
        return evicted

    def entries(self) -> List[ArtifactEntry]:
        """Every stored artifact, oldest first."""
        found: List[ArtifactEntry] = []
        for kind in sorted(os.listdir(self.root)) if os.path.isdir(self.root) else []:
            kind_dir = os.path.join(self.root, kind)
            if not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".meta.json") or name.startswith(".tmp-"):
                        continue
                    digest, _ = os.path.splitext(name)
                    path = os.path.join(shard_dir, name)
                    try:
                        stat = os.stat(path)
                    except OSError:  # pragma: no cover - raced removal
                        continue
                    found.append(
                        ArtifactEntry(
                            kind=kind,
                            digest=digest,
                            path=path,
                            size_bytes=int(stat.st_size),
                            mtime=stat.st_mtime,
                        )
                    )
        found.sort(key=lambda entry: (entry.mtime, entry.kind, entry.digest))
        return found

    def size_bytes(self) -> int:
        """Total payload size of the store."""
        return sum(entry.size_bytes for entry in self.entries())

    def prune(self, max_bytes: int) -> List[ArtifactEntry]:
        """Evict oldest artifacts until the store fits ``max_bytes``.

        Returns the evicted entries (oldest first).  ``max_bytes=0`` empties
        the store.
        """
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        evicted: List[ArtifactEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            if self.evict(entry.kind, entry.digest):
                total -= entry.size_bytes
                evicted.append(entry)
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={self.root!r})"
