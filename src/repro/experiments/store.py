"""Content-addressed on-disk artifact store.

Artifacts — trained model weights, crafted adversarial suites, finished
result grids — are cached under a root directory keyed by *(kind, digest)*,
where ``digest`` is the spec content hash that produced the artifact
(:mod:`repro.experiments.spec`).  Because the digest covers everything that
determines the computation (architecture, dataset parameters, training
budget, seeds, attack parameters, budgets), a hit is always safe to reuse
and sharing a store between runs, processes or CI jobs is free.

Layout::

    <root>/<kind>/<digest[:2]>/<digest>.npz         array artifacts
    <root>/<kind>/<digest[:2]>/<digest>.json        JSON artifacts
    <root>/<kind>/<digest[:2]>/<digest>.meta.json   provenance + payload hash
    <root>/<kind>/<digest[:2]>/<digest>.lease.json  single-writer claim
    <root>/.quarantine/<kind>/<digest>.*            artifacts verify() failed

The root defaults to ``$REPRO_ARTIFACT_DIR`` when set, else
``~/.cache/repro``.

Fault tolerance (the resilience layer, PR 6):

* Writes are atomic (temp file + ``os.replace``) and *retried* under a
  :class:`repro.resilience.RetryPolicy` on transient IO errors, so a flaky
  filesystem costs a deterministic backoff, not a crashed run.
* Every payload's SHA-256 is recorded in the meta sidecar at put time;
  :meth:`ArtifactStore.verify` re-hashes the store and *quarantines*
  truncated or bit-rotted entries (readers also quarantine entries they
  fail to load), so the next ``Session.run`` recomputes instead of
  crashing.
* :meth:`ArtifactStore.lease` hands out single-writer lease files with
  expiry and takeover — the claim mechanism that lets N hosts fill one
  shared store without duplicate training.
* :class:`TrainingCheckpointer` stores epoch-granular training state keyed
  by *(model digest, epoch)* so an interrupted ``Trainer.fit`` resumes with
  byte-identical results.
* The store consults the fault points ``store.write``, ``store.read`` and
  ``store.corrupt`` (see :class:`repro.resilience.FaultInjector`), which is
  how the chaos suite drives all of the above without monkeypatching.

Remote tier (PR 10): pointing the store at a backend URL
(``REPRO_STORE_URL`` / the ``store_url`` argument / an explicit
``backend``) layers a remote :class:`~repro.experiments.backends.
StoreBackend` *behind* the local directory, which stays the authoritative
cache for bit-identical reproduction:

* Reads that miss locally fetch from the remote, re-hash the payload
  against its ``payload_sha256`` sidecar (*read-repair*: mismatches are
  quarantined and re-fetched once), and land in the local cache through
  the same atomic write path as a local put.
* Writes go through locally first, then upload write-through with
  ``if_none_match`` conditional puts (a precondition failure means the
  content-addressed payload is already uploaded — dedupe, not an error).
* Every remote call runs under the
  :class:`~repro.experiments.backends.ResilientBackend` (retry + per-call
  timeout + optional hedged reads) and is accounted to a
  :class:`~repro.experiments.backends.CircuitBreaker`.  When the breaker
  opens the store *degrades* instead of hanging: reads are served from
  the local cache, writes are journaled
  (:class:`~repro.experiments.backends.WriteJournal`) for upload after
  recovery, and a local read miss raises
  :class:`~repro.errors.MissingArtifactError` with
  ``backend_degraded=True``.  Recovery is automatic via half-open probe
  requests; the journal flushes opportunistically on the next healthy
  remote operation (or explicitly via :meth:`ArtifactStore.flush_journal`).
* :meth:`ArtifactStore.warm` prefetches one artifact remote→local — the
  Session's speculative-prefetch thread uses it to warm the next stage's
  artifacts while the current stage computes.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import socket
import tempfile
import threading
import time
import zipfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config import env_float
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    LeaseHeldError,
    MissingArtifactError,
    PreconditionFailedError,
)
from repro.experiments.backends import (
    STORE_URL_ENV_VAR,
    CircuitBreaker,
    ResilientBackend,
    StoreBackend,
    WriteJournal,
    _atomic_write_with,
    _sha256_file,
    atomic_write_bytes,
    atomic_write_json,
    backend_from_url,
)
from repro.resilience import FaultInjector, RetryPolicy, corrupt_file

#: environment variable overriding the default store root
STORE_ENV_VAR = "REPRO_ARTIFACT_DIR"

#: environment variable overriding the default lease time-to-live (seconds)
LEASE_TTL_ENV_VAR = "REPRO_LEASE_TTL"

#: environment variable overriding the quarantine retention (seconds)
QUARANTINE_TTL_ENV_VAR = "REPRO_QUARANTINE_TTL"

#: default single-writer lease time-to-live
DEFAULT_LEASE_TTL_S = 900.0

#: default quarantine retention before verify()/prune sweep it (7 days)
DEFAULT_QUARANTINE_TTL_S = 7 * 24 * 3600.0

#: errors a remote backend call may fail with after retries
_REMOTE_ERRORS = (OSError, DeadlineExceededError)

#: tolerated wall-clock skew between lease writers (seconds) — expiry is a
#: comparison of clocks stamped on different hosts (or on one host across a
#: clock step), so a lease is only *taken over* once it is expired by more
#: than this margin
LEASE_SKEW_S = 5.0

#: directory (under the root) holding quarantined artifacts
QUARANTINE_DIR = ".quarantine"

_HEX_DIGITS = frozenset("0123456789abcdef")


def default_store_root() -> str:
    """The artifact-store root: ``$REPRO_ARTIFACT_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def default_lease_ttl_s() -> float:
    """The lease TTL: ``$REPRO_LEASE_TTL`` seconds or 900."""
    ttl = env_float(LEASE_TTL_ENV_VAR, DEFAULT_LEASE_TTL_S)
    if ttl <= 0:
        raise ConfigurationError(f"{LEASE_TTL_ENV_VAR} must be positive, got {ttl}")
    return ttl


def default_quarantine_ttl_s() -> float:
    """The quarantine retention: ``$REPRO_QUARANTINE_TTL`` seconds or 7 days."""
    ttl = env_float(QUARANTINE_TTL_ENV_VAR, DEFAULT_QUARANTINE_TTL_S)
    if ttl <= 0:
        raise ConfigurationError(
            f"{QUARANTINE_TTL_ENV_VAR} must be positive, got {ttl}"
        )
    return ttl


@dataclass
class StoreStats:
    """Hit/miss/put counters of one :class:`ArtifactStore` instance.

    The ``remote_*`` / journal / prefetch counters only move when a remote
    backend is configured; ``quarantine_swept`` counts quarantined files
    removed by the TTL sweep in :meth:`ArtifactStore.verify` / ``prune``.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    retries: int = 0
    quarantined: int = 0
    quarantine_swept: int = 0
    remote_hits: int = 0
    remote_misses: int = 0
    remote_puts: int = 0
    remote_failures: int = 0
    journaled: int = 0
    flushed: int = 0
    read_repairs: int = 0
    prefetched: int = 0
    prefetch_hits: int = 0

    def snapshot(self) -> dict:
        """The counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "quarantine_swept": self.quarantine_swept,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "remote_puts": self.remote_puts,
            "remote_failures": self.remote_failures,
            "journaled": self.journaled,
            "flushed": self.flushed,
            "read_repairs": self.read_repairs,
            "prefetched": self.prefetched,
            "prefetch_hits": self.prefetch_hits,
        }


@dataclass(frozen=True)
class ArtifactEntry:
    """One stored artifact: its key, payload size and modification time."""

    kind: str
    digest: str
    path: str
    size_bytes: int
    mtime: float


@dataclass(frozen=True)
class VerifyFinding:
    """One problem :meth:`ArtifactStore.verify` found (and what it did)."""

    kind: str
    digest: str
    path: str
    problem: str
    quarantined: bool


def _validate_key(kind: str, digest: str) -> None:
    if not isinstance(kind, str) or not kind or "/" in kind or kind.startswith("."):
        raise ConfigurationError(f"artifact kind must be a simple name, got {kind!r}")
    if (
        not isinstance(digest, str)
        or len(digest) < 8
        or not set(digest) <= _HEX_DIGITS
    ):
        raise ConfigurationError(
            f"artifact digest must be a lowercase hex string, got {digest!r}"
        )


def _lease_skew_s(doc: dict) -> float:
    """The expiry grace margin for one lease document.

    A quarter of the holder's own TTL, capped at :data:`LEASE_SKEW_S` — so
    production leases (minutes) absorb several seconds of cross-writer
    clock skew while the short TTLs used in tests and CI takeover paths
    stay promptly stealable.
    """
    ttl = doc.get("ttl_s")
    if not isinstance(ttl, (int, float)) or ttl <= 0:
        expires, acquired = doc.get("expires"), doc.get("acquired")
        if isinstance(expires, (int, float)) and isinstance(acquired, (int, float)):
            ttl = expires - acquired
        else:
            return LEASE_SKEW_S
    return min(LEASE_SKEW_S, max(0.0, 0.25 * ttl))


def _lease_expired(doc: Optional[dict], now: float) -> bool:
    """Whether a lease document is safely past its expiry.

    Expiry compares wall clocks stamped by *different* writers, so a raw
    ``expires <= now`` check lets a backwards clock step (or modest
    cross-host skew) make a live lease look dead and be stolen from a
    healthy writer.  A lease is only considered expired once ``now`` is
    past ``expires`` by more than the skew margin (:func:`_lease_skew_s`).
    Malformed documents — no numeric expiry, or a *negative* remaining TTL
    relative to their own ``acquired`` stamp (the writer's clock stepped
    between the two reads, or the doc is corrupt) — are treated as
    expired: their timing claims cannot be trusted.
    """
    if not doc:
        return True
    expires = doc.get("expires")
    if not isinstance(expires, (int, float)):
        return True
    acquired = doc.get("acquired")
    if isinstance(acquired, (int, float)) and expires < acquired:
        return True  # negative TTL: the document's own clocks disagree
    return now - expires > _lease_skew_s(doc)


class Lease:
    """A single-writer claim on one artifact key, backed by a lease file.

    Acquisition is atomic (``O_CREAT | O_EXCL``); an expired lease — its
    writer crashed or lost the host — is *taken over* by atomically
    replacing the file and confirming ownership on read-back, so two
    racing claimants resolve to exactly one winner.  Holders should
    :meth:`refresh` within the TTL for long computations (the Session
    refreshes once per training epoch).

    Use as a context manager (raises :class:`LeaseHeldError` when the claim
    is lost to a live holder) or poll :meth:`acquire` directly.
    """

    def __init__(self, path: str, ttl_s: float, owner: Optional[str] = None) -> None:
        if ttl_s <= 0:
            raise ConfigurationError(f"lease ttl_s must be positive, got {ttl_s}")
        self.path = path
        self.ttl_s = float(ttl_s)
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        self._token = secrets.token_hex(8)
        self._held = False

    # -------------------------------------------------------------- helpers
    def _payload(self) -> bytes:
        now = time.time()
        doc = {
            "owner": self.owner,
            "token": self._token,
            "pid": os.getpid(),
            "acquired": now,
            "expires": now + self.ttl_s,
            "ttl_s": self.ttl_s,
        }
        return json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")

    def holder(self) -> Optional[dict]:
        """The current lease document, or ``None`` when unclaimed/unreadable."""
        try:
            with open(self.path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def held_by_self(self) -> bool:
        holder = self.holder()
        return bool(holder) and holder.get("token") == self._token

    def remaining_s(self) -> float:
        """Seconds until the current holder's expiry (never negative).

        A backwards clock step can put ``expires`` in the apparent past (or
        ``now`` past it) — callers budgeting refresh intervals must never
        see a negative remaining TTL, so the value is clamped at zero.
        """
        holder = self.holder()
        if not holder:
            return 0.0
        expires = holder.get("expires")
        if not isinstance(expires, (int, float)):
            return 0.0
        return max(0.0, expires - time.time())

    # ------------------------------------------------------------------ API
    def acquire(self) -> bool:
        """Try to claim the lease (non-blocking); True on success.

        A missing lease file is claimed atomically; an *expired* one —
        expired by more than :data:`LEASE_SKEW_S`, so a clock step or
        cross-host skew cannot make a live lease look dead — is taken
        over.  A live lease held by someone else returns False.
        """
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        try:
            descriptor = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            holder = self.holder()
            if holder is not None and not _lease_expired(holder, time.time()):
                return False
            # expired (or unreadable) lease: take over atomically and confirm
            # ownership on read-back — of two racing replacers exactly one
            # token survives in the file
            descriptor, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(self.path), prefix=".tmp-lease-"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(self._payload())
                os.replace(temp_path, self.path)
            except BaseException:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
                raise
            self._held = self.held_by_self()
            return self._held
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(self._payload())
        self._held = True
        return True

    def refresh(self) -> bool:
        """Extend the expiry of a lease this object holds; False if lost."""
        if not self._held or not self.held_by_self():
            self._held = False
            return False
        descriptor, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(self.path), prefix=".tmp-lease-"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(self._payload())
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return True

    def release(self) -> None:
        """Drop the claim (only when still held by this object)."""
        if self._held and self.held_by_self():
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self._held = False

    def __enter__(self) -> "Lease":
        if not self.acquire():
            holder = self.holder() or {}
            raise LeaseHeldError(
                f"lease {self.path} is held by {holder.get('owner', 'unknown')} "
                f"until {holder.get('expires', 0):.0f}"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class ArtifactStore:
    """Content-addressed artifact cache rooted at a directory.

    Array artifacts travel as ``dict[str, np.ndarray]`` (stored as ``.npz``);
    JSON artifacts as plain JSON-serialisable payloads.  Every ``put``
    writes a meta sidecar carrying the payload's SHA-256 (for
    :meth:`verify`) plus an optional ``meta`` payload (typically the
    producing spec's ``to_dict()``) for provenance and debugging.

    ``retry`` governs transient-IO retries on every read and write
    (default: :meth:`RetryPolicy.from_env`, honouring ``REPRO_MAX_RETRIES``
    / ``REPRO_RETRY_BACKOFF``).

    A *remote tier* is attached by passing a
    :class:`~repro.experiments.backends.StoreBackend` (``backend``), a
    backend URL (``store_url``), or by setting ``$REPRO_STORE_URL``
    (precedence in that order).  The local directory stays the
    authoritative cache; the remote backend is consulted on local read
    misses and written through on puts — see the module docstring for the
    degradation/recovery ladder.  ``breaker`` injects a pre-built
    :class:`~repro.experiments.backends.CircuitBreaker` (tests use a fake
    clock); the default is :meth:`CircuitBreaker.from_env`.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        backend: Optional[StoreBackend] = None,
        store_url: Optional[str] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.root = os.path.abspath(root if root is not None else default_store_root())
        self.stats = StoreStats()
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._lock = threading.Lock()
        os.makedirs(self.root, exist_ok=True)
        if store_url is None:
            store_url = os.environ.get(STORE_URL_ENV_VAR) or None
        self.store_url = store_url
        if backend is None and store_url:
            backend = backend_from_url(store_url)
        if backend is not None and not isinstance(backend, ResilientBackend):
            backend = ResilientBackend.from_env(backend)
        self.remote: Optional[ResilientBackend] = backend
        self.breaker: Optional[CircuitBreaker] = None
        self.journal: Optional[WriteJournal] = None
        if self.remote is not None:
            self.breaker = breaker if breaker is not None else CircuitBreaker.from_env()
            self.journal = WriteJournal(
                os.path.join(self.root, ".journal", "pending.json")
            )
        self._warmed: Set[Tuple[str, str]] = set()

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.retries += 1

    # ----------------------------------------------------------------- paths
    def _path(self, kind: str, digest: str, extension: str) -> str:
        _validate_key(kind, digest)
        return os.path.join(self.root, kind, digest[:2], f"{digest}{extension}")

    def _quarantine_path(self, kind: str, name: str) -> str:
        return os.path.join(self.root, QUARANTINE_DIR, kind, name)

    def _payload_path(self, kind: str, digest: str) -> Optional[str]:
        for extension in (".npz", ".json"):
            path = self._path(kind, digest, extension)
            if os.path.exists(path):
                return path
        return None

    def _atomic_write(self, path: str, writer) -> str:
        """Write atomically (with fault seam + retry); returns the payload hash."""
        return _atomic_write_with(
            path, writer, retry=self.retry, on_retry=self._count_retry
        )

    def _write_meta(
        self, kind: str, digest: str, meta: Optional[dict], payload_hash: str
    ) -> None:
        payload = {
            "kind": kind,
            "digest": digest,
            "created": time.time(),
            "payload_sha256": payload_hash,
            "meta": meta,
        }
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._atomic_write(
            self._path(kind, digest, ".meta.json"), lambda handle: handle.write(body)
        )

    def _apply_corrupt_fault(self, path: str) -> None:
        # chaos seam: a scripted plan flips payload bytes *after* a
        # successful atomic write — the torn/bit-rotted artifact verify()
        # and the readers must survive
        rule = FaultInjector.consult("store.corrupt")
        if rule is not None and rule.action == "corrupt":
            corrupt_file(path, offset=rule.corrupt_offset, n_bytes=rule.corrupt_bytes)

    # ------------------------------------------------------------------- API
    def has(self, kind: str, digest: str) -> bool:
        """Whether an artifact exists for *(kind, digest)* (does not count stats)."""
        return self._payload_path(kind, digest) is not None

    def get_arrays(self, kind: str, digest: str) -> Optional[Dict[str, np.ndarray]]:
        """Load an array artifact, or ``None`` on a miss.

        Transient IO errors are retried; an entry that still cannot be read
        (torn, truncated, bit-rotted) is quarantined and reported as a miss
        — unless a remote backend holds a clean copy, in which case the
        local cache is repaired from it and the read succeeds.  With a
        *degraded* remote (circuit open) a local miss raises
        :class:`MissingArtifactError` with ``backend_degraded=True``.
        """
        path = self._path(kind, digest, ".npz")

        def attempt() -> Dict[str, np.ndarray]:
            FaultInjector.consult("store.read")
            with np.load(path) as archive:
                return {key: archive[key] for key in archive.files}

        def load() -> Optional[Dict[str, np.ndarray]]:
            try:
                return self.retry.run(
                    attempt,
                    description=f"store read {kind}/{digest[:12]}",
                    on_retry=self._count_retry,
                )
            except (OSError, ValueError, zipfile.BadZipFile, zlib.error):
                return None

        with self._lock:
            return self._serve(kind, digest, ".npz", path, load)

    def put_arrays(
        self,
        kind: str,
        digest: str,
        arrays: Dict[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> str:
        """Store an array artifact; returns the payload path."""
        if not arrays:
            raise ConfigurationError("array artifacts must contain at least one array")
        path = self._path(kind, digest, ".npz")
        with self._lock:
            payload_hash = self._atomic_write(
                path, lambda handle: np.savez(handle, **arrays)
            )
            self._write_meta(kind, digest, meta, payload_hash)
            self.stats.puts += 1
            # write-through before the corrupt fault seam: the upload ships
            # the bytes that were actually written; scripted local rot
            # happens to the local copy afterwards (and read-repair heals it)
            self._push_remote(kind, digest)
            self._apply_corrupt_fault(path)
        return path

    def get_json(self, kind: str, digest: str):
        """Load a JSON artifact, or ``None`` on a miss (see :meth:`get_arrays`)."""
        path = self._path(kind, digest, ".json")

        def attempt():
            FaultInjector.consult("store.read")
            with open(path) as handle:
                return json.load(handle)

        def load():
            try:
                return self.retry.run(
                    attempt,
                    description=f"store read {kind}/{digest[:12]}",
                    on_retry=self._count_retry,
                )
            except (OSError, ValueError):
                return None

        with self._lock:
            return self._serve(kind, digest, ".json", path, load)

    def _serve(self, kind: str, digest: str, extension: str, path: str, load):
        """The shared read ladder of :meth:`get_arrays`/:meth:`get_json`.

        Called under the store lock.  ``load()`` parses the local payload
        (``None`` for torn/corrupt).  Ladder: local file → remote restore
        on absence → quarantine + one remote repair on local corruption →
        malformed-meta check — any dead end is a counted miss (raising
        instead when the remote is degraded).
        """
        if not os.path.exists(path):
            if not self._restore_remote(kind, digest, extension):
                self.stats.misses += 1
                self._raise_if_degraded(kind, digest, path)
                return None
        payload = load()
        if payload is None:
            # torn or corrupted local entry: quarantine it, then repair
            # from the remote copy when one is reachable and clean
            self._quarantine_entry(kind, digest)
            if self._restore_remote(kind, digest, extension):
                payload = load()
                if payload is None:
                    self._quarantine_entry(kind, digest)
        if payload is not None and self._meta_malformed(kind, digest):
            # a malformed/truncated meta sidecar is treated exactly like a
            # corrupt payload: quarantine the entry and report a miss
            self._quarantine_entry(kind, digest)
            payload = None
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if (kind, digest) in self._warmed:
            self._warmed.discard((kind, digest))
            self.stats.prefetch_hits += 1
        return payload

    def put_json(self, kind: str, digest: str, payload, meta: Optional[dict] = None) -> str:
        """Store a JSON artifact; returns the payload path."""
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        path = self._path(kind, digest, ".json")
        with self._lock:
            payload_hash = self._atomic_write(path, lambda handle: handle.write(body))
            self._write_meta(kind, digest, meta, payload_hash)
            self.stats.puts += 1
            self._push_remote(kind, digest)
            self._apply_corrupt_fault(path)
        return path

    def _read_meta_raw(self, kind: str, digest: str) -> Tuple[Optional[dict], bool]:
        """``(meta, malformed)`` — malformed means the sidecar exists but
        does not parse (truncated or torn), as opposed to simply absent."""
        path = self._path(kind, digest, ".meta.json")
        if not os.path.exists(path):
            return None, False
        try:
            with open(path) as handle:
                return json.load(handle), False
        except ValueError:
            return None, True
        except OSError:
            return None, False

    def _meta_malformed(self, kind: str, digest: str) -> bool:
        return self._read_meta_raw(kind, digest)[1]

    def get_meta(self, kind: str, digest: str) -> Optional[dict]:
        """Load the provenance sidecar of an artifact, if one was written.

        A malformed or truncated sidecar is treated like a corrupt payload
        — the whole entry is quarantined and the read reports ``None`` —
        instead of surfacing a parse error or silently trusting an entry
        whose provenance cannot be read.
        """
        meta, malformed = self._read_meta_raw(kind, digest)
        if malformed:
            self._quarantine_entry(kind, digest)
            return None
        return meta

    # ----------------------------------------------------------- remote tier
    @property
    def degraded(self) -> bool:
        """Whether the remote backend is degraded (circuit breaker open)."""
        return self.breaker is not None and self.breaker.state == "open"

    def breaker_state_code(self) -> int:
        """The breaker state as a gauge: 0 closed (or no remote), 1 half-open, 2 open."""
        return 0 if self.breaker is None else self.breaker.state_code()

    def journal_pending(self) -> int:
        """Journaled writes awaiting upload (0 without a remote)."""
        return 0 if self.journal is None else len(self.journal)

    @staticmethod
    def _remote_key(kind: str, digest: str, extension: str) -> str:
        return f"{kind}/{digest}{extension}"

    def _raise_if_degraded(self, kind: str, digest: str, path: str) -> None:
        if self.remote is None or not self.degraded:
            return
        raise MissingArtifactError(
            f"artifact {kind}/{digest[:12]} is not in the local cache and the "
            f"remote backend ({self.remote.describe()}) is degraded (circuit "
            f"open); it may exist remotely — retry after the breaker recovers",
            kind=kind,
            digest=digest,
            path=path,
            backend_degraded=True,
        )

    def _quarantine_fetched_bytes(
        self, kind: str, digest: str, extension: str, data: bytes
    ) -> None:
        """Preserve a hash-mismatched remote payload for debugging."""
        target = self._quarantine_path(kind, f"{digest}{extension}.fetched")
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(target, "wb") as handle:
                handle.write(data)
        except OSError:  # pragma: no cover - debris preservation is best-effort
            pass

    def _restore_remote(self, kind: str, digest: str, extension: str) -> bool:
        """Fetch one artifact remote→local cache; True when restored.

        Called under the store lock.  Applies read-repair: the fetched
        payload is re-hashed against the ``payload_sha256`` recorded in
        its remote meta sidecar; a mismatch quarantines the fetched bytes
        and re-fetches exactly once (a torn upload or stale read), and a
        second mismatch is a remote miss.  Transport failures are
        accounted to the circuit breaker; payload-integrity failures are
        not (the transport worked — the bytes are just wrong).
        """
        if self.remote is None or not self.breaker.allow():
            return False
        key = self._remote_key(kind, digest, extension)
        meta_key = self._remote_key(kind, digest, ".meta.json")
        try:
            blob = self.remote.get(key)
            meta_blob = self.remote.get(meta_key) if blob is not None else None
        except _REMOTE_ERRORS:
            self.breaker.record_failure()
            self.stats.remote_failures += 1
            return False
        if blob is None:
            self.breaker.record_success()
            self.stats.remote_misses += 1
            return False
        expected = None
        if meta_blob is not None:
            try:
                expected = json.loads(meta_blob.data).get("payload_sha256")
            except ValueError:
                expected = None
        data = blob.data
        if expected is not None and hashlib.sha256(data).hexdigest() != expected:
            # read-repair: quarantine the bad bytes, re-fetch exactly once
            self.stats.read_repairs += 1
            self._quarantine_fetched_bytes(kind, digest, extension, data)
            try:
                blob = self.remote.get(key)
            except _REMOTE_ERRORS:
                self.breaker.record_failure()
                self.stats.remote_failures += 1
                return False
            if (
                blob is None
                or hashlib.sha256(blob.data).hexdigest() != expected
            ):
                self.breaker.record_success()
                self.stats.remote_misses += 1
                return False
            data = blob.data
        self.breaker.record_success()
        try:
            self._atomic_write(
                self._path(kind, digest, extension),
                lambda handle: handle.write(data),
            )
            if meta_blob is not None:
                meta_data = meta_blob.data
                self._atomic_write(
                    self._path(kind, digest, ".meta.json"),
                    lambda handle: handle.write(meta_data),
                )
        except OSError:
            return False
        self.stats.remote_hits += 1
        self._flush_journal_locked()
        return True

    def _upload_entry(self, kind: str, digest: str) -> bool:
        """Upload one locally-cached artifact (payload + meta) to the remote.

        Content-addressed dedupe: the payload goes up with
        ``if_none_match=True`` and a precondition failure counts as
        success (an identical payload is already there).  Raises the
        transport error on failure; returns False when the local payload
        has vanished (nothing to upload).
        """
        path = self._payload_path(kind, digest)
        if path is None:
            return False
        extension = ".npz" if path.endswith(".npz") else ".json"
        with open(path, "rb") as handle:
            payload = handle.read()
        try:
            self.remote.put_atomic(
                self._remote_key(kind, digest, extension),
                payload,
                if_none_match=True,
            )
        except PreconditionFailedError:
            pass  # already uploaded (same content address): success
        meta_path = self._path(kind, digest, ".meta.json")
        if os.path.exists(meta_path):
            with open(meta_path, "rb") as handle:
                meta_payload = handle.read()
            # meta carries a creation timestamp, so last-writer-wins here
            self.remote.put_atomic(
                self._remote_key(kind, digest, ".meta.json"), meta_payload
            )
        return True

    def _journal_add(self, kind: str, digest: str) -> None:
        if self.journal is not None and self.journal.add(kind, digest):
            self.stats.journaled += 1

    def _push_remote(self, kind: str, digest: str) -> None:
        """Write-through one just-put artifact (called under the lock)."""
        if self.remote is None:
            return
        if not self.breaker.allow():
            # degraded: journal the write for upload after recovery
            self._journal_add(kind, digest)
            return
        try:
            self._upload_entry(kind, digest)
        except _REMOTE_ERRORS:
            self.breaker.record_failure()
            self.stats.remote_failures += 1
            self._journal_add(kind, digest)
            return
        self.breaker.record_success()
        self.stats.remote_puts += 1
        self._flush_journal_locked()

    def _flush_journal_locked(self) -> int:
        """Drain journaled writes while the breaker stays willing."""
        if self.journal is None:
            return 0
        flushed = 0
        for kind, digest in self.journal.pending():
            if not self.breaker.allow():
                break
            try:
                uploaded = self._upload_entry(kind, digest)
            except _REMOTE_ERRORS:
                self.breaker.record_failure()
                self.stats.remote_failures += 1
                break
            self.breaker.record_success()
            self.journal.remove(kind, digest)
            if uploaded:
                self.stats.remote_puts += 1
                self.stats.flushed += 1
                flushed += 1
            # a vanished payload (evicted while journaled) is just dropped
        return flushed

    def flush_journal(self) -> int:
        """Upload journaled degraded-mode writes; returns the count flushed.

        Flushing also happens opportunistically after any successful
        remote operation, so an explicit call is only needed to bound
        recovery time (e.g. at the end of a run).
        """
        with self._lock:
            return self._flush_journal_locked()

    def warm(self, kind: str, digest: str) -> bool:
        """Prefetch one artifact into the local cache; True when it is local.

        The Session's speculative-prefetch thread calls this for the
        artifacts the next pipeline stage will need.  Already-local
        entries are True without remote traffic; restored entries are
        counted as ``prefetched`` and their first read as a
        ``prefetch_hit``.  Never raises — a failed warm simply leaves the
        read path to fetch (or recompute) later.
        """
        try:
            with self._lock:
                if self._payload_path(kind, digest) is not None:
                    return True
                for extension in (".npz", ".json"):
                    if self._restore_remote(kind, digest, extension):
                        self.stats.prefetched += 1
                        self._warmed.add((kind, digest))
                        return True
                return False
        except Exception:  # noqa: BLE001 - prefetch is opportunistic
            return False

    # --------------------------------------------------------------- leases
    def lease(
        self,
        kind: str,
        digest: str,
        ttl_s: Optional[float] = None,
        owner: Optional[str] = None,
    ) -> Lease:
        """A single-writer :class:`Lease` on one artifact key.

        The multi-host claim mechanism: before paying for an expensive
        computation, a writer claims *(kind, digest)*; other hosts seeing a
        live lease poll the store for the winner's artifact instead of
        duplicating the work.  TTL defaults to ``$REPRO_LEASE_TTL`` or 900
        seconds; holders of long computations refresh per epoch.
        """
        return Lease(
            self._path(kind, digest, ".lease.json"),
            ttl_s if ttl_s is not None else default_lease_ttl_s(),
            owner=owner,
        )

    # ------------------------------------------------------------ management
    def _unlink_entry(self, kind: str, digest: str) -> bool:
        removed = False
        for extension in (".npz", ".json", ".meta.json", ".lease.json"):
            path = self._path(kind, digest, extension)
            if os.path.exists(path):
                os.unlink(path)
                removed = True
        return removed

    def _quarantine_entry(self, kind: str, digest: str) -> bool:
        """Move an artifact (payload + sidecar) into the quarantine area.

        Quarantined entries read as misses — the next run recomputes — but
        the bytes are preserved for debugging instead of being destroyed.
        """
        moved = False
        for extension in (".npz", ".json", ".meta.json"):
            path = self._path(kind, digest, extension)
            if not os.path.exists(path):
                continue
            target = self._quarantine_path(kind, os.path.basename(path))
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(path, target)
            moved = True
        if moved:
            self.stats.quarantined += 1
        return moved

    def evict(self, kind: str, digest: str, remote: bool = True) -> bool:
        """Remove one artifact (and its sidecar); True when something was removed.

        ``remote`` also deletes the remote copy (best-effort) — an evicted
        artifact is *invalid* (e.g. weights from an incompatible build)
        and must not be restored on the next read.  ``prune`` passes
        ``remote=False``: trimming the local cache for capacity must not
        destroy the remote tier it would refill from.
        """
        with self._lock:
            removed = self._unlink_entry(kind, digest)
            if removed:
                self.stats.evictions += 1
            if remote and self.remote is not None and self.breaker.allow():
                try:
                    for extension in (".npz", ".json", ".meta.json"):
                        self.remote.delete(
                            self._remote_key(kind, digest, extension)
                        )
                except _REMOTE_ERRORS:
                    self.breaker.record_failure()
                    self.stats.remote_failures += 1
            return removed

    def clear(self) -> int:
        """Remove every artifact in the store; returns the number evicted."""
        evicted = 0
        for entry in self.entries():
            if self.evict(entry.kind, entry.digest):
                evicted += 1
        return evicted

    def entries(self) -> List[ArtifactEntry]:
        """Every stored artifact, oldest first (leases and sidecars excluded)."""
        found: List[ArtifactEntry] = []
        for kind in sorted(os.listdir(self.root)) if os.path.isdir(self.root) else []:
            kind_dir = os.path.join(self.root, kind)
            if kind.startswith(".") or not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if (
                        name.endswith(".meta.json")
                        or name.endswith(".lease.json")
                        or name.startswith(".tmp-")
                    ):
                        continue
                    digest, _ = os.path.splitext(name)
                    path = os.path.join(shard_dir, name)
                    try:
                        stat = os.stat(path)
                    except OSError:  # pragma: no cover - raced removal
                        continue
                    found.append(
                        ArtifactEntry(
                            kind=kind,
                            digest=digest,
                            path=path,
                            size_bytes=int(stat.st_size),
                            mtime=stat.st_mtime,
                        )
                    )
        found.sort(key=lambda entry: (entry.mtime, entry.kind, entry.digest))
        return found

    def size_bytes(self) -> int:
        """Total payload size of the store."""
        return sum(entry.size_bytes for entry in self.entries())

    def prune(self, max_bytes: int) -> List[ArtifactEntry]:
        """Evict oldest artifacts until the store fits ``max_bytes``.

        Returns the evicted entries (oldest first).  ``max_bytes=0`` empties
        the store.  Each candidate is re-stat'ed immediately before its
        unlink and skipped when touched since the scan (size or mtime
        moved), so LRU eviction can never delete an artifact a concurrent
        writer is replacing mid-write.
        """
        if max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        evicted: List[ArtifactEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            try:
                stat = os.stat(entry.path)
            except OSError:
                # already gone (raced eviction): its bytes no longer count
                total -= entry.size_bytes
                continue
            if stat.st_mtime != entry.mtime or int(stat.st_size) != entry.size_bytes:
                # touched since the scan — a concurrent writer refreshed it;
                # deleting now could tear their artifact, and it is no
                # longer the LRU candidate the scan believed it was
                continue
            if self.evict(entry.kind, entry.digest, remote=False):
                total -= entry.size_bytes
                evicted.append(entry)
        with self._lock:
            self._sweep_quarantine()
        return evicted

    # ---------------------------------------------------------------- verify
    def verify(self, repair: bool = True) -> List[VerifyFinding]:
        """Audit every artifact; quarantine the broken ones (when ``repair``).

        Detects entries that fail to parse (truncated/torn payloads) and
        entries whose bytes do not match the SHA-256 recorded in their meta
        sidecar (bit rot, partial overwrites).  Also sweeps leftover
        ``.tmp-*`` files from crashed writers and expired lease files.
        Returns the findings; an empty list means a clean store.
        """
        findings: List[VerifyFinding] = []
        with self._lock:
            for entry in self.entries():
                problem = self._check_entry(entry)
                if problem is None:
                    continue
                quarantined = False
                if repair:
                    quarantined = self._quarantine_entry(entry.kind, entry.digest)
                findings.append(
                    VerifyFinding(
                        kind=entry.kind,
                        digest=entry.digest,
                        path=entry.path,
                        problem=problem,
                        quarantined=quarantined,
                    )
                )
            if repair:
                self._sweep_debris()
        return findings

    def _check_entry(self, entry: ArtifactEntry) -> Optional[str]:
        meta, malformed = self._read_meta_raw(entry.kind, entry.digest)
        if malformed:
            return "malformed meta sidecar"
        expected = (meta or {}).get("payload_sha256")
        if expected is not None:
            try:
                actual = _sha256_file(entry.path)
            except OSError as exc:
                return f"unreadable: {exc}"
            if actual != expected:
                return f"payload hash mismatch (expected {expected[:12]}, got {actual[:12]})"
            return None
        # no recorded hash (artifact predates hashing): fall back to a parse
        try:
            if entry.path.endswith(".npz"):
                with np.load(entry.path) as archive:
                    for key in archive.files:
                        archive[key]
            else:
                with open(entry.path) as handle:
                    json.load(handle)
        except (OSError, ValueError, zipfile.BadZipFile, zlib.error) as exc:
            return f"unparseable: {type(exc).__name__}: {exc}"
        return None

    def _sweep_debris(self) -> None:
        """Remove crashed writers' temp files and expired lease files."""
        now = time.time()
        for dirpath, dirnames, filenames in os.walk(self.root):
            if QUARANTINE_DIR in dirpath.split(os.sep):
                continue
            for name in filenames:
                path = os.path.join(dirpath, name)
                try:
                    if name.startswith(".tmp-"):
                        # a live writer's temp file is seconds old; anything
                        # older is debris from a crash
                        if now - os.path.getmtime(path) > 60.0:
                            os.unlink(path)
                    elif name.endswith(".lease.json"):
                        with open(path) as handle:
                            doc = json.load(handle)
                        if _lease_expired(doc, now):
                            os.unlink(path)
                except (OSError, ValueError):  # pragma: no cover - raced
                    continue
        self._sweep_quarantine()

    def _sweep_quarantine(self) -> None:
        """Bound the quarantine area: drop files past their retention TTL.

        Quarantined artifacts exist for debugging, not forever —
        ``$REPRO_QUARANTINE_TTL`` (default 7 days) after quarantining they
        have either been looked at or never will be.  Swept files are
        counted in ``StoreStats.quarantine_swept``.
        """
        ttl = default_quarantine_ttl_s()
        now = time.time()
        quarantine_root = os.path.join(self.root, QUARANTINE_DIR)
        if not os.path.isdir(quarantine_root):
            return
        for dirpath, dirnames, filenames in os.walk(quarantine_root, topdown=False):
            for name in filenames:
                path = os.path.join(dirpath, name)
                try:
                    if now - os.path.getmtime(path) > ttl:
                        os.unlink(path)
                        self.stats.quarantine_swept += 1
                except OSError:  # pragma: no cover - raced removal
                    continue
            # prune now-empty kind directories so the area stays tidy
            try:
                if dirpath != quarantine_root and not os.listdir(dirpath):
                    os.rmdir(dirpath)
            except OSError:  # pragma: no cover - raced
                continue

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={self.root!r})"


class TrainingCheckpointer:
    """Epoch-granular training checkpoints in an :class:`ArtifactStore`.

    Checkpoints are keyed by *(model digest, epoch)* — the model digest is
    the :class:`~repro.experiments.spec.ModelSpec` content hash, so a
    checkpoint can only ever be resumed by the exact training run that
    wrote it.  :class:`repro.nn.trainer.Trainer` captures/restores the
    state arrays; this class only names, stores and finds them.
    """

    KIND = "checkpoint"

    def __init__(
        self,
        store: ArtifactStore,
        model_digest: str,
        every: int = 1,
        meta: Optional[dict] = None,
    ) -> None:
        if not isinstance(every, int) or isinstance(every, bool) or every < 1:
            raise ConfigurationError(
                f"checkpoint cadence must be a positive int, got {every!r}"
            )
        self.store = store
        self.model_digest = model_digest
        self.every = every
        self.meta = meta

    def digest(self, epoch: int) -> str:
        """The content digest of one epoch's checkpoint."""
        return hashlib.sha256(
            f"checkpoint\x00{self.model_digest}\x00{int(epoch)}".encode()
        ).hexdigest()

    def save(self, epoch: int, arrays: Dict[str, np.ndarray]) -> str:
        """Store one epoch's state; returns the payload path."""
        meta = {"model": self.model_digest, "epoch": int(epoch)}
        if self.meta:
            meta["spec"] = self.meta
        return self.store.put_arrays(self.KIND, self.digest(epoch), arrays, meta=meta)

    def load_latest(
        self, max_epoch: int
    ) -> Optional[Tuple[int, Dict[str, np.ndarray]]]:
        """The newest loadable checkpoint at or below ``max_epoch``.

        Probes newest-first; a corrupted checkpoint is quarantined by the
        store's read path and the probe falls back to the previous epoch —
        a damaged latest checkpoint costs one extra epoch of recompute, not
        the whole run.
        """
        for epoch in range(int(max_epoch), 0, -1):
            digest = self.digest(epoch)
            if not self.store.has(self.KIND, digest):
                continue
            try:
                arrays = self.store.get_arrays(self.KIND, digest)
            except MissingArtifactError:
                # degraded remote mid-probe: fall back to an older epoch
                continue
            if arrays is not None:
                return epoch, arrays
        return None

    def latest_epoch(self, max_epoch: int) -> Optional[int]:
        """The newest epoch with a checkpoint present (no payload read)."""
        for epoch in range(int(max_epoch), 0, -1):
            if self.store.has(self.KIND, self.digest(epoch)):
                return epoch
        return None

    def clear(self, max_epoch: int) -> int:
        """Evict every checkpoint up to ``max_epoch``; returns the count."""
        evicted = 0
        for epoch in range(1, int(max_epoch) + 1):
            if self.store.evict(self.KIND, self.digest(epoch)):
                evicted += 1
        return evicted
