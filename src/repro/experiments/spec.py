"""Declarative experiment specifications.

Every runnable unit of the reproduction — a figure panel, the Fig. 8
quantization study, a Table II transferability table — is described by a
frozen :class:`ExperimentSpec` tree:

``ModelSpec``
    Which architecture is trained on which synthetic dataset, with which
    training budget and seed.
``VictimSpec``
    Which multipliers become AxDNN victims, at what bit width, with which
    kernel strategy and calibration-batch size.
``AttackSpec``
    One attack-registry entry plus its construction parameters.
``SweepSpec``
    The perturbation budgets and the evaluated test-sample count.
``ExperimentSpec``
    The whole experiment: a model, a victim set, one or more attacks and a
    sweep, plus the experiment ``kind`` (``"panel"``, ``"quantization"`` or
    ``"transfer"``).

Specs are *data*: they serialise to canonical JSON (sorted keys, no
whitespace) and every node has a stable SHA-256 content hash.  The hash is
the key of the content-addressed artifact store
(:mod:`repro.experiments.store`) — two specs that hash equal are guaranteed
to describe the same computation, so their artifacts (trained weights,
adversarial suites, finished grids) are interchangeable.  Anything that does
*not* change results — worker counts, attack backends, progress callbacks —
is deliberately kept out of the spec and therefore out of the hash.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError, SpecValidationError
from repro.version import __version__

#: version of the spec wire format; bump when the JSON layout changes
SPEC_SCHEMA_VERSION = 1

#: architectures the model zoo can build
ARCHITECTURES = ("ffnn", "lenet5", "alexnet")

#: synthetic dataset families
DATASETS = ("mnist", "cifar10")

#: experiment kinds understood by :class:`repro.experiments.session.Session`
EXPERIMENT_KINDS = ("panel", "quantization", "transfer")

_DATASET_ALIASES = {
    "mnist": "mnist",
    "synthetic-mnist": "mnist",
    "cifar10": "cifar10",
    "cifar-10": "cifar10",
    "synthetic-cifar10": "cifar10",
}


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, minimal separators, no NaN."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def content_hash(payload: Any, kind: str) -> str:
    """Stable SHA-256 digest of a JSON payload, namespaced by node kind.

    The digest is salted with the package version: an artifact is only
    valid for the code that produced it, so releases that change numerical
    behaviour must bump ``repro.version.__version__`` to invalidate stale
    stores (CI additionally scopes its shared store to the source tree —
    see ``.github/workflows/ci.yml``).
    """
    body = canonical_json(
        {
            "kind": kind,
            "schema": SPEC_SCHEMA_VERSION,
            "code": __version__,
            "payload": payload,
        }
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def _require_positive_int(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise SpecValidationError(
            f"{name} must be a positive int, got {value!r}", path=name
        )


def _require_int(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecValidationError(f"{name} must be an int, got {value!r}", path=name)


def _reject_unknown_keys(cls, payload: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SpecValidationError(
            f"unknown {cls.__name__} field(s) {unknown}; known fields: {sorted(known)}",
            path=unknown[0],
        )


@contextmanager
def _spec_scope(prefix: str):
    """Re-anchor validation failures inside a nested spec under ``prefix``.

    Any :class:`SpecValidationError` escaping the block gets ``prefix``
    prepended to its field path; a plain :class:`ConfigurationError` is
    upgraded to a :class:`SpecValidationError` anchored *at* ``prefix`` —
    so every failure surfacing from :meth:`ExperimentSpec.from_dict` names
    the exact offending field (``"model.n_train"``, ``"attacks[1].attack"``).
    """
    try:
        yield
    except SpecValidationError as exc:
        raise exc.at(prefix) from None
    except ConfigurationError as exc:
        raise SpecValidationError(str(exc), path=prefix) from exc


class _SpecNode:
    """Shared canonical-JSON / content-hash behaviour of every spec node."""

    _hash_kind = "spec"

    def to_dict(self) -> dict:
        raise NotImplementedError

    def canonical_json(self) -> str:
        """The node as canonical JSON text."""
        return canonical_json(self.to_dict())

    def content_hash(self) -> str:
        """Stable SHA-256 content hash of this node."""
        return content_hash(self.to_dict(), self._hash_kind)


@dataclass(frozen=True)
class ModelSpec(_SpecNode):
    """A trained accurate source model: architecture, dataset and budget."""

    architecture: str = "lenet5"
    dataset: str = "mnist"
    n_train: int = 1500
    n_test: int = 300
    epochs: int = 4
    learning_rate: float = 1e-3
    batch_size: int = 32
    seed: int = 0

    _hash_kind = "model"

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise SpecValidationError(
                f"unknown architecture {self.architecture!r}; "
                f"known: {list(ARCHITECTURES)}",
                path="architecture",
            )
        normalized = _DATASET_ALIASES.get(str(self.dataset).lower())
        if normalized is None:
            raise SpecValidationError(
                f"unknown dataset {self.dataset!r}; known: {list(DATASETS)}",
                path="dataset",
            )
        object.__setattr__(self, "dataset", normalized)
        _require_positive_int("n_train", self.n_train)
        _require_positive_int("n_test", self.n_test)
        _require_positive_int("epochs", self.epochs)
        _require_positive_int("batch_size", self.batch_size)
        _require_int("seed", self.seed)
        if not isinstance(self.learning_rate, (int, float)) or self.learning_rate <= 0:
            raise SpecValidationError(
                f"learning_rate must be positive, got {self.learning_rate!r}",
                path="learning_rate",
            )
        object.__setattr__(self, "learning_rate", float(self.learning_rate))

    def to_dict(self) -> dict:
        return {
            "architecture": self.architecture,
            "dataset": self.dataset,
            "n_train": self.n_train,
            "n_test": self.n_test,
            "epochs": self.epochs,
            "learning_rate": self.learning_rate,
            "batch_size": self.batch_size,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelSpec":
        _reject_unknown_keys(cls, payload)
        return cls(**payload)


@dataclass(frozen=True)
class VictimSpec(_SpecNode):
    """The AxDNN victim set built from the source model."""

    multipliers: Tuple[str, ...] = ("M1",)
    bits: int = 8
    convolution_only: bool = False
    kernel: str = "auto"
    calibration_samples: int = 128

    _hash_kind = "victims"

    def __post_init__(self) -> None:
        # the library import is deferred to avoid a module-import cycle
        from repro.errors import UnknownComponentError
        from repro.multipliers.library import resolve_name

        multipliers = tuple(str(label) for label in self.multipliers)
        if not multipliers:
            raise SpecValidationError(
                "victims require at least one multiplier label", path="multipliers"
            )
        for index, label in enumerate(multipliers):
            try:
                resolve_name(label)
            except UnknownComponentError as exc:
                raise SpecValidationError(
                    f"unknown multiplier label {label!r}: {exc}",
                    path=f"multipliers[{index}]",
                ) from exc
        object.__setattr__(self, "multipliers", multipliers)
        _require_positive_int("bits", self.bits)
        _require_positive_int("calibration_samples", self.calibration_samples)
        if not isinstance(self.convolution_only, bool):
            raise SpecValidationError(
                f"convolution_only must be a bool, got {self.convolution_only!r}",
                path="convolution_only",
            )
        if not isinstance(self.kernel, str) or not self.kernel:
            raise SpecValidationError(
                f"kernel must be a non-empty str, got {self.kernel!r}", path="kernel"
            )

    def to_dict(self) -> dict:
        return {
            "multipliers": list(self.multipliers),
            "bits": self.bits,
            "convolution_only": self.convolution_only,
            "kernel": self.kernel,
            "calibration_samples": self.calibration_samples,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VictimSpec":
        _reject_unknown_keys(cls, payload)
        payload = dict(payload)
        if "multipliers" in payload:
            payload["multipliers"] = tuple(payload["multipliers"])
        return cls(**payload)


@dataclass(frozen=True)
class AttackSpec(_SpecNode):
    """One attack-registry entry plus its construction parameters."""

    attack: str = "FGM_linf"
    params: Tuple[Tuple[str, Any], ...] = ()

    _hash_kind = "attack"

    def __post_init__(self) -> None:
        # the registry import is deferred to avoid a module-import cycle
        from repro.attacks import available_attacks

        if self.attack not in available_attacks():
            raise SpecValidationError(
                f"unknown attack {self.attack!r}; known: {available_attacks()}",
                path="attack",
            )
        try:
            params = tuple(sorted((str(k), v) for k, v in dict(self.params).items()))
        except (TypeError, ValueError):
            raise SpecValidationError(
                f"attack params must be a mapping or key/value pairs, got "
                f"{self.params!r}",
                path="params",
            ) from None
        object.__setattr__(self, "params", params)

    @classmethod
    def create(cls, attack: str, **params: Any) -> "AttackSpec":
        """Build an :class:`AttackSpec` from keyword parameters."""
        return cls(attack=attack, params=tuple(sorted(params.items())))

    def build(self):
        """Instantiate the attack from the registry."""
        from repro.attacks import get_attack

        return get_attack(self.attack, **dict(self.params))

    def to_dict(self) -> dict:
        return {"attack": self.attack, "params": {k: v for k, v in self.params}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttackSpec":
        _reject_unknown_keys(cls, payload)
        return cls.create(payload.get("attack", "FGM_linf"), **payload.get("params", {}))


@dataclass(frozen=True)
class SweepSpec(_SpecNode):
    """The perturbation budgets and the evaluated sample count."""

    epsilons: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1.0, 1.5, 2.0)
    n_samples: int = 60

    _hash_kind = "sweep"

    def __post_init__(self) -> None:
        try:
            epsilons = tuple(float(eps) for eps in self.epsilons)
        except (TypeError, ValueError):
            raise SpecValidationError(
                f"epsilons must be a sequence of numbers, got {self.epsilons!r}",
                path="epsilons",
            ) from None
        if not epsilons:
            raise SpecValidationError(
                "sweep requires at least one epsilon", path="epsilons"
            )
        if any(eps < 0 for eps in epsilons):
            raise SpecValidationError(
                f"epsilons must be >= 0, got {list(epsilons)}", path="epsilons"
            )
        if len(set(epsilons)) != len(epsilons):
            raise SpecValidationError(
                f"epsilons contain duplicates: {list(epsilons)}", path="epsilons"
            )
        object.__setattr__(self, "epsilons", epsilons)
        _require_positive_int("n_samples", self.n_samples)

    def to_dict(self) -> dict:
        return {"epsilons": list(self.epsilons), "n_samples": self.n_samples}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        _reject_unknown_keys(cls, payload)
        payload = dict(payload)
        if "epsilons" in payload:
            payload["epsilons"] = tuple(payload["epsilons"])
        return cls(**payload)


@dataclass(frozen=True)
class ExperimentSpec(_SpecNode):
    """A whole experiment: model, victims, attacks and sweep.

    ``kind`` selects how the :class:`repro.experiments.session.Session`
    interprets the spec:

    ``"panel"``
        One :class:`repro.robustness.RobustnessGrid` per attack — the
        Fig. 1 and Fig. 4-7 shape.
    ``"quantization"``
        The Fig. 8 float-vs-quantized study over every attack; the victim
        set is ignored except for ``bits`` and ``calibration_samples``.
    ``"transfer"``
        A Table II transferability table.  ``transfer_sources`` lists the
        additional source architectures (trained on the same dataset), the
        first victim multiplier is applied to every source, and the sweep
        must hold exactly one non-zero budget.
    """

    name: str = "experiment"
    model: ModelSpec = field(default_factory=ModelSpec)
    victims: VictimSpec = field(default_factory=VictimSpec)
    attacks: Tuple[AttackSpec, ...] = (AttackSpec(),)
    sweep: SweepSpec = field(default_factory=SweepSpec)
    kind: str = "panel"
    transfer_sources: Tuple[ModelSpec, ...] = ()
    seed: int = 0

    _hash_kind = "experiment"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise SpecValidationError(
                "experiment name must be a non-empty string", path="name"
            )
        if self.kind not in EXPERIMENT_KINDS:
            raise SpecValidationError(
                f"unknown experiment kind {self.kind!r}; known: {list(EXPERIMENT_KINDS)}",
                path="kind",
            )
        attacks = tuple(self.attacks)
        if not attacks:
            raise SpecValidationError(
                "experiment requires at least one attack", path="attacks"
            )
        if not all(isinstance(attack, AttackSpec) for attack in attacks):
            raise SpecValidationError(
                "attacks must be AttackSpec instances", path="attacks"
            )
        object.__setattr__(self, "attacks", attacks)
        sources = tuple(self.transfer_sources)
        object.__setattr__(self, "transfer_sources", sources)
        _require_int("seed", self.seed)
        if self.kind == "transfer":
            if len(attacks) != 1:
                raise SpecValidationError(
                    "transfer experiments take exactly one attack, got "
                    f"{len(attacks)}",
                    path="attacks",
                )
            if len(self.sweep.epsilons) != 1:
                raise SpecValidationError(
                    "transfer experiments take exactly one epsilon, got "
                    f"{list(self.sweep.epsilons)}",
                    path="sweep.epsilons",
                )
            for index, source in enumerate(sources):
                if not isinstance(source, ModelSpec):
                    raise SpecValidationError(
                        "transfer_sources must be ModelSpec instances",
                        path=f"transfer_sources[{index}]",
                    )
                if source.dataset != self.model.dataset:
                    raise SpecValidationError(
                        "every transfer source must share the primary model's "
                        f"dataset ({self.model.dataset!r}), got {source.dataset!r}",
                        path=f"transfer_sources[{index}].dataset",
                    )
                if source.n_test != self.model.n_test or source.seed != self.model.seed:
                    raise SpecValidationError(
                        "transfer sources must share the primary model's "
                        "n_test and seed so every source crafts on the same "
                        "test split",
                        path=f"transfer_sources[{index}]",
                    )
        elif sources:
            raise SpecValidationError(
                "transfer_sources are only valid for kind='transfer'",
                path="transfer_sources",
            )

    # ----------------------------------------------------------------- hash
    def content_hash(self) -> str:
        """Content hash of the *computation* the spec describes.

        ``name`` is presentation metadata — two specs that differ only in
        name describe the same computation and share artifacts, so the name
        is excluded from the hash.
        """
        payload = self.to_dict()
        payload.pop("name")
        return content_hash(payload, self._hash_kind)

    # --------------------------------------------------------- derived specs
    def with_seed(self, seed: int) -> "ExperimentSpec":
        """A copy of the spec with a different experiment seed."""
        return replace(self, seed=seed)

    def source_models(self) -> Tuple[ModelSpec, ...]:
        """Every source model the experiment trains (primary first)."""
        return (self.model,) + self.transfer_sources

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "model": self.model.to_dict(),
            "victims": self.victims.to_dict(),
            "attacks": [attack.to_dict() for attack in self.attacks],
            "sweep": self.sweep.to_dict(),
            "transfer_sources": [source.to_dict() for source in self.transfer_sources],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        _reject_unknown_keys(cls, payload)
        payload = dict(payload)
        kwargs: Dict[str, Any] = {
            key: payload[key] for key in ("name", "kind", "seed") if key in payload
        }
        if "model" in payload:
            with _spec_scope("model"):
                kwargs["model"] = ModelSpec.from_dict(payload["model"])
        if "victims" in payload:
            with _spec_scope("victims"):
                kwargs["victims"] = VictimSpec.from_dict(payload["victims"])
        if "attacks" in payload:
            attacks = []
            for index, attack in enumerate(payload["attacks"]):
                with _spec_scope(f"attacks[{index}]"):
                    attacks.append(AttackSpec.from_dict(attack))
            kwargs["attacks"] = tuple(attacks)
        if "sweep" in payload:
            with _spec_scope("sweep"):
                kwargs["sweep"] = SweepSpec.from_dict(payload["sweep"])
        if "transfer_sources" in payload:
            transfer_sources = []
            for index, source in enumerate(payload["transfer_sources"]):
                with _spec_scope(f"transfer_sources[{index}]"):
                    transfer_sources.append(ModelSpec.from_dict(source))
            kwargs["transfer_sources"] = tuple(transfer_sources)
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The spec as a versioned JSON document."""
        return json.dumps(
            {"spec_version": SPEC_SCHEMA_VERSION, "experiment": self.to_dict()},
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a document produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(
                f"spec document is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, Mapping):
            raise SpecValidationError(
                f"spec document must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("spec_version")
        if version != SPEC_SCHEMA_VERSION:
            raise SpecValidationError(
                f"unsupported spec_version {version!r}; this build reads version "
                f"{SPEC_SCHEMA_VERSION}",
                path="spec_version",
            )
        if "experiment" not in payload:
            raise SpecValidationError(
                "spec document is missing the 'experiment' object", path="experiment"
            )
        return cls.from_dict(payload["experiment"])

    def save(self, path: str) -> None:
        """Write the spec as JSON (creating parent directories)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        """Load a spec saved by :meth:`save`."""
        if not os.path.exists(path):
            raise ConfigurationError(f"spec file {path!r} does not exist")
        with open(path) as handle:
            return cls.from_json(handle.read())


def panel_spec(
    name: str,
    attacks: Sequence[str],
    multipliers: Sequence[str],
    model: ModelSpec = None,
    epsilons: Sequence[float] = None,
    n_samples: int = 60,
    seed: int = 0,
    **victim_kwargs: Any,
) -> ExperimentSpec:
    """Convenience constructor for the common robustness-panel shape."""
    sweep_kwargs: Dict[str, Any] = {"n_samples": n_samples}
    if epsilons is not None:
        sweep_kwargs["epsilons"] = tuple(epsilons)
    return ExperimentSpec(
        name=name,
        model=model if model is not None else ModelSpec(),
        victims=VictimSpec(multipliers=tuple(multipliers), **victim_kwargs),
        attacks=tuple(AttackSpec(attack=key) for key in attacks),
        sweep=SweepSpec(**sweep_kwargs),
        kind="panel",
        seed=seed,
    )
