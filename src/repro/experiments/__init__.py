"""Declarative experiment API: specs, the artifact store and the session.

This package is the public entry point for running anything in the repo::

    from repro.experiments import ExperimentSpec, ModelSpec, Session

    spec = ExperimentSpec(
        name="fig4a",
        model=ModelSpec(architecture="lenet5", dataset="mnist"),
        victims=VictimSpec(multipliers=tuple(f"M{i}" for i in range(1, 10))),
        attacks=(AttackSpec(attack="BIM_linf"),),
    )
    result = Session().run(spec, workers="auto")
    print(result.grids[0].values)

Specs are frozen, hashable-by-content dataclasses
(:mod:`repro.experiments.spec`); artifacts are cached in a
content-addressed store (:mod:`repro.experiments.store`); the
:class:`~repro.experiments.session.Session` resolves the spec DAG and
reuses every cached artifact (:mod:`repro.experiments.session`).
"""

from repro.errors import SpecValidationError
from repro.experiments.backends import (
    STORE_URL_ENV_VAR,
    Blob,
    CircuitBreaker,
    InMemoryBackend,
    LocalDirBackend,
    ResilientBackend,
    SimulatedRemoteBackend,
    StoreBackend,
    WriteJournal,
    backend_from_url,
    reset_memory_backends,
    shared_memory_backend,
)
from repro.experiments.spec import (
    ARCHITECTURES,
    DATASETS,
    EXPERIMENT_KINDS,
    SPEC_SCHEMA_VERSION,
    AttackSpec,
    ExperimentSpec,
    ModelSpec,
    SweepSpec,
    VictimSpec,
    canonical_json,
    content_hash,
    panel_spec,
)
from repro.experiments.store import (
    LEASE_TTL_ENV_VAR,
    QUARANTINE_TTL_ENV_VAR,
    STORE_ENV_VAR,
    ArtifactEntry,
    ArtifactStore,
    Lease,
    StoreStats,
    TrainingCheckpointer,
    VerifyFinding,
    atomic_write_bytes,
    atomic_write_json,
    default_store_root,
)
from repro.experiments.session import (
    CHECKPOINT_EVERY_ENV_VAR,
    PREFETCH_ENV_VAR,
    REQUIRE_CACHED_ENV_VAR,
    ExperimentResult,
    ProgressEvent,
    Session,
)

__all__ = [
    "ExperimentSpec",
    "ModelSpec",
    "VictimSpec",
    "AttackSpec",
    "SweepSpec",
    "panel_spec",
    "canonical_json",
    "content_hash",
    "ARCHITECTURES",
    "DATASETS",
    "EXPERIMENT_KINDS",
    "SPEC_SCHEMA_VERSION",
    "SpecValidationError",
    "ArtifactStore",
    "ArtifactEntry",
    "StoreStats",
    "Lease",
    "TrainingCheckpointer",
    "VerifyFinding",
    "atomic_write_bytes",
    "atomic_write_json",
    "default_store_root",
    "STORE_ENV_VAR",
    "LEASE_TTL_ENV_VAR",
    "QUARANTINE_TTL_ENV_VAR",
    "Session",
    "ExperimentResult",
    "ProgressEvent",
    "REQUIRE_CACHED_ENV_VAR",
    "CHECKPOINT_EVERY_ENV_VAR",
    "PREFETCH_ENV_VAR",
    "StoreBackend",
    "Blob",
    "LocalDirBackend",
    "InMemoryBackend",
    "SimulatedRemoteBackend",
    "ResilientBackend",
    "CircuitBreaker",
    "WriteJournal",
    "backend_from_url",
    "shared_memory_backend",
    "reset_memory_backends",
    "STORE_URL_ENV_VAR",
]
