"""The :class:`Session` facade: run declarative experiments with caching.

``Session.run(spec)`` resolves the spec's dependency DAG

    dataset -> trained model -> victims
                    \\-> adversarial suite -> result

reusing every expensive artifact the content-addressed store already holds:
trained weights are keyed by the :class:`~repro.experiments.spec.ModelSpec`
hash, crafted adversarial suites by the (model, attack, sweep, seed) hash,
and finished results by the full :class:`~repro.experiments.spec.
ExperimentSpec` hash.  Re-running a figure with an unchanged spec therefore
performs zero training and zero adversarial crafting; changing one attack
re-crafts only that attack's suite while the model weights and the other
suites stay cached.

Everything that does not change results — worker counts, the attack
backend, progress callbacks — lives on the session, not the spec, so it
never perturbs a cache key.  Setting ``REPRO_REQUIRE_CACHED=1`` (or
``require_cached=True``) turns any would-be training or crafting step into
a :class:`~repro.errors.MissingArtifactError`, which is how CI asserts that
a second run is served entirely from the store.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.axnn.engine import AxModel, build_axdnn, build_quantized_accurate
from repro.datasets import Dataset, load_synthetic_cifar10, load_synthetic_mnist
from repro.errors import ConfigurationError, MissingArtifactError
from repro.experiments.spec import (
    AttackSpec,
    ExperimentSpec,
    ModelSpec,
    SweepSpec,
    VictimSpec,
    content_hash,
)
from repro.experiments.store import ArtifactStore, Lease, TrainingCheckpointer
from repro.models.architectures import build_architecture
from repro.models.zoo import TrainedModel
from repro.nn import Adam, Trainer
from repro.nn.model import Sequential
from repro.nn.runtime import WorkerSpec, call_with_workers
from repro.resilience import Deadline
from repro.robustness.evaluator import AdversarialSuite
from repro.robustness.quantization_analysis import (
    QuantizationComparison,
    QuantizationStudy,
)
from repro.robustness.report import ExperimentRecord
from repro.robustness.sweep import RobustnessGrid, grid_from_suite
from repro.robustness.transferability import (
    TransferabilityCell,
    TransferabilityTable,
)

#: environment variable that forbids training/crafting (cache-only mode)
REQUIRE_CACHED_ENV_VAR = "REPRO_REQUIRE_CACHED"

#: environment variable setting the default checkpoint cadence (epochs)
CHECKPOINT_EVERY_ENV_VAR = "REPRO_CHECKPOINT_EVERY"

#: environment variable toggling speculative prefetch ("0"/"false" disables;
#: default: enabled whenever the store has a remote backend)
PREFETCH_ENV_VAR = "REPRO_PREFETCH"

#: version tag written into stored result payloads
RESULT_VERSION = 1

#: paper names of sources and AxDNN victims per architecture
ARCH_SOURCE_NAMES = {"ffnn": "AccFF", "lenet5": "AccL5", "alexnet": "AccAlx"}
ARCH_VICTIM_NAMES = {"ffnn": "AxFF", "lenet5": "AxL5", "alexnet": "AxAlx"}

#: sentinel npz key carrying the trained model's test accuracy
_ACCURACY_KEY = "_meta_test_accuracy"

logger = logging.getLogger("repro.experiments.session")

ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification emitted during :meth:`Session.run`.

    ``stage`` is one of ``"model"``, ``"train"`` (one event per training
    epoch, carrying loss/accuracy in ``detail``), ``"suite"``,
    ``"victims"``, ``"evaluate"``, ``"result"`` or ``"prefetch"``
    (speculative remote→local warming); ``status`` is ``"hit"`` (served
    from the store), ``"compute"`` (paid for), ``"store"`` (written
    back), ``"resume"`` (training restarted from a checkpoint), ``"wait"``
    (blocked on another writer's training lease) or ``"degraded"`` (a
    read missed the local cache while the remote backend's circuit
    breaker was open — the stage recomputes instead).

    ``seq`` is a per-session monotonic sequence number (1-based, gap-free
    across all stages, assigned under a lock so concurrent runs on one
    session never share a number) and ``timestamp`` the wall-clock emit
    time — together they let a streaming consumer (the robustness service's
    SSE feed) order, resume and age events without trusting arrival order.
    """

    stage: str
    status: str
    detail: str
    seq: int = 0
    timestamp: float = 0.0

    def to_dict(self) -> dict:
        """The event as a JSON-friendly payload (for event streams)."""
        return {
            "stage": self.stage,
            "status": self.status,
            "detail": self.detail,
            "seq": self.seq,
            "timestamp": self.timestamp,
        }


@dataclass
class ExperimentResult:
    """Typed result of one :meth:`Session.run` call."""

    spec: ExperimentSpec
    grids: List[RobustnessGrid] = field(default_factory=list)
    study: Optional[QuantizationStudy] = None
    table: Optional[TransferabilityTable] = None
    source_accuracies: Dict[str, float] = field(default_factory=dict)
    from_cache: bool = False
    elapsed_s: float = 0.0

    def grid(self, attack_key: str) -> RobustnessGrid:
        """Look up the grid of one attack (panel results)."""
        for grid in self.grids:
            if grid.attack_key == attack_key:
                return grid
        raise ConfigurationError(
            f"result holds no grid for attack {attack_key!r}; "
            f"available: {[grid.attack_key for grid in self.grids]}"
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (the stored result payload)."""
        return {
            "result_version": RESULT_VERSION,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "spec_hash": self.spec.content_hash(),
            "grids": [grid.to_dict() for grid in self.grids],
            "study": self.study.to_dict() if self.study is not None else None,
            "table": self.table.to_dict() if self.table is not None else None,
            "source_accuracies": dict(self.source_accuracies),
        }

    @classmethod
    def from_dict(cls, payload: dict, spec: ExperimentSpec) -> "ExperimentResult":
        """Rebuild a result stored by :meth:`to_dict`."""
        version = payload.get("result_version")
        if version != RESULT_VERSION:
            raise ConfigurationError(
                f"unsupported result_version {version!r}; this build reads "
                f"version {RESULT_VERSION}"
            )
        study = None
        if payload.get("study") is not None:
            study = QuantizationStudy()
            for comparison in payload["study"].values():
                study.add(
                    QuantizationComparison(
                        attack_key=comparison["attack"],
                        epsilons=[float(eps) for eps in comparison["epsilons"]],
                        float_robustness=[float(v) for v in comparison["float"]],
                        quantized_robustness=[float(v) for v in comparison["quantized"]],
                    )
                )
        table = None
        if payload.get("table") is not None:
            table_payload = payload["table"]
            table = TransferabilityTable(
                attack_key=table_payload["attack"],
                epsilon=float(table_payload["epsilon"]),
                cells=[
                    TransferabilityCell(
                        source=cell["source"],
                        victim=cell["victim"],
                        dataset=cell["dataset"],
                        accuracy_before=float(cell["before"]),
                        accuracy_after=float(cell["after"]),
                    )
                    for cell in table_payload["cells"]
                ],
            )
        return cls(
            spec=spec,
            grids=[RobustnessGrid.from_dict(grid) for grid in payload.get("grids", [])],
            study=study,
            table=table,
            source_accuracies={
                key: float(value)
                for key, value in payload.get("source_accuracies", {}).items()
            },
        )

    def to_record(self, description: str = "") -> ExperimentRecord:
        """The result as a :class:`repro.robustness.report.ExperimentRecord`."""
        record = ExperimentRecord(
            experiment_id=self.spec.name,
            description=description or f"{self.spec.kind} experiment {self.spec.name}",
            grids=list(self.grids),
        )
        record.extra["spec"] = self.spec.to_dict()
        record.extra["source_accuracies"] = dict(self.source_accuracies)
        if self.study is not None:
            record.extra["quantization_study"] = self.study.to_dict()
        if self.table is not None:
            record.extra["transferability"] = self.table.to_dict()
        return record


def _source_name(model_spec: ModelSpec) -> str:
    """Paper name of a source model (AccL5 / AccAlx / AccFF)."""
    return ARCH_SOURCE_NAMES.get(
        model_spec.architecture, f"Acc_{model_spec.architecture}"
    )


def _escape(key: str) -> str:
    # '/' -> '__' is only reversible when the raw key holds no '__'; a
    # user-named layer like "fc__out" would round-trip to "fc/out/weight",
    # fail load_state_dict on every cache read and silently retrain every
    # run — refuse loudly instead.  (Auto-named layers are positional
    # ("dense_3") and never contain '__'.)
    if "__" in key:
        raise ConfigurationError(
            f"parameter key {key!r} contains '__', which collides with the "
            f"artifact store's '/'-escape; rename the layer without double "
            f"underscores"
        )
    return key.replace("/", "__")


def _unescape(key: str) -> str:
    return key.replace("__", "/")


class Session:
    """Facade for running :class:`ExperimentSpec` pipelines with caching.

    Parameters
    ----------
    store:
        An :class:`ArtifactStore`, a root directory path, or ``None`` for
        the default root (``$REPRO_ARTIFACT_DIR`` or ``~/.cache/repro``).
    workers:
        Default worker spec for attack generation (processes) and victim
        evaluation (threads); overridable per :meth:`run` call.  Results
        are invariant to it.
    progress:
        Optional callback receiving :class:`ProgressEvent` notifications.
    require_cached:
        When true, any step that would train or craft raises
        :class:`MissingArtifactError` instead.  Defaults to the
        ``REPRO_REQUIRE_CACHED`` environment variable.
    checkpoint_every:
        Epoch cadence for training checkpoints written into the store
        (``None`` disables checkpointing).  Defaults to the
        ``REPRO_CHECKPOINT_EVERY`` environment variable.  When set, an
        interrupted :meth:`resolve_model` resumes from the latest valid
        checkpoint with byte-identical final weights.
    lease_training:
        Claim a single-writer lease before training (default true).  When
        another live writer holds the claim, this session polls the store
        for the winner's artifact instead of duplicating the training run.
    lease_timeout_s / lease_poll_s:
        How long to wait on another writer before training anyway, and the
        poll interval while waiting.
    store_url:
        Remote backend URL (``file://``, ``mem://``, ``sim://``) attached
        to the store when ``store`` is a root path or ``None``; defaults
        to ``$REPRO_STORE_URL``.  Ignored when ``store`` is already an
        :class:`ArtifactStore`.
    prefetch:
        Speculatively warm the artifacts the spec DAG needs next (model
        weights, adversarial suites) remote→local on a background thread
        while the current stage computes.  Defaults to the
        ``REPRO_PREFETCH`` environment variable, else to "on whenever the
        store has a remote backend".  Results are invariant to it.
    """

    def __init__(
        self,
        store=None,
        workers: WorkerSpec = None,
        progress: Optional[ProgressCallback] = None,
        require_cached: Optional[bool] = None,
        checkpoint_every: Optional[int] = None,
        lease_training: bool = True,
        lease_timeout_s: float = 600.0,
        lease_poll_s: float = 0.5,
        store_url: Optional[str] = None,
        prefetch: Optional[bool] = None,
    ) -> None:
        if isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store, store_url=store_url)
        if prefetch is None:
            raw = os.environ.get(PREFETCH_ENV_VAR, "").strip().lower()
            if raw in ("0", "false", "no"):
                prefetch = False
            elif raw:
                prefetch = True
            else:
                prefetch = self.store.remote is not None
        self.prefetch = bool(prefetch)
        self._prefetch_threads: List[threading.Thread] = []
        self.workers = workers
        self.progress = progress
        if require_cached is None:
            require_cached = os.environ.get(
                REQUIRE_CACHED_ENV_VAR, ""
            ).strip().lower() not in ("", "0", "false", "no")
        self.require_cached = bool(require_cached)
        if checkpoint_every is None:
            raw = os.environ.get(CHECKPOINT_EVERY_ENV_VAR, "").strip()
            if raw:
                try:
                    checkpoint_every = int(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"{CHECKPOINT_EVERY_ENV_VAR} must be an integer epoch "
                        f"cadence, got {raw!r}"
                    ) from None
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be a positive int, got {checkpoint_every!r}"
            )
        self.checkpoint_every = checkpoint_every
        self.lease_training = bool(lease_training)
        if lease_timeout_s < 0 or lease_poll_s <= 0:
            raise ConfigurationError(
                "lease_timeout_s must be >= 0 and lease_poll_s > 0, got "
                f"{lease_timeout_s!r} / {lease_poll_s!r}"
            )
        self.lease_timeout_s = float(lease_timeout_s)
        self.lease_poll_s = float(lease_poll_s)
        self._progress_lock = threading.Lock()
        self._progress_seq = 0

    # -------------------------------------------------------------- plumbing
    def _emit(self, stage: str, status: str, detail: str) -> None:
        if self.progress is None:
            return
        with self._progress_lock:
            self._progress_seq += 1
            seq = self._progress_seq
        event = ProgressEvent(
            stage=stage, status=status, detail=detail, seq=seq, timestamp=time.time()
        )
        try:
            self.progress(event)
        except Exception:
            # a broken subscriber must never kill the run it is watching —
            # progress is observability, not control flow
            logger.warning(
                "progress callback raised on %s:%s (%s); event dropped",
                stage,
                status,
                detail,
                exc_info=True,
            )

    def _cached_arrays(self, kind: str, digest: str) -> Optional[Dict[str, np.ndarray]]:
        """``store.get_arrays`` that treats a degraded-backend miss as a miss.

        When the store's remote backend is degraded (circuit open) a local
        miss raises :class:`MissingArtifactError` with ``backend_degraded``
        set.  A session can always recompute the artifact bit-identically
        from the spec, so outside cache-only mode the degradation is
        reported as progress and the miss falls through to the compute
        path; under ``require_cached`` the error propagates, because there
        recomputing is exactly what the caller forbade.
        """
        try:
            return self.store.get_arrays(kind, digest)
        except MissingArtifactError as exc:
            if not getattr(exc, "backend_degraded", False) or self.require_cached:
                raise
            self._emit(kind, "degraded", f"{digest[:12]} recomputing locally")
            return None

    def _cached_json(self, kind: str, digest: str) -> Optional[dict]:
        """``store.get_json`` with the same degraded-miss policy as above."""
        try:
            return self.store.get_json(kind, digest)
        except MissingArtifactError as exc:
            if not getattr(exc, "backend_degraded", False) or self.require_cached:
                raise
            self._emit(kind, "degraded", f"{digest[:12]} recomputing locally")
            return None

    # ------------------------------------------------------------- prefetch
    def _prefetch(self, keys: Sequence[Tuple[str, str]]) -> None:
        """Warm ``(kind, digest)`` artifacts remote→local in the background.

        Fire-and-forget: runs on a daemon thread, never raises into the run,
        and is a no-op when prefetch is disabled or the store has no remote
        backend.  Purely a latency optimisation — results are bit-identical
        with or without it.
        """
        if not self.prefetch or self.store.remote is None or not keys:
            return
        batch = list(keys)
        self._emit("prefetch", "compute", f"warming {len(batch)} artifacts")

        def _warm() -> None:
            for kind, digest in batch:
                self.store.warm(kind, digest)

        thread = threading.Thread(
            target=_warm, name="repro-prefetch", daemon=True
        )
        thread.start()
        self._prefetch_threads.append(thread)

    def wait_for_prefetch(self, timeout_s: Optional[float] = None) -> None:
        """Block until outstanding prefetch threads finish (tests/shutdown)."""
        threads, self._prefetch_threads = self._prefetch_threads, []
        for thread in threads:
            thread.join(timeout=timeout_s)

    def _forbid_compute(
        self,
        what: str,
        detail: str,
        kind: Optional[str] = None,
        digest: Optional[str] = None,
        max_epoch: Optional[int] = None,
    ) -> None:
        if not self.require_cached:
            return
        path = None
        checkpoint_epoch = None
        clauses = [
            f"cache-only session would have to {what} ({detail}); "
            f"unset {REQUIRE_CACHED_ENV_VAR} or warm the store first"
        ]
        if kind is not None and digest is not None:
            path = self.store._path(kind, digest, ".npz")
            clauses.append(f"spec hash {digest}")
            clauses.append(f"probed {path}")
            if max_epoch is not None:
                checkpoint_epoch = TrainingCheckpointer(
                    self.store, digest
                ).latest_epoch(max_epoch)
                if checkpoint_epoch is not None:
                    clauses.append(
                        f"nearest checkpoint: epoch {checkpoint_epoch}/{max_epoch}"
                    )
                else:
                    clauses.append("no checkpoints found")
        raise MissingArtifactError(
            "; ".join(clauses),
            kind=kind,
            digest=digest,
            path=path,
            checkpoint_epoch=checkpoint_epoch,
        )

    # -------------------------------------------------------------- datasets
    def resolve_dataset(self, model_spec: ModelSpec) -> Dataset:
        """Deterministically synthesise the dataset of a model spec.

        Synthesis is cheap and fully determined by ``(dataset, n_train,
        n_test, seed)``, so datasets are regenerated rather than stored.
        """
        if model_spec.dataset == "mnist":
            return load_synthetic_mnist(
                n_train=model_spec.n_train,
                n_test=model_spec.n_test,
                seed=model_spec.seed,
            )
        return load_synthetic_cifar10(
            n_train=model_spec.n_train,
            n_test=model_spec.n_test,
            seed=model_spec.seed,
        )

    # ---------------------------------------------------------------- models
    def resolve_model(
        self,
        model_spec: ModelSpec,
        use_cache: bool = True,
        workers: WorkerSpec = None,
    ) -> TrainedModel:
        """Load the trained model from the store, or train and store it.

        The spec seed drives dataset synthesis, parameter initialisation and
        the trainer's shuffling, so one spec hash always maps to one set of
        weights.  ``workers`` shards the training-time validation and test
        evaluation passes; trained weights (and hence the stored artifact)
        are bit-identical for every value.
        """
        dataset = self.resolve_dataset(model_spec)
        model = build_architecture(
            model_spec.architecture,
            input_shape=dataset.image_shape,
            seed=model_spec.seed,
        )
        if use_cache:
            # fail on unstorable parameter keys *before* paying for training
            for layer in model.layers:
                for pname in layer.params:
                    _escape(f"{layer.name}/{pname}")
        digest = model_spec.content_hash()
        if use_cache:
            trained = self._load_cached_model(model_spec, model, dataset, digest)
            if trained is not None:
                return trained
        self._forbid_compute(
            "train",
            f"{model_spec.architecture} on {model_spec.dataset}",
            kind="model",
            digest=digest,
            max_epoch=model_spec.epochs,
        )
        lease: Optional[Lease] = None
        if use_cache and self.lease_training:
            lease, trained = self._claim_training(model_spec, model, dataset, digest)
            if trained is not None:
                return trained
        try:
            self._emit("model", "compute", f"training {model_spec.architecture}")
            workers = workers if workers is not None else self.workers

            def on_epoch(epoch: int, metrics: Dict[str, float]) -> None:
                if lease is not None:
                    lease.refresh()
                if self.progress is not None:
                    self._emit(
                        "train",
                        "compute",
                        f"epoch {epoch}/{model_spec.epochs} "
                        f"loss={metrics['train_loss']:.4f} "
                        f"acc={metrics['train_accuracy']:.4f}",
                    )

            checkpointer = None
            if use_cache and self.checkpoint_every is not None:
                checkpointer = TrainingCheckpointer(
                    self.store,
                    digest,
                    every=self.checkpoint_every,
                    meta=model_spec.to_dict(),
                )
                resume_epoch = checkpointer.latest_epoch(model_spec.epochs)
                if resume_epoch:
                    self._emit(
                        "model",
                        "resume",
                        f"epoch {resume_epoch}/{model_spec.epochs} {digest[:12]}",
                    )
            trainer = Trainer(
                model, optimizer=Adam(model_spec.learning_rate), seed=model_spec.seed
            )
            trainer.fit(
                dataset.train.images,
                dataset.train.labels,
                epochs=model_spec.epochs,
                batch_size=model_spec.batch_size,
                shuffle=True,
                workers=workers,
                on_epoch=(
                    on_epoch
                    if (self.progress is not None or lease is not None)
                    else None
                ),
                checkpoint=checkpointer,
            )
            accuracy = trainer.evaluate(
                dataset.test.images, dataset.test.labels, workers=workers
            )
            if use_cache:
                arrays = {
                    _escape(key): value for key, value in model.state_dict().items()
                }
                arrays[_ACCURACY_KEY] = np.float64(accuracy)
                self.store.put_arrays(
                    "model", digest, arrays, meta=model_spec.to_dict()
                )
                self._emit("model", "store", digest[:12])
            return TrainedModel(model=model, dataset=dataset, test_accuracy=accuracy)
        finally:
            if lease is not None:
                lease.release()

    def _load_cached_model(
        self,
        model_spec: ModelSpec,
        model: Sequential,
        dataset: Dataset,
        digest: str,
    ) -> Optional[TrainedModel]:
        """Load the stored weights into ``model``, or ``None`` on a miss."""
        arrays = self._cached_arrays("model", digest)
        if arrays is None:
            return None
        try:
            accuracy = float(arrays.pop(_ACCURACY_KEY))
            model.load_state_dict(
                {_unescape(key): value for key, value in arrays.items()}
            )
        except Exception:
            # weights written by an incompatible build (e.g. changed
            # layer shapes) are a miss, not a crash: evict, retrain
            self.store.evict("model", digest)
            return None
        self._emit("model", "hit", f"{model_spec.architecture} {digest[:12]}")
        return TrainedModel(model=model, dataset=dataset, test_accuracy=accuracy)

    def _claim_training(
        self,
        model_spec: ModelSpec,
        model: Sequential,
        dataset: Dataset,
        digest: str,
    ) -> Tuple[Optional[Lease], Optional[TrainedModel]]:
        """Claim the single-writer training lease on *(model, digest)*.

        Returns ``(lease, None)`` when this session won the claim,
        ``(None, trained)`` when another writer finished first (its artifact
        was loaded from the store while waiting), and ``(None, None)`` when
        the wait timed out — the caller then trains leaseless, which
        duplicates work but stays correct (last atomic write wins and both
        writers produce identical bytes).
        """
        lease = self.store.lease("model", digest)
        if lease.acquire():
            return lease, None
        holder = lease.holder() or {}
        self._emit(
            "model",
            "wait",
            f"{digest[:12]} leased by {holder.get('owner', 'unknown')}",
        )
        deadline = Deadline(self.lease_timeout_s)
        while not deadline.expired():
            time.sleep(min(self.lease_poll_s, deadline.remaining() or 0.0) or 0.001)
            trained = self._load_cached_model(model_spec, model, dataset, digest)
            if trained is not None:
                return None, trained
            if lease.acquire():
                # the other writer crashed or released without storing an
                # artifact: take over the claim and train here
                return lease, None
        self._emit(
            "model", "wait", f"lease wait timed out; training {digest[:12]} anyway"
        )
        return None, None

    # ---------------------------------------------------------------- suites
    @staticmethod
    def suite_digest(
        model_spec: ModelSpec,
        attack_spec: AttackSpec,
        epsilons: Sequence[float],
        n_samples: int,
        seed: int,
    ) -> str:
        """Content hash identifying one adversarial suite."""
        return content_hash(
            {
                "model": model_spec.to_dict(),
                "attack": attack_spec.to_dict(),
                "epsilons": [float(eps) for eps in epsilons],
                "n_samples": int(n_samples),
                "seed": int(seed),
            },
            "suite",
        )

    def resolve_suite(
        self,
        model_spec: ModelSpec,
        attack_spec: AttackSpec,
        sweep: SweepSpec,
        seed: int = 0,
        trained: Optional[TrainedModel] = None,
        workers: WorkerSpec = None,
        use_cache: bool = True,
    ) -> AdversarialSuite:
        """Load a crafted adversarial suite from the store, or craft and store it."""
        epsilons = [float(eps) for eps in sweep.epsilons]
        digest = self.suite_digest(
            model_spec, attack_spec, epsilons, sweep.n_samples, seed
        )
        if use_cache:
            arrays = self._cached_arrays("suite", digest)
            if arrays is not None:
                try:
                    suite = AdversarialSuite(
                        attack_key=str(arrays["attack_key"]),
                        epsilons=epsilons,
                        images=arrays["images"],
                        labels=arrays["labels"],
                        adversarial={
                            eps: arrays[f"adv_{index}"]
                            for index, eps in enumerate(epsilons)
                        },
                    )
                except KeyError:
                    self.store.evict("suite", digest)
                else:
                    self._emit("suite", "hit", f"{attack_spec.attack} {digest[:12]}")
                    return suite
        self._forbid_compute(
            "craft",
            f"{attack_spec.attack} x{sweep.n_samples}",
            kind="suite",
            digest=digest,
        )
        if trained is None:
            trained = self.resolve_model(
                model_spec, use_cache=use_cache, workers=workers
            )
        test = trained.dataset.test
        if sweep.n_samples > len(test):
            raise ConfigurationError(
                f"sweep requests {sweep.n_samples} samples but the model spec "
                f"only holds {len(test)} test samples"
            )
        self._emit("suite", "compute", f"crafting {attack_spec.attack}")
        suite = AdversarialSuite.generate(
            trained.model,
            attack_spec.build(),
            test.images[: sweep.n_samples],
            test.labels[: sweep.n_samples],
            epsilons,
            workers=workers if workers is not None else self.workers,
            seed=seed,
        )
        if use_cache:
            arrays = {
                "attack_key": np.asarray(suite.attack_key),
                "images": suite.images,
                "labels": suite.labels,
            }
            for index, eps in enumerate(epsilons):
                arrays[f"adv_{index}"] = suite.adversarial[eps]
            self.store.put_arrays(
                "suite",
                digest,
                arrays,
                meta={
                    "model": model_spec.to_dict(),
                    "attack": attack_spec.to_dict(),
                    "epsilons": epsilons,
                    "n_samples": sweep.n_samples,
                    "seed": seed,
                },
            )
            self._emit("suite", "store", digest[:12])
        return suite

    # --------------------------------------------------------------- victims
    def build_victims(
        self, trained: TrainedModel, victims: VictimSpec
    ) -> Dict[str, AxModel]:
        """Build the AxDNN victim set of a spec from a trained source model."""
        calibration = trained.dataset.train.images[: victims.calibration_samples]
        built: Dict[str, AxModel] = {}
        for label in victims.multipliers:
            self._emit("victims", "compute", label)
            built[label] = build_axdnn(
                trained.model,
                label,
                calibration,
                bits=victims.bits,
                convolution_only=victims.convolution_only,
                name=f"ax_{trained.model.name}_{label}",
                kernel=victims.kernel,
            )
        return built

    # ------------------------------------------------------------------- run
    def run(
        self,
        spec: ExperimentSpec,
        workers: WorkerSpec = None,
        use_cache: bool = True,
    ) -> ExperimentResult:
        """Run an experiment spec, reusing cached artifacts at every level.

        ``use_cache=False`` bypasses the store entirely (nothing is read or
        written) — the escape hatch for measuring cold-path timings.
        """
        if not isinstance(spec, ExperimentSpec):
            raise ConfigurationError(
                f"Session.run expects an ExperimentSpec, got {type(spec).__name__}"
            )
        start = time.perf_counter()
        workers = workers if workers is not None else self.workers
        digest = spec.content_hash()
        if use_cache:
            payload = self._cached_json("result", digest)
            if payload is not None:
                try:
                    result = ExperimentResult.from_dict(payload, spec=spec)
                except (ConfigurationError, KeyError, TypeError, ValueError):
                    # a result written by an incompatible build is a miss,
                    # not a crash: evict it and recompute below
                    self.store.evict("result", digest)
                else:
                    self._emit("result", "hit", f"{spec.name} {digest[:12]}")
                    result.from_cache = True
                    result.elapsed_s = time.perf_counter() - start
                    return result
        if spec.kind == "panel":
            result = self._run_panel(spec, workers, use_cache)
        elif spec.kind == "quantization":
            result = self._run_quantization(spec, workers, use_cache)
        else:
            result = self._run_transfer(spec, workers, use_cache)
        if use_cache:
            self.store.put_json("result", digest, result.to_dict(), meta=spec.to_dict())
            self._emit("result", "store", f"{spec.name} {digest[:12]}")
        result.elapsed_s = time.perf_counter() - start
        return result

    def _suite_keys(self, spec: ExperimentSpec, model_spec: ModelSpec) -> List[Tuple[str, str]]:
        """The ``("suite", digest)`` store keys a spec's sweep will read."""
        epsilons = [float(eps) for eps in spec.sweep.epsilons]
        return [
            (
                "suite",
                self.suite_digest(
                    model_spec, attack_spec, epsilons, spec.sweep.n_samples, spec.seed
                ),
            )
            for attack_spec in spec.attacks
        ]

    def _run_panel(
        self, spec: ExperimentSpec, workers: WorkerSpec, use_cache: bool
    ) -> ExperimentResult:
        if use_cache:
            self._prefetch(
                [("model", spec.model.content_hash())]
                + self._suite_keys(spec, spec.model)
            )
        trained = self.resolve_model(spec.model, use_cache=use_cache, workers=workers)
        victims = self.build_victims(trained, spec.victims)
        grids: List[RobustnessGrid] = []
        for attack_spec in spec.attacks:
            suite = self.resolve_suite(
                spec.model,
                attack_spec,
                spec.sweep,
                seed=spec.seed,
                trained=trained,
                workers=workers,
                use_cache=use_cache,
            )
            self._emit(
                "evaluate", "compute", f"{attack_spec.attack} x{len(victims)} victims"
            )
            # fused=None: panels of >= 2 lockstep-compatible victims (every
            # figure's panel — one source model, many multipliers) evaluate
            # in one fused pass per budget, sharing im2col/quantization
            # across victims; the grid is bit-identical either way, so
            # cached results stay valid.
            grids.append(
                grid_from_suite(
                    suite,
                    victims,
                    dataset_name=trained.dataset.name,
                    source_name=trained.model.name,
                    workers=workers,
                    fused=None,
                )
            )
        return ExperimentResult(
            spec=spec,
            grids=grids,
            source_accuracies={_source_name(spec.model): trained.test_accuracy},
        )

    def _run_quantization(
        self, spec: ExperimentSpec, workers: WorkerSpec, use_cache: bool
    ) -> ExperimentResult:
        if use_cache:
            self._prefetch(
                [("model", spec.model.content_hash())]
                + self._suite_keys(spec, spec.model)
            )
        trained = self.resolve_model(spec.model, use_cache=use_cache, workers=workers)
        calibration = trained.dataset.train.images[
            : spec.victims.calibration_samples
        ]
        quantized = build_quantized_accurate(
            trained.model, calibration, bits=spec.victims.bits
        )
        study = QuantizationStudy()
        for attack_spec in spec.attacks:
            suite = self.resolve_suite(
                spec.model,
                attack_spec,
                spec.sweep,
                seed=spec.seed,
                trained=trained,
                workers=workers,
                use_cache=use_cache,
            )
            self._emit("evaluate", "compute", attack_spec.attack)
            float_results = suite.evaluate(trained.model, "float", workers=workers)
            quant_results = suite.evaluate(quantized, "quantized", workers=workers)
            study.add(
                QuantizationComparison(
                    attack_key=suite.attack_key,
                    epsilons=list(suite.epsilons),
                    float_robustness=[r.robustness_percent for r in float_results],
                    quantized_robustness=[r.robustness_percent for r in quant_results],
                )
            )
        return ExperimentResult(
            spec=spec,
            study=study,
            source_accuracies={_source_name(spec.model): trained.test_accuracy},
        )

    def _run_transfer(
        self, spec: ExperimentSpec, workers: WorkerSpec, use_cache: bool
    ) -> ExperimentResult:
        epsilon = float(spec.sweep.epsilons[0])
        attack_spec = spec.attacks[0]
        multiplier = spec.victims.multipliers[0]
        if use_cache:
            keys: List[Tuple[str, str]] = []
            for model_spec in spec.source_models():
                keys.append(("model", model_spec.content_hash()))
                keys.extend(self._suite_keys(spec, model_spec))
            self._prefetch(keys)
        sources: List[Tuple[str, ModelSpec, TrainedModel]] = []
        seen: Dict[str, int] = {}
        for model_spec in spec.source_models():
            base = _source_name(model_spec)
            seen[base] = seen.get(base, 0) + 1
            name = base if seen[base] == 1 else f"{base}#{seen[base]}"
            sources.append(
                (
                    name,
                    model_spec,
                    self.resolve_model(
                        model_spec, use_cache=use_cache, workers=workers
                    ),
                )
            )
        primary = sources[0][2]
        calibration = primary.dataset.train.images[: spec.victims.calibration_samples]
        victims: Dict[str, AxModel] = {}
        victim_seen: Dict[str, int] = {}
        for name, model_spec, trained in sources:
            base = ARCH_VICTIM_NAMES.get(
                model_spec.architecture, f"Ax_{model_spec.architecture}"
            )
            victim_seen[base] = victim_seen.get(base, 0) + 1
            victim_name = base if victim_seen[base] == 1 else f"{base}#{victim_seen[base]}"
            self._emit("victims", "compute", victim_name)
            victims[victim_name] = build_axdnn(
                trained.model,
                multiplier,
                calibration,
                bits=spec.victims.bits,
                convolution_only=spec.victims.convolution_only,
                name=f"ax_{trained.model.name}_{multiplier}",
                kernel=spec.victims.kernel,
            )
        cells: List[TransferabilityCell] = []
        dataset_name = primary.dataset.name
        # the clean 'before' accuracy is source-independent (every source
        # shares the primary test split by spec validation) — pay it once
        clean_before: Dict[str, float] = {}
        for name, model_spec, trained in sources:
            suite = self.resolve_suite(
                model_spec,
                attack_spec,
                spec.sweep,
                seed=spec.seed,
                trained=trained,
                workers=workers,
                use_cache=use_cache,
            )
            adversarial = suite.adversarial[epsilon]
            self._emit("evaluate", "compute", f"{attack_spec.attack} from {name}")
            for victim_name, victim in victims.items():
                if victim_name not in clean_before:
                    clean_before[victim_name] = call_with_workers(
                        victim.accuracy_percent,
                        suite.images,
                        suite.labels,
                        workers=workers,
                    )
                after = call_with_workers(
                    victim.accuracy_percent, adversarial, suite.labels, workers=workers
                )
                cells.append(
                    TransferabilityCell(
                        source=name,
                        victim=victim_name,
                        dataset=dataset_name,
                        accuracy_before=clean_before[victim_name],
                        accuracy_after=after,
                    )
                )
        table = TransferabilityTable(
            attack_key=attack_spec.attack, epsilon=epsilon, cells=cells
        )
        return ExperimentResult(
            spec=spec,
            table=table,
            source_accuracies={
                name: trained.test_accuracy for name, _, trained in sources
            },
        )
