"""Pluggable artifact-store backends with fault-hardened remote IO.

The content-addressed :class:`~repro.experiments.store.ArtifactStore` is
the system's only coordination point, so taking the service from one host
to many means generalising its IO behind a backend interface.  This module
holds that interface and the robustness machinery remote storage demands —
remote IO is precisely where failures stop being exceptional (timeouts,
torn uploads, stale reads, partitions), so every layer here is built
robustness-first:

:class:`StoreBackend`
    The ABC: ``get`` / ``put_atomic`` / ``head`` / ``list_kind`` /
    ``delete`` over opaque keys (``"<kind>/<digest><ext>"``), with
    ETag-style conditional puts (``if_match`` / ``if_none_match``).  ETags
    are the payload's SHA-256, so a conditional put doubles as an
    end-to-end integrity check.

:class:`LocalDirBackend`
    Today's sharded-directory file IO, extracted behaviour-preserving: the
    same ``<kind>/<digest[:2]>/<digest><ext>`` layout and the same
    atomic-write path (:func:`atomic_write_bytes`), so a ``file://``
    backend interoperates bit-for-bit with a directly-rooted store — the
    shared-filesystem deployment story.

:class:`InMemoryBackend`
    A dict behind a lock, for tests; ``mem://<name>`` URLs share one
    process-global instance per name so two stores in one test can talk
    through a common "remote".

:class:`SimulatedRemoteBackend`
    An in-memory backend wearing a failure harness: injectable latency,
    deterministic error rates, and — via the :class:`FaultInjector` points
    ``backend.get`` / ``backend.put`` / ``backend.head`` — scripted error
    bursts, torn writes (the stored bytes are corrupted but the put
    reports success with the *original* payload's ETag, i.e. a stale
    ETag) and corrupted reads.  The chaos suite and the CI
    ``remote-store-chaos`` job drive the whole degradation ladder through
    it with zero monkeypatching.

:class:`ResilientBackend`
    The wrapper every remote backend runs under: per-call timeouts
    (:func:`repro.resilience.run_with_deadline`), transient-error retries
    (:class:`repro.resilience.RetryPolicy`), and optional *hedged reads* —
    when a read has not answered within the hedge delay a second identical
    request races it and the first answer wins, converting tail latency
    into a little extra load.

:class:`CircuitBreaker`
    closed → open → half-open.  ``threshold`` consecutive failures open
    the circuit; after ``cooldown_s`` it admits ``probes`` trial requests,
    and that many consecutive successes close it again.  While open the
    store degrades to write-through local-cache mode (reads served
    locally, writes journaled for later upload) instead of hanging on a
    dead remote.

:class:`WriteJournal`
    The degraded-mode write log: artifact keys whose upload is pending,
    persisted as one atomically-rewritten JSON file under the store root
    so a crash during an outage loses no uploads.

Selection is by URL — :func:`backend_from_url` understands ``file://``,
``mem://`` and ``sim://`` — normally supplied via ``$REPRO_STORE_URL``.

Environment knobs
-----------------
``REPRO_STORE_URL``
    Backend URL; unset means local-only (no remote tier).
``REPRO_BACKEND_TIMEOUT``
    Per-call timeout in seconds (default 10; 0 disables).
``REPRO_BACKEND_HEDGE``
    Hedged-read delay in seconds (default 0 = hedging off).
``REPRO_BREAKER_THRESHOLD``
    Consecutive failures that open the circuit (default 5).
``REPRO_BREAKER_COOLDOWN``
    Seconds the circuit stays open before probing (default 30).
``REPRO_BREAKER_PROBES``
    Consecutive probe successes that close it again (default 2).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.config import env_float, env_int
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    PreconditionFailedError,
)
from repro.resilience import FaultInjector, RetryPolicy, run_with_deadline

#: environment variable selecting the store backend by URL
STORE_URL_ENV_VAR = "REPRO_STORE_URL"

#: environment variable setting the per-call backend timeout (seconds)
BACKEND_TIMEOUT_ENV_VAR = "REPRO_BACKEND_TIMEOUT"

#: environment variable setting the hedged-read delay (seconds; 0 = off)
BACKEND_HEDGE_ENV_VAR = "REPRO_BACKEND_HEDGE"

#: environment variables tuning the circuit breaker
BREAKER_THRESHOLD_ENV_VAR = "REPRO_BREAKER_THRESHOLD"
BREAKER_COOLDOWN_ENV_VAR = "REPRO_BREAKER_COOLDOWN"
BREAKER_PROBES_ENV_VAR = "REPRO_BREAKER_PROBES"

#: default per-call backend timeout (seconds)
DEFAULT_BACKEND_TIMEOUT_S = 10.0


# ------------------------------------------------------------------ file IO
# The atomic-write primitives used by every on-disk writer in the repo.
# They lived on the store before the backend split; they live here now so
# LocalDirBackend *is* the store's file IO rather than a copy of it
# (store.py re-exports them for its callers).


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_with(path: str, writer, retry=None, on_retry=None) -> str:
    """Write a file atomically (temp + ``os.replace``); returns the SHA-256.

    ``writer(handle)`` receives the open binary temp file.  Consults the
    ``store.write`` fault point before each attempt and retries transient
    IO errors under ``retry`` (default :meth:`RetryPolicy.from_env`) — the
    single write path shared by the artifact store, the benchmark-result
    recorder and the benchmark drivers, so an interrupt mid-dump can never
    leave a torn file behind at ``path``.
    """
    policy = retry if retry is not None else RetryPolicy.from_env()

    def attempt() -> str:
        FaultInjector.consult("store.write")
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=os.path.splitext(path)[1]
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                writer(handle)
            payload_hash = _sha256_file(temp_path)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return payload_hash

    return policy.run(
        attempt, description=f"store write {path}", on_retry=on_retry
    )


def atomic_write_bytes(path: str, data: bytes, retry=None) -> str:
    """Atomically replace ``path`` with ``data``; returns the payload SHA-256."""
    return _atomic_write_with(path, lambda handle: handle.write(data), retry=retry)


def atomic_write_json(path: str, payload, retry=None, indent: int = 2) -> str:
    """Atomically replace ``path`` with ``payload`` as JSON; returns the SHA-256."""
    body = json.dumps(payload, indent=indent, sort_keys=True).encode("utf-8")
    return atomic_write_bytes(path, body, retry=retry)


def _etag_of(data: bytes) -> str:
    """The ETag of a payload: its SHA-256 hex digest."""
    return hashlib.sha256(data).hexdigest()


def _validate_backend_key(key: str) -> Tuple[str, str]:
    """Split a backend key into ``(kind, filename)``; reject path tricks."""
    if not isinstance(key, str) or key.count("/") != 1:
        raise ConfigurationError(
            f"backend key must look like 'kind/digest.ext', got {key!r}"
        )
    kind, name = key.split("/")
    if not kind or kind.startswith(".") or not name or name.startswith("."):
        raise ConfigurationError(f"backend key has an invalid component: {key!r}")
    return kind, name


# ---------------------------------------------------------------- interface
@dataclass(frozen=True)
class Blob:
    """One stored object: its bytes and the ETag (payload SHA-256)."""

    data: bytes
    etag: str


class StoreBackend(ABC):
    """Abstract key/blob storage under the artifact store.

    Keys are ``"<kind>/<digest><ext>"`` — flat from the interface's point
    of view; backends may shard however they like.  All methods may raise
    ``OSError`` for transport failures (the transient class the resilience
    layer retries) and :class:`PreconditionFailedError` for failed
    conditional puts.
    """

    #: short scheme name ("file", "mem", "sim") for diagnostics
    scheme: str = "?"

    @abstractmethod
    def get(self, key: str) -> Optional[Blob]:
        """The object at ``key``, or ``None`` when absent."""

    @abstractmethod
    def put_atomic(
        self,
        key: str,
        data: bytes,
        if_match: Optional[str] = None,
        if_none_match: bool = False,
    ) -> str:
        """Store ``data`` at ``key`` atomically; returns the new ETag.

        ``if_match=etag`` only replaces an object whose current ETag
        matches; ``if_none_match=True`` only creates (never replaces).
        Violations raise :class:`PreconditionFailedError`.
        """

    @abstractmethod
    def head(self, key: str) -> Optional[str]:
        """The ETag of ``key`` without fetching the payload, or ``None``."""

    @abstractmethod
    def list_kind(self, kind: str) -> List[str]:
        """Every key under one artifact kind, sorted."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; True when something was removed."""

    def describe(self) -> str:
        """A short human-readable identity for logs and errors."""
        return f"{self.scheme}://"


# ----------------------------------------------------------------- local dir
class LocalDirBackend(StoreBackend):
    """Sharded-directory storage — the store's historical file IO.

    Uses the exact layout and atomic-write path of a directly-rooted
    :class:`~repro.experiments.store.ArtifactStore`
    (``<root>/<kind>/<digest[:2]>/<digest><ext>``, temp + ``os.replace``),
    so a ``file://`` remote on a shared filesystem and a local store
    pointed at the same directory read and write identical bytes.
    """

    scheme = "file"

    def __init__(self, root: str, retry: Optional[RetryPolicy] = None) -> None:
        if not root:
            raise ConfigurationError("file:// backend needs a root directory")
        self.root = os.path.abspath(root)
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        kind, name = _validate_backend_key(key)
        shard = name[:2]
        return os.path.join(self.root, kind, shard, name)

    def get(self, key: str) -> Optional[Blob]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        return Blob(data=data, etag=_etag_of(data))

    def put_atomic(
        self,
        key: str,
        data: bytes,
        if_match: Optional[str] = None,
        if_none_match: bool = False,
    ) -> str:
        path = self._path(key)
        current = self.head(key)
        if if_none_match and current is not None:
            raise PreconditionFailedError(
                f"{key} already exists (etag {current[:12]})"
            )
        if if_match is not None and current != if_match:
            raise PreconditionFailedError(
                f"{key} etag mismatch (expected {if_match[:12]}, "
                f"found {(current or 'absent')[:12]})"
            )
        return atomic_write_bytes(path, data, retry=self.retry)

    def head(self, key: str) -> Optional[str]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        return _sha256_file(path)

    def list_kind(self, kind: str) -> List[str]:
        kind_dir = os.path.join(self.root, kind)
        keys: List[str] = []
        if not os.path.isdir(kind_dir):
            return keys
        for shard in sorted(os.listdir(kind_dir)):
            shard_dir = os.path.join(kind_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.startswith(".tmp-"):
                    continue
                keys.append(f"{kind}/{name}")
        return keys

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        return True

    def describe(self) -> str:
        return f"file://{self.root}"


# ----------------------------------------------------------------- in-memory
class InMemoryBackend(StoreBackend):
    """Dict-backed storage for tests (and the substrate of ``sim://``)."""

    scheme = "mem"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._objects: Dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Blob]:
        _validate_backend_key(key)
        with self._lock:
            data = self._objects.get(key)
        if data is None:
            return None
        return Blob(data=data, etag=_etag_of(data))

    def put_atomic(
        self,
        key: str,
        data: bytes,
        if_match: Optional[str] = None,
        if_none_match: bool = False,
    ) -> str:
        _validate_backend_key(key)
        with self._lock:
            current = self._objects.get(key)
            current_etag = None if current is None else _etag_of(current)
            if if_none_match and current is not None:
                raise PreconditionFailedError(
                    f"{key} already exists (etag {current_etag[:12]})"
                )
            if if_match is not None and current_etag != if_match:
                raise PreconditionFailedError(
                    f"{key} etag mismatch (expected {if_match[:12]}, "
                    f"found {(current_etag or 'absent')[:12]})"
                )
            self._objects[key] = bytes(data)
            return _etag_of(data)

    def head(self, key: str) -> Optional[str]:
        _validate_backend_key(key)
        with self._lock:
            data = self._objects.get(key)
        return None if data is None else _etag_of(data)

    def list_kind(self, kind: str) -> List[str]:
        prefix = f"{kind}/"
        with self._lock:
            return sorted(key for key in self._objects if key.startswith(prefix))

    def delete(self, key: str) -> bool:
        _validate_backend_key(key)
        with self._lock:
            return self._objects.pop(key, None) is not None

    # ------------------------------------------------------------- test hooks
    def tamper(self, key: str, flip: int = 8) -> None:
        """XOR the first ``flip`` bytes of a stored object (bit-rot seam)."""
        with self._lock:
            data = self._objects.get(key)
            if data is None:
                raise ConfigurationError(f"cannot tamper with absent key {key!r}")
            span = min(flip, len(data))
            self._objects[key] = (
                bytes(b ^ 0xFF for b in data[:span]) + data[span:]
            )

    def clear(self) -> None:
        with self._lock:
            self._objects.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    def describe(self) -> str:
        return f"mem://{self.name}"


#: process-global registry backing ``mem://<name>`` / ``sim://<name>`` URLs —
#: every store resolving the same name in one process shares one backend,
#: which is how tests give two stores a common "remote"
_MEM_REGISTRY: Dict[str, InMemoryBackend] = {}
_MEM_REGISTRY_LOCK = threading.Lock()


def shared_memory_backend(name: str) -> InMemoryBackend:
    """The process-global :class:`InMemoryBackend` registered under ``name``."""
    with _MEM_REGISTRY_LOCK:
        backend = _MEM_REGISTRY.get(name)
        if backend is None:
            backend = _MEM_REGISTRY[name] = InMemoryBackend(name=name)
        return backend


def reset_memory_backends() -> None:
    """Drop every registered ``mem://`` backend (test isolation)."""
    with _MEM_REGISTRY_LOCK:
        _MEM_REGISTRY.clear()


# ------------------------------------------------------------------ simulated
class SimulatedRemoteBackend(StoreBackend):
    """An in-memory "remote" with an injectable failure harness.

    Three chaos seams, all deterministic:

    * ``latency_s`` sleeps before every call (network RTT).
    * ``error_rate`` raises ``OSError`` on that fraction of calls, driven
      by a seeded RNG — the same seed replays the same failure sequence.
    * The :class:`FaultInjector` points ``backend.get`` / ``backend.put``
      / ``backend.head`` run scripted plans: ``raise``/``delay`` rules act
      directly; a ``corrupt`` rule on ``backend.put`` stores *corrupted*
      bytes while reporting success with the original payload's ETag (a
      torn upload with a stale ETag — exactly what read-repair must
      catch), and on ``backend.get`` returns a corrupted copy of the
      stored bytes once (a stale/bit-rotted read the second fetch heals).
    """

    scheme = "sim"

    def __init__(
        self,
        inner: Optional[InMemoryBackend] = None,
        latency_s: float = 0.0,
        error_rate: float = 0.0,
        seed: int = 0,
        name: str = "",
    ) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency_s must be >= 0, got {latency_s}")
        if not 0.0 <= error_rate < 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1), got {error_rate}"
            )
        self.inner = inner if inner is not None else InMemoryBackend(name=name)
        self.name = name or self.inner.name
        self.latency_s = float(latency_s)
        self.error_rate = float(error_rate)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()

    def _chaos(self, point: str):
        """Latency + seeded errors + the scripted plan; returns a corrupt rule."""
        if self.latency_s:
            time.sleep(self.latency_s)
        if self.error_rate:
            with self._rng_lock:
                roll = self._rng.random()
            if roll < self.error_rate:
                raise OSError(f"simulated remote error at {point}")
        return FaultInjector.consult(point)

    @staticmethod
    def _corrupt_copy(data: bytes, rule) -> bytes:
        offset = min(rule.corrupt_offset, max(0, len(data) - 1))
        span = min(rule.corrupt_bytes, len(data) - offset)
        return (
            data[:offset]
            + bytes(b ^ 0xFF for b in data[offset : offset + span])
            + data[offset + span :]
        )

    def get(self, key: str) -> Optional[Blob]:
        rule = self._chaos("backend.get")
        blob = self.inner.get(key)
        if blob is not None and rule is not None and rule.action == "corrupt":
            # a stale or bit-rotted read: corrupted bytes under the old ETag
            return Blob(data=self._corrupt_copy(blob.data, rule), etag=blob.etag)
        return blob

    def put_atomic(
        self,
        key: str,
        data: bytes,
        if_match: Optional[str] = None,
        if_none_match: bool = False,
    ) -> str:
        rule = self._chaos("backend.put")
        if rule is not None and rule.action == "corrupt":
            # torn upload: corrupted bytes land, but the backend reports
            # success with the *intended* payload's ETag (stale ETag)
            self.inner.put_atomic(
                key,
                self._corrupt_copy(data, rule),
                if_match=if_match,
                if_none_match=if_none_match,
            )
            return _etag_of(data)
        return self.inner.put_atomic(
            key, data, if_match=if_match, if_none_match=if_none_match
        )

    def head(self, key: str) -> Optional[str]:
        self._chaos("backend.head")
        return self.inner.head(key)

    def list_kind(self, kind: str) -> List[str]:
        self._chaos("backend.list")
        return self.inner.list_kind(kind)

    def delete(self, key: str) -> bool:
        self._chaos("backend.delete")
        return self.inner.delete(key)

    def describe(self) -> str:
        return f"sim://{self.name}"


# --------------------------------------------------------------- URL parsing
def backend_from_url(url: str) -> StoreBackend:
    """Build a :class:`StoreBackend` from a ``file://``/``mem://``/``sim://`` URL.

    * ``file:///shared/artifacts`` — :class:`LocalDirBackend` on a path
      (shared-filesystem remote).
    * ``mem://name`` — the process-global :class:`InMemoryBackend`
      registered under ``name``.
    * ``sim://name?latency_ms=20&error_rate=0.05&seed=7`` —
      :class:`SimulatedRemoteBackend` over the same shared registry, so
      every store resolving one name sees one object space.
    """
    if not isinstance(url, str) or "://" not in url:
        raise ConfigurationError(
            f"store URL must look like scheme://..., got {url!r}"
        )
    parts = urlsplit(url)
    scheme = parts.scheme.lower()
    if scheme == "file":
        root = (parts.netloc + parts.path) if parts.netloc else parts.path
        if not root:
            raise ConfigurationError(f"file:// URL needs a path, got {url!r}")
        return LocalDirBackend(root)
    name = parts.netloc + parts.path.rstrip("/")
    if scheme == "mem":
        return shared_memory_backend(name or "default")
    if scheme == "sim":
        query = parse_qs(parts.query)

        def _param(key: str, default: float, caster=float) -> float:
            values = query.get(key)
            if not values:
                return default
            try:
                return caster(values[-1])
            except ValueError:
                raise ConfigurationError(
                    f"store URL parameter {key}={values[-1]!r} must be "
                    f"{caster.__name__}"
                ) from None

        return SimulatedRemoteBackend(
            inner=shared_memory_backend(name or "default"),
            latency_s=_param("latency_ms", 0.0) / 1000.0,
            error_rate=_param("error_rate", 0.0),
            seed=int(_param("seed", 0, caster=int)),
            name=name or "default",
        )
    raise ConfigurationError(
        f"unknown store URL scheme {scheme!r} in {url!r}; "
        f"known: file://, mem://, sim://"
    )


# ------------------------------------------------------------ circuit breaker
class CircuitBreaker:
    """closed → open → half-open failure isolation for one backend.

    ``threshold`` *consecutive* failures open the circuit; while open,
    :meth:`allow` answers False (degraded mode) without touching the
    backend.  After ``cooldown_s`` the breaker moves to half-open and
    admits probe requests; ``probes`` consecutive successes close it, any
    failure snaps it back open for another cooldown.  ``clock`` is
    injectable (monotonic seconds) so tests step time instead of sleeping.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not isinstance(threshold, int) or threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be a positive int, got {threshold!r}"
            )
        if cooldown_s <= 0:
            raise ConfigurationError(
                f"breaker cooldown_s must be positive, got {cooldown_s!r}"
            )
        if not isinstance(probes, int) or probes < 1:
            raise ConfigurationError(
                f"breaker probes must be a positive int, got {probes!r}"
            )
        self.threshold = threshold
        self.cooldown_s = float(cooldown_s)
        self.probes = probes
        self.clock = clock
        self.opened_total = 0
        self.closed_total = 0
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0

    @classmethod
    def from_env(cls, **overrides) -> "CircuitBreaker":
        """A breaker tuned by the ``REPRO_BREAKER_*`` environment knobs."""
        settings = {
            "threshold": env_int(BREAKER_THRESHOLD_ENV_VAR, 5, minimum=1),
            "cooldown_s": env_float(BREAKER_COOLDOWN_ENV_VAR, 30.0),
            "probes": env_int(BREAKER_PROBES_ENV_VAR, 2, minimum=1),
        }
        settings.update(overrides)
        return cls(**settings)

    def _tick(self) -> None:
        # lazily promote open -> half_open once the cooldown has elapsed
        if (
            self._state == "open"
            and self.clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = "half_open"
            self._probe_successes = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (cooldown-aware)."""
        with self._lock:
            self._tick()
            return self._state

    def state_code(self) -> int:
        """The state as a gauge value: 0 closed, 1 half-open, 2 open."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.state]

    def allow(self) -> bool:
        """Whether the next backend call may proceed (False = degraded)."""
        with self._lock:
            self._tick()
            return self._state != "open"

    def record_success(self) -> None:
        """Note one successful backend call (closes a probed half-open)."""
        with self._lock:
            self._tick()
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._probe_successes += 1
                if self._probe_successes >= self.probes:
                    self._state = "closed"
                    self.closed_total += 1

    def record_failure(self) -> None:
        """Note one failed backend call (may open the circuit)."""
        with self._lock:
            self._tick()
            if self._state == "half_open":
                # a failed probe snaps straight back open
                self._state = "open"
                self._opened_at = self.clock()
                self.opened_total += 1
                self._consecutive_failures = 0
                return
            self._consecutive_failures += 1
            if self._state == "closed" and (
                self._consecutive_failures >= self.threshold
            ):
                self._state = "open"
                self._opened_at = self.clock()
                self.opened_total += 1
                self._consecutive_failures = 0

    def reset(self) -> None:
        """Force-close the breaker (administrative override)."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_successes = 0


# ---------------------------------------------------------------- resilience
class ResilientBackend(StoreBackend):
    """Retry + per-call timeout + hedged reads around any backend.

    Every call runs under the wrapped :class:`RetryPolicy` (transient =
    ``OSError`` *and* :class:`DeadlineExceededError`, so a timed-out call
    earns another attempt) with an optional hard per-call deadline.  Reads
    (``get``/``head``) additionally support hedging: when the primary
    request has not answered within ``hedge_s`` a second identical request
    is launched and the first to finish wins — both legs are idempotent
    reads, so the loser is simply discarded.
    """

    scheme = "resilient"

    def __init__(
        self,
        inner: StoreBackend,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        hedge_s: Optional[float] = None,
    ) -> None:
        if timeout_s is not None and timeout_s < 0:
            raise ConfigurationError(f"timeout_s must be >= 0, got {timeout_s}")
        if hedge_s is not None and hedge_s < 0:
            raise ConfigurationError(f"hedge_s must be >= 0, got {hedge_s}")
        self.inner = inner
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy.from_env(transient=(OSError, DeadlineExceededError))
        )
        self.timeout_s = timeout_s or None
        self.hedge_s = hedge_s or None
        self.hedged_reads = 0
        self.hedge_wins = 0
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, inner: StoreBackend, **overrides) -> "ResilientBackend":
        """Wrap ``inner`` per ``REPRO_BACKEND_TIMEOUT``/``REPRO_BACKEND_HEDGE``."""
        settings = {
            "timeout_s": env_float(
                BACKEND_TIMEOUT_ENV_VAR, DEFAULT_BACKEND_TIMEOUT_S, minimum=0.0
            ),
            "hedge_s": env_float(BACKEND_HEDGE_ENV_VAR, 0.0, minimum=0.0),
        }
        settings.update(overrides)
        return cls(inner, **settings)

    # ------------------------------------------------------------- plumbing
    def _bounded(self, fn: Callable, description: str):
        if self.timeout_s:
            return run_with_deadline(fn, self.timeout_s, description)
        return fn()

    def _write(self, fn: Callable, description: str):
        return self.retry.run(
            lambda: self._bounded(fn, description), description=description
        )

    def _read(self, fn: Callable, description: str):
        if not self.hedge_s:
            return self._write(fn, description)

        def attempt():
            pool = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-hedge"
            )
            try:
                primary = pool.submit(lambda: self._bounded(fn, description))
                done, _ = wait({primary}, timeout=self.hedge_s)
                if done:
                    return primary.result()
                with self._lock:
                    self.hedged_reads += 1
                secondary = pool.submit(lambda: self._bounded(fn, description))
                pending = {primary, secondary}
                failure: Optional[BaseException] = None
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        exc = future.exception()
                        if exc is None:
                            if future is secondary:
                                with self._lock:
                                    self.hedge_wins += 1
                            return future.result()
                        failure = exc
                raise failure  # both legs failed: surface the last error
            finally:
                pool.shutdown(wait=False)

        return self.retry.run(attempt, description=f"hedged {description}")

    # ------------------------------------------------------------------ API
    def get(self, key: str) -> Optional[Blob]:
        return self._read(lambda: self.inner.get(key), f"backend get {key}")

    def put_atomic(
        self,
        key: str,
        data: bytes,
        if_match: Optional[str] = None,
        if_none_match: bool = False,
    ) -> str:
        # PreconditionFailedError is not transient: it propagates on the
        # first attempt so content-addressed dedupe stays a cheap signal
        return self._write(
            lambda: self.inner.put_atomic(
                key, data, if_match=if_match, if_none_match=if_none_match
            ),
            f"backend put {key}",
        )

    def head(self, key: str) -> Optional[str]:
        return self._read(lambda: self.inner.head(key), f"backend head {key}")

    def list_kind(self, kind: str) -> List[str]:
        return self._read(
            lambda: self.inner.list_kind(kind), f"backend list {kind}"
        )

    def delete(self, key: str) -> bool:
        return self._write(lambda: self.inner.delete(key), f"backend delete {key}")

    def describe(self) -> str:
        return self.inner.describe()


# ------------------------------------------------------------- write journal
class WriteJournal:
    """Degraded-mode write log: artifact keys awaiting upload.

    One JSON file (a sorted list of ``{"kind", "digest"}`` entries),
    rewritten atomically on every change so a crash mid-outage never loses
    or tears the pending set.  The payload bytes themselves stay in the
    local cache — the journal records *which* artifacts to re-upload, and
    the flusher reads their current local bytes at flush time.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._entries: List[Tuple[str, str]] = []
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
            entries = [
                (str(item["kind"]), str(item["digest"]))
                for item in payload.get("pending", [])
            ]
        except FileNotFoundError:
            return
        except (OSError, ValueError, TypeError, KeyError):
            # a torn or malformed journal must not brick the store: start
            # empty (worst case some uploads are redone — puts are
            # idempotent by content address)
            return
        self._entries = entries

    def _persist(self) -> None:
        # plain temp + os.replace, deliberately *not* through the
        # store.write fault point: journal writes happen while chaos plans
        # are live, and shifting scripted store.write ordinals would make
        # fault plans nondeterministic
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        body = json.dumps(
            {"pending": [{"kind": k, "digest": d} for k, d in self._entries]},
            indent=2,
            sort_keys=True,
        ).encode("utf-8")
        descriptor, temp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(body)
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def add(self, kind: str, digest: str) -> bool:
        """Journal one artifact for later upload; False when already pending."""
        with self._lock:
            if (kind, digest) in self._entries:
                return False
            self._entries.append((kind, digest))
            self._persist()
            return True

    def remove(self, kind: str, digest: str) -> bool:
        """Drop one flushed (or evicted) entry."""
        with self._lock:
            try:
                self._entries.remove((kind, digest))
            except ValueError:
                return False
            self._persist()
            return True

    def pending(self) -> List[Tuple[str, str]]:
        """The journaled ``(kind, digest)`` pairs, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


__all__ = [
    "Blob",
    "StoreBackend",
    "LocalDirBackend",
    "InMemoryBackend",
    "SimulatedRemoteBackend",
    "ResilientBackend",
    "CircuitBreaker",
    "WriteJournal",
    "backend_from_url",
    "shared_memory_backend",
    "reset_memory_backends",
    "atomic_write_bytes",
    "atomic_write_json",
    "STORE_URL_ENV_VAR",
    "BACKEND_TIMEOUT_ENV_VAR",
    "BACKEND_HEDGE_ENV_VAR",
    "BREAKER_THRESHOLD_ENV_VAR",
    "BREAKER_COOLDOWN_ENV_VAR",
    "BREAKER_PROBES_ENV_VAR",
]
