"""Registry of named multipliers and the paper's multiplier groups.

The paper's figures index multipliers by position (M1..M9 for the LeNet-5 /
MNIST experiments, and an eight-entry set for the AlexNet / CIFAR-10
experiments).  This module maps those paper labels onto the named instances
in :mod:`repro.multipliers.evoapprox` and provides a small caching registry
so that look-up tables are built once per process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import UnknownComponentError
from repro.multipliers import base, evoapprox
from repro.multipliers.base import Multiplier
from repro.multipliers.metrics import MultiplierErrorReport, error_report

#: paper label -> EvoApprox-style name, LeNet-5 / MNIST set (Fig. 4-6, M1..M9)
LENET_MULTIPLIERS: Dict[str, str] = {
    "M1": "mul8u_1JFF",
    "M2": "mul8u_96D",
    "M3": "mul8u_12N4",
    "M4": "mul8u_17KS",
    "M5": "mul8u_1AGV",
    "M6": "mul8u_FTA",
    "M7": "mul8u_JQQ",
    "M8": "mul8u_L40",
    "M9": "mul8u_JV3",
}

#: paper label -> EvoApprox-style name, AlexNet / CIFAR-10 set (Fig. 7, A1..A8)
ALEXNET_MULTIPLIERS: Dict[str, str] = {
    "A1": "mul8u_1JFF",
    "A2": "mul8u_2P7",
    "A3": "mul8u_KEM",
    "A4": "mul8u_150Q",
    "A5": "mul8u_14VP",
    "A6": "mul8u_QJD",
    "A7": "mul8u_1446",
    "A8": "mul8u_GS2",
}

#: name of the accurate multiplier used throughout the paper
ACCURATE_MULTIPLIER = "mul8u_1JFF"

_CACHE: Dict[str, Multiplier] = {}


def get_multiplier(name: str) -> Multiplier:
    """Return a (process-wide cached) multiplier by EvoApprox-style name or paper label.

    Accepts either the library name (``"mul8u_17KS"``) or a paper label
    (``"M4"`` / ``"A3"``).
    """
    resolved = resolve_name(name)
    if resolved not in _CACHE:
        _CACHE[resolved] = evoapprox.build(resolved)
    return _CACHE[resolved]


def resolve_name(name: str) -> str:
    """Map a paper label (M1..M9 / A1..A8) or library name to the library name."""
    if name in LENET_MULTIPLIERS:
        return LENET_MULTIPLIERS[name]
    if name in ALEXNET_MULTIPLIERS:
        return ALEXNET_MULTIPLIERS[name]
    if name in evoapprox.available_names():
        return name
    raise UnknownComponentError(
        f"unknown multiplier {name!r}; known labels: "
        f"{sorted(LENET_MULTIPLIERS) + sorted(ALEXNET_MULTIPLIERS)} and library names: "
        f"{evoapprox.available_names()}"
    )


def list_multipliers() -> List[str]:
    """All registered library names."""
    return evoapprox.available_names()


def lenet_set() -> List[Multiplier]:
    """Multiplier instances for the LeNet-5 experiments, ordered M1..M9."""
    return [get_multiplier(label) for label in sorted(LENET_MULTIPLIERS)]


def alexnet_set() -> List[Multiplier]:
    """Multiplier instances for the AlexNet experiments, ordered A1..A8."""
    return [get_multiplier(label) for label in sorted(ALEXNET_MULTIPLIERS)]


def paper_label(name: str, group: str = "lenet") -> Optional[str]:
    """Return the paper label (M*/A*) of a library name within a group, if any."""
    mapping = LENET_MULTIPLIERS if group == "lenet" else ALEXNET_MULTIPLIERS
    for label, library_name in mapping.items():
        if library_name == name:
            return label
    return None


def error_reports(names: Optional[Sequence[str]] = None) -> List[MultiplierErrorReport]:
    """Error reports for a list of multipliers (default: the whole library)."""
    if names is None:
        names = list_multipliers()
    return [error_report(get_multiplier(name)) for name in names]


def clear_cache() -> None:
    """Drop all cached multiplier instances (and their LUTs).

    Also empties the process-wide LUT store and the kernel-profile cache
    derived from it, so subsequent look-ups rebuild everything from scratch
    — the full-reset hammer used by memory-constrained and
    isolation-sensitive test runs.
    """
    _CACHE.clear()
    base.clear_global_lut_cache()
    # Local import: repro.axnn depends on repro.multipliers, not vice versa.
    from repro.axnn.kernels import clear_profile_cache

    clear_profile_cache()
