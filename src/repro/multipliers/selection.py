"""Error-resilience-based multiplier selection.

Section IV.A of the paper describes how the multiplier sets were chosen:
"The approximate multipliers are employed in AxL5 and AxAlx according to
their error resilience towards the MNIST and CIFAR-10 classification ...
approximate multipliers having accuracy less than 90% in AxL5 and 75% in
AxAlx are discarded."

:func:`select_resilient_multipliers` reproduces that screening step: it
builds an AxDNN per candidate multiplier, measures its clean accuracy on a
held-out split and keeps the candidates above the threshold.  The full
screening report is returned so the rejected candidates are visible too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.multipliers.library import get_multiplier, resolve_name
from repro.multipliers.metrics import mean_absolute_error
from repro.nn.model import Sequential


@dataclass(frozen=True)
class MultiplierScreeningResult:
    """Clean-accuracy screening outcome for one candidate multiplier."""

    name: str
    mae_percent: float
    clean_accuracy_percent: float
    accepted: bool


@dataclass
class MultiplierScreeningReport:
    """Full screening report: accepted and rejected candidates."""

    threshold_percent: float
    results: List[MultiplierScreeningResult]

    @property
    def accepted(self) -> List[str]:
        """Names of the candidates that met the accuracy threshold."""
        return [result.name for result in self.results if result.accepted]

    @property
    def rejected(self) -> List[str]:
        """Names of the candidates that fell below the threshold."""
        return [result.name for result in self.results if not result.accepted]

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "threshold_percent": self.threshold_percent,
            "results": [
                {
                    "name": result.name,
                    "mae_percent": result.mae_percent,
                    "clean_accuracy_percent": result.clean_accuracy_percent,
                    "accepted": result.accepted,
                }
                for result in self.results
            ],
        }


def select_resilient_multipliers(
    model: Sequential,
    candidates: Sequence[str],
    calibration_data: np.ndarray,
    images: np.ndarray,
    labels: np.ndarray,
    accuracy_threshold_percent: float = 90.0,
    bits: int = 8,
    always_keep: Optional[Sequence[str]] = None,
    workers=None,
) -> MultiplierScreeningReport:
    """Screen candidate multipliers by the clean accuracy of their AxDNNs.

    Parameters
    ----------
    model:
        The trained accurate float model.
    candidates:
        Multiplier names or paper labels to screen.
    calibration_data:
        Images used to calibrate activation quantization.
    images, labels:
        Held-out evaluation split for the clean-accuracy measurement.
    accuracy_threshold_percent:
        Candidates whose AxDNN accuracy falls below this are rejected
        (90% for LeNet-5/MNIST, 75% for AlexNet/CIFAR-10 in the paper).
    always_keep:
        Names kept regardless of the threshold (the accurate multiplier by
        default would pass anyway, but the option mirrors the paper keeping
        the exact design as the reference).
    workers:
        Worker threads for each candidate's clean-accuracy inference
        (``repro.nn.runtime.WorkerSpec``: a positive int, ``"auto"`` or
        ``None``); the report is invariant to it.
    """
    if not candidates:
        raise ConfigurationError("at least one candidate multiplier is required")
    if not 0.0 <= accuracy_threshold_percent <= 100.0:
        raise ConfigurationError(
            f"accuracy_threshold_percent must be in [0, 100], got "
            f"{accuracy_threshold_percent}"
        )
    # imported lazily: repro.axnn depends on repro.multipliers, so a module-
    # level import here would create an import cycle
    from repro.axnn.engine import build_axdnn
    from repro.nn.runtime import call_with_workers

    keep = {resolve_name(name) for name in (always_keep or [])}
    results: List[MultiplierScreeningResult] = []
    for candidate in candidates:
        resolved = resolve_name(candidate)
        multiplier = get_multiplier(resolved)
        axdnn = build_axdnn(model, multiplier, calibration_data, bits=bits)
        accuracy = call_with_workers(
            axdnn.accuracy_percent, images, labels, workers=workers
        )
        accepted = accuracy >= accuracy_threshold_percent or resolved in keep
        results.append(
            MultiplierScreeningResult(
                name=resolved,
                mae_percent=mean_absolute_error(multiplier),
                clean_accuracy_percent=accuracy,
                accepted=accepted,
            )
        )
    return MultiplierScreeningReport(
        threshold_percent=accuracy_threshold_percent, results=results
    )


def rank_by_energy_at_accuracy(
    report: MultiplierScreeningReport,
    energy_lookup: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Rank the accepted multipliers by energy per MAC (cheapest first).

    ``energy_lookup`` defaults to the library's hardware-cost model; the
    result is the order in which an energy-constrained accelerator designer
    would pick multipliers that already meet the accuracy bar.
    """
    from repro.multipliers.energy import energy_per_mac_pj

    def energy(name: str) -> float:
        if energy_lookup is not None and name in energy_lookup:
            return energy_lookup[name]
        return energy_per_mac_pj(name)

    return sorted(report.accepted, key=energy)
