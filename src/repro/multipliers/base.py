"""Base interface for 8-bit (and general N-bit) unsigned multipliers.

Every multiplier exposes two evaluation paths:

* :meth:`Multiplier.multiply` — vectorised behavioural evaluation; and
* :meth:`Multiplier.lut` — a cached ``(2**n, 2**n)`` look-up table, which is
  what the approximate inference engine (:mod:`repro.axnn`) consumes.  The
  LUT path is the exact mechanism used by TFApprox in the paper.

Error metrics (MAE, WCE, ...) are computed by :mod:`repro.multipliers.metrics`
directly from the LUT, so behavioural models and circuit-backed models are
characterised identically.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: process-wide LUT store keyed by multiplier identity (class, name,
#: bit width and scalar configuration).  Circuit-backed tables cost seconds
#: to build; they are built once per process and shared read-only between
#: every instance of the same multiplier, surviving per-instance
#: ``clear_cache`` calls.
_GLOBAL_LUT_CACHE: Dict[Tuple, np.ndarray] = {}

#: serialises first-touch LUT construction: the parallel inference runtime
#: shards batches across threads, and concurrent first touches of the same
#: multiplier must yield one shared table, not racing duplicate builds
_GLOBAL_LUT_LOCK = threading.Lock()


def clear_global_lut_cache() -> None:
    """Drop every process-wide cached LUT (forces true rebuilds)."""
    _GLOBAL_LUT_CACHE.clear()


def global_lut_cache_size() -> int:
    """Number of LUTs currently held in the process-wide cache."""
    return len(_GLOBAL_LUT_CACHE)


class Multiplier(ABC):
    """An unsigned ``bit_width x bit_width -> 2*bit_width`` multiplier."""

    def __init__(self, name: str, bit_width: int = 8) -> None:
        if bit_width <= 0 or bit_width > 12:
            raise ConfigurationError(
                f"bit_width must be in [1, 12] (LUT memory), got {bit_width}"
            )
        self.name = name
        self.bit_width = bit_width
        self._lut: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API
    @property
    def operand_max(self) -> int:
        """Largest representable operand value (``2**bit_width - 1``)."""
        return (1 << self.bit_width) - 1

    @property
    def product_max(self) -> int:
        """Largest exact product (``operand_max ** 2``)."""
        return self.operand_max * self.operand_max

    @abstractmethod
    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute products for unsigned integer arrays ``a`` and ``b``."""

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two unsigned integer arrays element-wise.

        Inputs are validated to be within ``[0, operand_max]``; the result is
        an ``int64`` array of approximate products.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if np.any(a < 0) or np.any(b < 0):
            raise ConfigurationError(f"{self.name}: operands must be non-negative")
        if np.any(a > self.operand_max) or np.any(b > self.operand_max):
            raise ConfigurationError(
                f"{self.name}: operands exceed {self.bit_width}-bit range"
            )
        return np.asarray(self._compute(a, b), dtype=np.int64)

    def _lut_cache_key(self) -> Optional[Tuple]:
        """Key identifying this multiplier in the process-wide LUT cache.

        The key combines the class name with every scalar public attribute
        (name, bit width, truncation amounts, seeds, ...), so differently
        parameterised instances of the same family do not collide.  Return
        ``None`` to opt out of process-wide sharing.
        """
        scalars = tuple(
            (key, value)
            for key, value in sorted(vars(self).items())
            if not key.startswith("_") and isinstance(value, (bool, int, float, str))
        )
        return (type(self).__name__,) + scalars

    def lut(self) -> np.ndarray:
        """Return (building and caching on first use) the full product LUT.

        The table has shape ``(2**bit_width, 2**bit_width)`` and dtype
        ``int32``; entry ``[a, b]`` is the multiplier's output for operands
        ``a`` and ``b``.  Tables are shared process-wide between instances
        with the same :meth:`_lut_cache_key` and are therefore read-only;
        they survive per-instance :meth:`clear_cache` calls (use
        :func:`clear_global_lut_cache` to force a rebuild).  First-touch
        construction is serialised behind a lock, so concurrent calls from
        inference worker threads all receive the same shared table.
        """
        if self._lut is None:
            key = self._lut_cache_key()
            with _GLOBAL_LUT_LOCK:
                table = _GLOBAL_LUT_CACHE.get(key) if key is not None else None
                if table is None:
                    n = 1 << self.bit_width
                    a, b = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
                    table = self.multiply(a, b).astype(np.int32)
                    table.setflags(write=False)
                    if key is not None:
                        _GLOBAL_LUT_CACHE[key] = table
            self._lut = table
        return self._lut

    def clear_cache(self) -> None:
        """Drop this instance's LUT reference.

        The process-wide cache entry (if any) is kept, so a later
        :meth:`lut` call re-attaches the shared table instead of rebuilding
        it; :func:`clear_global_lut_cache` drops the shared entries too.
        """
        self._lut = None

    # ------------------------------------------------------------ utilities
    def exact_lut(self) -> np.ndarray:
        """The exact product table with the same shape/dtype as :meth:`lut`."""
        n = 1 << self.bit_width
        a, b = np.meshgrid(
            np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64), indexing="ij"
        )
        return (a * b).astype(np.int32)

    def error_lut(self) -> np.ndarray:
        """Signed error table ``approx - exact`` (int32)."""
        return self.lut().astype(np.int64).astype(np.int32) - self.exact_lut()

    def is_exact(self) -> bool:
        """True when the multiplier reproduces every exact product."""
        return bool(np.array_equal(self.lut(), self.exact_lut()))

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.multiply(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, bit_width={self.bit_width})"


class LUTMultiplier(Multiplier):
    """A multiplier defined directly by a product look-up table."""

    def __init__(self, name: str, table: np.ndarray) -> None:
        table = np.asarray(table)
        if table.ndim != 2 or table.shape[0] != table.shape[1]:
            raise ConfigurationError("LUT must be a square 2-D array")
        size = table.shape[0]
        bit_width = int(size).bit_length() - 1
        if (1 << bit_width) != size:
            raise ConfigurationError(f"LUT size {size} is not a power of two")
        super().__init__(name, bit_width)
        self._table = table.astype(np.int32)
        self._lut = self._table

    def _lut_cache_key(self) -> Optional[Tuple]:
        # The table is caller-supplied: two LUTMultipliers may share a name
        # but not a table, and there is nothing to save by sharing anyway.
        return None

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._table[a, b]


def _config_token(obj, depth: int = 2):
    """Hashable structural description of a configuration object.

    Captures the class name and scalar public attributes, recursing one
    level into nested component objects (approximate adder cells,
    compressors, ...) so that two circuits of the same class but different
    composition produce different tokens.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    token = [type(obj).__name__]
    if depth > 0:
        try:
            attrs = vars(obj)
        except TypeError:
            attrs = {}
        for key, value in sorted(attrs.items()):
            if key.startswith("_"):
                continue
            token.append((key, _config_token(value, depth - 1)))
    return tuple(token)


class CircuitMultiplier(Multiplier):
    """Adapter exposing a :mod:`repro.circuits` multiplier circuit as a Multiplier."""

    def __init__(self, name: str, circuit, bit_width: int = 8) -> None:
        super().__init__(name, bit_width)
        if getattr(circuit, "width", bit_width) != bit_width:
            raise ConfigurationError(
                f"circuit width {getattr(circuit, 'width', None)} does not match "
                f"bit_width {bit_width}"
            )
        self.circuit = circuit

    def _lut_cache_key(self) -> Optional[Tuple]:
        # The circuit is the behaviour: same-named adapters around different
        # circuits must not share a LUT, so the key includes the circuit's
        # structural description (class + parameters + component cells).
        base_key = super()._lut_cache_key()
        return None if base_key is None else base_key + (_config_token(self.circuit),)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.circuit.multiply(a, b)
