"""Energy / area / delay model for the multiplier library.

The paper motivates approximate multipliers by their energy savings.  The
original EvoApprox8b library reports post-synthesis power, area and delay for
every circuit; those netlists are not available offline, so this module ships
*representative* hardware-cost figures for each named stand-in, scaled from
the published EvoApprox8b trends (higher error -> lower power/area).  They
are intended for relative comparisons (accuracy-vs-energy Pareto plots in the
examples), not absolute silicon numbers; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass(frozen=True)
class HardwareCost:
    """Relative hardware cost of one multiplier instance."""

    power_mw: float
    area_um2: float
    delay_ns: float

    def energy_pj(self) -> float:
        """Energy per operation (power x delay), in picojoules."""
        return self.power_mw * self.delay_ns


#: representative hardware costs per named multiplier (45 nm-class numbers)
HARDWARE_COSTS: Dict[str, HardwareCost] = {
    "mul8u_1JFF": HardwareCost(power_mw=0.391, area_um2=710.0, delay_ns=1.43),
    "mul8u_96D": HardwareCost(power_mw=0.381, area_um2=700.0, delay_ns=1.42),
    "mul8u_12N4": HardwareCost(power_mw=0.369, area_um2=690.0, delay_ns=1.41),
    "mul8u_17KS": HardwareCost(power_mw=0.301, area_um2=610.0, delay_ns=1.38),
    "mul8u_1AGV": HardwareCost(power_mw=0.322, area_um2=640.0, delay_ns=1.37),
    "mul8u_FTA": HardwareCost(power_mw=0.201, area_um2=450.0, delay_ns=1.20),
    "mul8u_JQQ": HardwareCost(power_mw=0.245, area_um2=520.0, delay_ns=1.25),
    "mul8u_L40": HardwareCost(power_mw=0.176, area_um2=410.0, delay_ns=1.15),
    "mul8u_JV3": HardwareCost(power_mw=0.212, area_um2=470.0, delay_ns=1.22),
    "mul8u_2P7": HardwareCost(power_mw=0.355, area_um2=665.0, delay_ns=1.40),
    "mul8u_KEM": HardwareCost(power_mw=0.340, area_um2=650.0, delay_ns=1.39),
    "mul8u_150Q": HardwareCost(power_mw=0.310, area_um2=620.0, delay_ns=1.36),
    "mul8u_14VP": HardwareCost(power_mw=0.325, area_um2=635.0, delay_ns=1.37),
    "mul8u_QJD": HardwareCost(power_mw=0.318, area_um2=625.0, delay_ns=1.37),
    "mul8u_1446": HardwareCost(power_mw=0.290, area_um2=590.0, delay_ns=1.33),
    "mul8u_GS2": HardwareCost(power_mw=0.305, area_um2=600.0, delay_ns=1.34),
    "mul8s_L1G": HardwareCost(power_mw=0.270, area_um2=560.0, delay_ns=1.30),
    "mul8s_L2H": HardwareCost(power_mw=0.255, area_um2=540.0, delay_ns=1.28),
    "guesmi_ama1_l8": HardwareCost(power_mw=0.280, area_um2=575.0, delay_ns=1.32),
    "guesmi_ama2_l6": HardwareCost(power_mw=0.295, area_um2=585.0, delay_ns=1.33),
    "guesmi_ama3_l8": HardwareCost(power_mw=0.265, area_um2=555.0, delay_ns=1.30),
}

#: fallback cost for multipliers without an entry (exact-multiplier figures)
DEFAULT_COST = HardwareCost(power_mw=0.391, area_um2=710.0, delay_ns=1.43)


def hardware_cost(name: str) -> HardwareCost:
    """Return the hardware cost of a named multiplier (default if unknown)."""
    return HARDWARE_COSTS.get(name, DEFAULT_COST)


def energy_per_mac_pj(name: str) -> float:
    """Energy of one multiply-accumulate, in picojoules, for a named multiplier."""
    return hardware_cost(name).energy_pj()


def model_multiply_energy_pj(name: str, multiply_counts: Iterable[int]) -> float:
    """Total multiplication energy for a model given per-layer multiply counts."""
    per_op = energy_per_mac_pj(name)
    return float(sum(int(count) for count in multiply_counts) * per_op)


def energy_saving_percent(name: str, baseline: str = "mul8u_1JFF") -> float:
    """Relative energy saving of ``name`` against a baseline multiplier."""
    base = energy_per_mac_pj(baseline)
    this = energy_per_mac_pj(name)
    return float((base - this) / base * 100.0)
