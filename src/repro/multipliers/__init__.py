"""Approximate multiplier library (the EvoApprox8b substitute).

Public surface:

* :class:`repro.multipliers.base.Multiplier` — the multiplier interface
  (behavioural evaluation + cached product LUT);
* behavioural families in :mod:`repro.multipliers.behavioral`;
* named EvoApprox-style instances in :mod:`repro.multipliers.evoapprox`;
* the registry helpers :func:`get_multiplier`, :data:`LENET_MULTIPLIERS`,
  :data:`ALEXNET_MULTIPLIERS` in :mod:`repro.multipliers.library`;
* error metrics in :mod:`repro.multipliers.metrics`;
* the hardware-cost model in :mod:`repro.multipliers.energy`.
"""

from repro.multipliers.base import (
    CircuitMultiplier,
    LUTMultiplier,
    Multiplier,
    clear_global_lut_cache,
    global_lut_cache_size,
)
from repro.multipliers.behavioral import (
    BrokenCarryMultiplier,
    DrumMultiplier,
    ExactMultiplier,
    LowerColumnOrMultiplier,
    MitchellLogMultiplier,
    NoisyLSBMultiplier,
    OperandTruncationMultiplier,
    PartialProductTruncationMultiplier,
)
from repro.multipliers.energy import (
    HARDWARE_COSTS,
    HardwareCost,
    energy_per_mac_pj,
    energy_saving_percent,
    hardware_cost,
    model_multiply_energy_pj,
)
from repro.multipliers.library import (
    ACCURATE_MULTIPLIER,
    ALEXNET_MULTIPLIERS,
    LENET_MULTIPLIERS,
    alexnet_set,
    clear_cache,
    error_reports,
    get_multiplier,
    lenet_set,
    list_multipliers,
    paper_label,
    resolve_name,
)
from repro.multipliers.metrics import (
    MultiplierErrorReport,
    error_probability,
    error_report,
    mean_absolute_error,
    mean_error,
    mean_relative_error,
    worst_case_error,
)
from repro.multipliers.selection import (
    MultiplierScreeningReport,
    MultiplierScreeningResult,
    rank_by_energy_at_accuracy,
    select_resilient_multipliers,
)
from repro.multipliers.signed import SignedMultiplierView, signed_multiply

__all__ = [
    "Multiplier",
    "LUTMultiplier",
    "CircuitMultiplier",
    "ExactMultiplier",
    "OperandTruncationMultiplier",
    "PartialProductTruncationMultiplier",
    "LowerColumnOrMultiplier",
    "BrokenCarryMultiplier",
    "MitchellLogMultiplier",
    "DrumMultiplier",
    "NoisyLSBMultiplier",
    "MultiplierErrorReport",
    "error_report",
    "error_reports",
    "mean_absolute_error",
    "worst_case_error",
    "mean_relative_error",
    "error_probability",
    "mean_error",
    "signed_multiply",
    "SignedMultiplierView",
    "select_resilient_multipliers",
    "rank_by_energy_at_accuracy",
    "MultiplierScreeningReport",
    "MultiplierScreeningResult",
    "get_multiplier",
    "resolve_name",
    "list_multipliers",
    "lenet_set",
    "alexnet_set",
    "paper_label",
    "clear_cache",
    "clear_global_lut_cache",
    "global_lut_cache_size",
    "LENET_MULTIPLIERS",
    "ALEXNET_MULTIPLIERS",
    "ACCURATE_MULTIPLIER",
    "HardwareCost",
    "HARDWARE_COSTS",
    "hardware_cost",
    "energy_per_mac_pj",
    "energy_saving_percent",
    "model_multiply_energy_pj",
]
