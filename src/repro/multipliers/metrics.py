"""Error metrics for approximate multipliers.

All metrics are computed from the full product look-up table, following the
definitions used by the EvoApprox8b library (Mrazek et al., DATE 2017):

* MAE  — mean absolute error, normalised by the maximum exact product and
  reported as a percentage (this is the number quoted in the paper, e.g.
  "MAE 17KS = 0.52%").
* WCE  — worst-case absolute error (also normalised, in percent).
* MRE  — mean relative error over non-zero exact products (in percent).
* error probability — fraction of operand pairs with a wrong product.
* mean error (bias) — mean signed error, normalised, in percent; negative
  values mean the multiplier under-estimates on average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multipliers.base import Multiplier


@dataclass(frozen=True)
class MultiplierErrorReport:
    """Summary of a multiplier's arithmetic error characteristics."""

    name: str
    bit_width: int
    mae_percent: float
    wce_percent: float
    mre_percent: float
    error_probability: float
    mean_error_percent: float

    def as_dict(self) -> dict:
        """Return the report as a plain dictionary (JSON-friendly)."""
        return {
            "name": self.name,
            "bit_width": self.bit_width,
            "mae_percent": self.mae_percent,
            "wce_percent": self.wce_percent,
            "mre_percent": self.mre_percent,
            "error_probability": self.error_probability,
            "mean_error_percent": self.mean_error_percent,
        }


def mean_absolute_error(multiplier: Multiplier) -> float:
    """MAE as a percentage of the maximum exact product."""
    error = np.abs(multiplier.error_lut().astype(np.float64))
    return float(error.mean() / multiplier.product_max * 100.0)


def worst_case_error(multiplier: Multiplier) -> float:
    """Worst-case absolute error as a percentage of the maximum exact product."""
    error = np.abs(multiplier.error_lut().astype(np.float64))
    return float(error.max() / multiplier.product_max * 100.0)


def mean_relative_error(multiplier: Multiplier) -> float:
    """Mean relative error (percent) over operand pairs with non-zero product."""
    exact = multiplier.exact_lut().astype(np.float64)
    error = np.abs(multiplier.error_lut().astype(np.float64))
    mask = exact > 0
    if not np.any(mask):
        return 0.0
    return float((error[mask] / exact[mask]).mean() * 100.0)


def error_probability(multiplier: Multiplier) -> float:
    """Fraction of operand pairs whose product is wrong."""
    return float(np.mean(multiplier.error_lut() != 0))


def mean_error(multiplier: Multiplier) -> float:
    """Mean signed error (bias) as a percentage of the maximum exact product."""
    error = multiplier.error_lut().astype(np.float64)
    return float(error.mean() / multiplier.product_max * 100.0)


def error_report(multiplier: Multiplier) -> MultiplierErrorReport:
    """Compute the full :class:`MultiplierErrorReport` for a multiplier."""
    return MultiplierErrorReport(
        name=multiplier.name,
        bit_width=multiplier.bit_width,
        mae_percent=mean_absolute_error(multiplier),
        wce_percent=worst_case_error(multiplier),
        mre_percent=mean_relative_error(multiplier),
        error_probability=error_probability(multiplier),
        mean_error_percent=mean_error(multiplier),
    )
