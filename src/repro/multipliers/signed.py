"""Signed multiplication on top of unsigned approximate multipliers.

The EvoApprox multipliers used by the paper are unsigned.  Quantized DNN
inference needs signed x unsigned (weights x activations) and occasionally
signed x signed products; the standard accelerator construction — and the one
TFApprox uses — is sign-magnitude: the product magnitude goes through the
unsigned approximate multiplier and the sign is re-applied afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.multipliers.base import Multiplier


def signed_multiply(multiplier: Multiplier, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sign-magnitude product of (possibly signed) integer arrays ``a`` and ``b``.

    Magnitudes must fit in the multiplier's operand range.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    mag_a = np.abs(a)
    mag_b = np.abs(b)
    limit = multiplier.operand_max
    if np.any(mag_a > limit) or np.any(mag_b > limit):
        raise ConfigurationError(
            f"operand magnitudes exceed the {multiplier.bit_width}-bit range of "
            f"{multiplier.name}"
        )
    sign = np.sign(a) * np.sign(b)
    return sign * multiplier.multiply(mag_a, mag_b)


class SignedMultiplierView:
    """Callable wrapper giving a signed interface to an unsigned multiplier."""

    def __init__(self, multiplier: Multiplier) -> None:
        self.multiplier = multiplier
        self.name = f"{multiplier.name}_signed"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return signed_multiply(self.multiplier, a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SignedMultiplierView({self.multiplier.name!r})"
