"""Behavioural approximate-multiplier families.

These are parametric, well-understood approximation schemes from the
approximate-arithmetic literature.  Named EvoApprox-like instances (see
:mod:`repro.multipliers.evoapprox`) are built by picking a family and a
parameter set whose measured error profile matches the role the multiplier
plays in the paper (see DESIGN.md substitution table).

Families
--------
ExactMultiplier
    The accurate reference (``a * b``).
OperandTruncationMultiplier
    Zeroes the ``k`` least-significant bits of each operand before an exact
    multiplication (always under-estimates).
PartialProductTruncationMultiplier
    Drops all partial-product bits in the ``cut`` least-significant columns
    (always under-estimates, much milder than operand truncation).
LowerColumnOrMultiplier
    Replaces the sum of each of the ``cut`` least-significant columns with a
    logical OR of its partial products (under-estimates for busy columns).
BrokenCarryMultiplier
    Accumulates partial-product rows with a carry chain that is cut at a
    fixed column, losing carries that would cross the boundary.
MitchellLogMultiplier
    Mitchell's logarithmic multiplier (piecewise-linear log/antilog
    approximation; systematically under-estimates, large relative error).
DrumMultiplier
    Dynamic-range unbiased multiplier: keeps the ``k`` leading bits of each
    operand (with steering-bit rounding), multiplies exactly and shifts back.
NoisyLSBMultiplier
    Deterministic pseudo-random bit flips in the low result bits, modelling
    an aggressively rewired partial-product tree with sign-balanced errors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.multipliers.base import Multiplier


class ExactMultiplier(Multiplier):
    """The accurate multiplier (paper label 1JFF / M1 / A1)."""

    def __init__(self, name: str = "exact", bit_width: int = 8) -> None:
        super().__init__(name, bit_width)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b


class OperandTruncationMultiplier(Multiplier):
    """Exact multiplication of operands with truncated LSBs."""

    def __init__(
        self, name: str, truncate_a: int, truncate_b: int, bit_width: int = 8
    ) -> None:
        super().__init__(name, bit_width)
        for label, value in (("truncate_a", truncate_a), ("truncate_b", truncate_b)):
            if not 0 <= value < bit_width:
                raise ConfigurationError(
                    f"{label} must be in [0, {bit_width - 1}], got {value}"
                )
        self.truncate_a = truncate_a
        self.truncate_b = truncate_b

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask_a = ~((1 << self.truncate_a) - 1)
        mask_b = ~((1 << self.truncate_b) - 1)
        return (a & mask_a) * (b & mask_b)


class PartialProductTruncationMultiplier(Multiplier):
    """Drops the partial-product bits of the ``cut`` least-significant columns."""

    def __init__(self, name: str, cut_columns: int, bit_width: int = 8) -> None:
        super().__init__(name, bit_width)
        if not 0 <= cut_columns <= 2 * bit_width:
            raise ConfigurationError(
                f"cut_columns must be in [0, {2 * bit_width}], got {cut_columns}"
            )
        self.cut_columns = cut_columns

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        for i in range(self.bit_width):
            a_bit = (a >> i) & 1
            for j in range(self.bit_width):
                column = i + j
                if column < self.cut_columns:
                    continue
                b_bit = (b >> j) & 1
                result += (a_bit & b_bit).astype(np.int64) << column
        return result


class LowerColumnOrMultiplier(Multiplier):
    """OR-compresses the ``cut`` least-significant partial-product columns."""

    def __init__(self, name: str, cut_columns: int, bit_width: int = 8) -> None:
        super().__init__(name, bit_width)
        if not 0 <= cut_columns <= 2 * bit_width:
            raise ConfigurationError(
                f"cut_columns must be in [0, {2 * bit_width}], got {cut_columns}"
            )
        self.cut_columns = cut_columns

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        shape = np.broadcast(a, b).shape
        result = np.zeros(shape, dtype=np.int64)
        for column in range(2 * self.bit_width):
            column_sum = np.zeros(shape, dtype=np.int64)
            column_or = np.zeros(shape, dtype=np.int64)
            for i in range(self.bit_width):
                j = column - i
                if not 0 <= j < self.bit_width:
                    continue
                bit = ((a >> i) & 1) & ((b >> j) & 1)
                column_sum += bit
                column_or |= bit
            if column < self.cut_columns:
                result += column_or << column
            else:
                result += column_sum << column
        return result


class BrokenCarryMultiplier(Multiplier):
    """Accumulates partial-product rows with a carry chain cut at ``segment``.

    The accumulation of each partial-product row is performed as an exact
    addition within the low segment (bits ``< segment``) and within the high
    segment, but the carry from the low segment into the high segment is
    discarded — the behaviour of a speculative/segmented adder that never
    resolves its worst-case carry.
    """

    def __init__(self, name: str, segment: int, bit_width: int = 8) -> None:
        super().__init__(name, bit_width)
        if not 1 <= segment < 2 * bit_width:
            raise ConfigurationError(
                f"segment must be in [1, {2 * bit_width - 1}], got {segment}"
            )
        self.segment = segment

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        low_mask = (1 << self.segment) - 1
        accumulator = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        for row in range(self.bit_width):
            row_value = (a * ((b >> row) & 1)) << row
            low = (accumulator & low_mask) + (row_value & low_mask)
            high = (accumulator >> self.segment) + (row_value >> self.segment)
            # the carry out of the low segment (low >> segment) is dropped
            accumulator = ((high << self.segment) | (low & low_mask)).astype(np.int64)
        return accumulator


class MitchellLogMultiplier(Multiplier):
    """Mitchell's logarithmic multiplier (1962).

    ``log2(x)`` is approximated as ``k + m`` where ``k`` is the position of
    the leading one and ``m`` the fractional mantissa; the product is
    reconstructed from the summed approximate logarithms.  Errors are always
    under-estimates with a worst-case relative error of about 11%.
    """

    def __init__(self, name: str = "mitchell", bit_width: int = 8) -> None:
        super().__init__(name, bit_width)

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = a.astype(np.float64)
        b = b.astype(np.float64)
        result = np.zeros(np.broadcast(a, b).shape, dtype=np.float64)
        nonzero = (a > 0) & (b > 0)
        if np.any(nonzero):
            an = a[nonzero]
            bn = b[nonzero]
            ka = np.floor(np.log2(an))
            kb = np.floor(np.log2(bn))
            ma = an / np.exp2(ka) - 1.0
            mb = bn / np.exp2(kb) - 1.0
            msum = ma + mb
            carry = msum >= 1.0
            approx = np.where(
                carry,
                np.exp2(ka + kb + 1) * msum,
                np.exp2(ka + kb) * (1.0 + msum),
            )
            result[nonzero] = approx
        return np.floor(result).astype(np.int64)


class DrumMultiplier(Multiplier):
    """DRUM-style dynamic-range unbiased multiplier (Hashemi et al., 2015).

    Keeps the ``k`` most significant bits starting at the leading one of each
    operand, forces the discarded part to its expected value (steering bit),
    multiplies the reduced operands exactly and shifts the result back.
    Errors are approximately zero-mean.
    """

    def __init__(self, name: str, k: int = 4, bit_width: int = 8) -> None:
        super().__init__(name, bit_width)
        if not 2 <= k <= bit_width:
            raise ConfigurationError(f"k must be in [2, {bit_width}], got {k}")
        self.k = k

    def _reduce(self, x: np.ndarray) -> tuple:
        """Return (reduced operand, left-shift amount) for each element."""
        x = x.astype(np.int64)
        leading = np.zeros_like(x)
        nonzero = x > 0
        leading[nonzero] = np.floor(np.log2(x[nonzero])).astype(np.int64)
        shift = np.maximum(leading - (self.k - 1), 0)
        reduced = x >> shift
        # steering bit: set the LSB of the truncated part's expected value
        steer = np.where(shift > 0, 1, 0)
        reduced = (reduced | steer).astype(np.int64)
        return reduced, shift

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ra, sa = self._reduce(a)
        rb, sb = self._reduce(b)
        return (ra * rb) << (sa + sb)


class NoisyLSBMultiplier(Multiplier):
    """Deterministic pseudo-random perturbation of the exact product.

    The exact product's low bits are XOR-ed with a hash of the operand pair,
    bounded to ``max_error``.  This family models aggressively restructured
    partial-product trees whose errors look input-dependent and sign-balanced
    — the "masked or unmasked" error traversal the paper discusses.
    """

    def __init__(
        self, name: str, max_error: int, seed: int = 0x9E3779B1, bit_width: int = 8
    ) -> None:
        super().__init__(name, bit_width)
        if max_error < 1:
            raise ConfigurationError(f"max_error must be >= 1, got {max_error}")
        self.max_error = max_error
        self.seed = seed

    def _compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        exact = a * b
        # cheap integer hash of the operand pair (deterministic, data dependent)
        h = (a * np.int64(2654435761) + b * np.int64(40503) + np.int64(self.seed))
        h = np.bitwise_xor(h, h >> 13) & 0xFFFFFFFF
        magnitude = (h % (self.max_error + 1)).astype(np.int64)
        sign = np.where((h >> 7) & 1 == 1, 1, -1).astype(np.int64)
        # only perturb when both operands are "busy" (non-zero), as real
        # approximate partial-product trees produce exact zeros for zero inputs
        busy = (a > 0) & (b > 0)
        approx = exact + np.where(busy, sign * magnitude, 0)
        return np.clip(approx, 0, None)
