"""Named approximate-multiplier instances standing in for EvoApprox8b.

The paper selects unsigned 8-bit multipliers from the EvoApprox8b library
(Mrazek et al., DATE 2017) and refers to them by their library suffix (1JFF,
96D, 12N4, ...).  The original library ships Verilog/C netlists that are not
available offline, so each paper label is bound here to a behavioural or
circuit-backed stand-in (see DESIGN.md substitution table) chosen so that

* the accurate multiplier (1JFF) is bit-exact,
* the *ordering* of mean-absolute-error across the LeNet-5 set (M1..M9) and
  the AlexNet set (A1..A8) matches the ordering implied by the paper's
  reported MAEs and zero-perturbation accuracies, and
* the error characters are diverse (under-estimating, unbiased, and
  input-dependent "masked/unmasked" errors), which is the property the
  paper's analysis actually exercises.

The measured error reports of every instance are produced by
``repro.multipliers.metrics.error_report`` and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.circuits.adders import (
    ApproximateMirrorAdder1,
    ApproximateMirrorAdder2,
    ApproximateMirrorAdder3,
)
from repro.circuits.array_multiplier import (
    ArrayMultiplierCircuit,
    CompressorTreeMultiplierCircuit,
)
from repro.circuits.compressors import (
    ApproximateCompressor42A,
    ApproximateCompressor42B,
)
from repro.multipliers.base import CircuitMultiplier, Multiplier
from repro.multipliers.behavioral import (
    BrokenCarryMultiplier,
    DrumMultiplier,
    ExactMultiplier,
    LowerColumnOrMultiplier,
    MitchellLogMultiplier,
    NoisyLSBMultiplier,
    OperandTruncationMultiplier,
    PartialProductTruncationMultiplier,
)

#: factory functions for every named multiplier, keyed by EvoApprox-style label
_FACTORIES: Dict[str, Callable[[], Multiplier]] = {
    # ----------------------------------------------------------- exact
    "mul8u_1JFF": lambda: ExactMultiplier("mul8u_1JFF"),
    # ------------------------------------------- LeNet-5 set (M2..M9)
    # M2 — negligible error: two truncated partial-product columns.
    "mul8u_96D": lambda: PartialProductTruncationMultiplier("mul8u_96D", cut_columns=2),
    # M3 — negligible error: three truncated partial-product columns.
    "mul8u_12N4": lambda: PartialProductTruncationMultiplier("mul8u_12N4", cut_columns=3),
    # M4 — small error, under-estimating: operand truncation of 2 LSBs.
    "mul8u_17KS": lambda: OperandTruncationMultiplier("mul8u_17KS", truncate_a=2, truncate_b=2),
    # M5 — small error: seven truncated partial-product columns.
    "mul8u_1AGV": lambda: PartialProductTruncationMultiplier("mul8u_1AGV", cut_columns=7),
    # M6 — large error, under-estimating: compressor tree with approximate
    #      4:2 compressors over the 12 least-significant columns.
    "mul8u_FTA": lambda: CircuitMultiplier(
        "mul8u_FTA",
        CompressorTreeMultiplierCircuit(
            width=8, compressor=ApproximateCompressor42A(), approx_columns=12
        ),
    ),
    # M7 — moderate error, roughly unbiased: DRUM-4 dynamic range multiplier.
    "mul8u_JQQ": lambda: DrumMultiplier("mul8u_JQQ", k=4),
    # M8 — largest accuracy impact of the LeNet set: array multiplier whose 8
    #      least-significant columns use approximate mirror adder 2 (the
    #      Guesmi-style construction pushed further); over-estimating bias.
    "mul8u_L40": lambda: CircuitMultiplier(
        "mul8u_L40",
        ArrayMultiplierCircuit(
            width=8, approx_cell=ApproximateMirrorAdder2(), approx_columns=8
        ),
    ),
    # M9 — moderate error, input-dependent: compressor tree with OR-style
    #      approximate 4:2 compressors over the 11 least-significant columns.
    "mul8u_JV3": lambda: CircuitMultiplier(
        "mul8u_JV3",
        CompressorTreeMultiplierCircuit(
            width=8, compressor=ApproximateCompressor42B(), approx_columns=11
        ),
    ),
    # ------------------------------------------- AlexNet set (A2..A8)
    # All AlexNet multipliers are mild (the paper's Fig. 7 shows accuracies
    # within 2% of the accurate model at eps = 0).
    "mul8u_2P7": lambda: PartialProductTruncationMultiplier("mul8u_2P7", cut_columns=4),
    "mul8u_KEM": lambda: PartialProductTruncationMultiplier("mul8u_KEM", cut_columns=5),
    "mul8u_150Q": lambda: LowerColumnOrMultiplier("mul8u_150Q", cut_columns=8),
    "mul8u_14VP": lambda: PartialProductTruncationMultiplier("mul8u_14VP", cut_columns=6),
    "mul8u_QJD": lambda: OperandTruncationMultiplier("mul8u_QJD", truncate_a=2, truncate_b=1),
    "mul8u_1446": lambda: DrumMultiplier("mul8u_1446", k=5),
    "mul8u_GS2": lambda: BrokenCarryMultiplier("mul8u_GS2", segment=9),
    # ---------------------------------- motivational case study (Fig. 1)
    # L1G / L2H play the role of the signed EvoApprox multipliers used in the
    # motivational FFNN / LeNet-5 comparison; moderate, input-dependent error.
    "mul8s_L1G": lambda: NoisyLSBMultiplier("mul8s_L1G", max_error=96),
    "mul8s_L2H": lambda: MitchellLogMultiplier("mul8s_L2H"),
    # ------------------------------- defensive-approximation baseline
    # Array multipliers with approximate mirror adders in the low columns —
    # the construction of Guesmi et al. (ASPLOS 2021), included so the
    # baseline the paper argues against can be reproduced directly.
    "guesmi_ama1_l8": lambda: CircuitMultiplier(
        "guesmi_ama1_l8",
        ArrayMultiplierCircuit(
            width=8, approx_cell=ApproximateMirrorAdder1(), approx_columns=8
        ),
    ),
    "guesmi_ama2_l6": lambda: CircuitMultiplier(
        "guesmi_ama2_l6",
        ArrayMultiplierCircuit(
            width=8, approx_cell=ApproximateMirrorAdder2(), approx_columns=6
        ),
    ),
    "guesmi_ama3_l8": lambda: CircuitMultiplier(
        "guesmi_ama3_l8",
        ArrayMultiplierCircuit(
            width=8, approx_cell=ApproximateMirrorAdder3(), approx_columns=8
        ),
    ),
}


def available_names() -> list:
    """Names of every registered EvoApprox-style multiplier."""
    return sorted(_FACTORIES)


def build(name: str) -> Multiplier:
    """Instantiate a named multiplier (a fresh object on every call)."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        known = ", ".join(available_names())
        raise KeyError(f"unknown multiplier {name!r}; known: {known}") from exc
    return factory()
