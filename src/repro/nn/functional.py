"""Low-level tensor operations shared by the layers.

All image tensors use the NHWC layout ``(batch, height, width, channels)``.
``im2col``/``col2im`` are implemented with small Python loops over the kernel
offsets (at most ``kh * kw`` iterations), which keeps them simple, exactly
invertible, and fast enough for the model sizes used in the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeError


def _checked_out(out: np.ndarray, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Validate a caller-provided output buffer (shape and dtype must match)."""
    if out.shape != tuple(shape) or out.dtype != np.dtype(dtype):
        raise ShapeError(
            f"out buffer has shape {out.shape} dtype {out.dtype}, expected "
            f"{tuple(shape)} {np.dtype(dtype)}"
        )
    return out


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nhwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NHWC tensor."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (padding, padding), (padding, padding), (0, 0)), mode="constant"
    )


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Extract convolution patches from an NHWC tensor.

    Returns an array of shape ``(N, OH, OW, kernel_h * kernel_w * C)`` whose
    last axis is ordered kernel-row-major then channel (matching the weight
    flattening used by :class:`repro.nn.layers.conv.Conv2D`).  ``out``, when
    given, receives the patches in place (the training runtime passes a
    workspace buffer); every element is written, so its prior contents never
    leak through.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects an NHWC tensor, got shape {x.shape}")
    batch, height, width, channels = x.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    x_padded = pad_nhwc(x, padding)
    shape = (batch, out_h, out_w, kernel_h * kernel_w * channels)
    if out is None:
        cols = np.empty(shape, dtype=x.dtype)
    else:
        cols = _checked_out(out, shape, x.dtype)
    for i in range(kernel_h):
        for j in range(kernel_w):
            patch = x_padded[
                :, i : i + out_h * stride : stride, j : j + out_w * stride : stride, :
            ]
            offset = (i * kernel_w + j) * channels
            cols[..., offset : offset + channels] = patch
    return cols


def im2col_strided(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: np.ndarray,
    padded: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused single-copy :func:`im2col` (bit-identical, arena path).

    Instead of ``kernel_h * kernel_w`` strided slice copies, the patch
    matrix is materialised in one multi-dimensional strided copy from a
    sliding-window view — a pure reordering of the same elements, so the
    result is bit-identical to the loop.  ``out`` is mandatory (the caller
    owns the buffer); ``padded``, when given, receives the zero-padded
    input (its border bands are re-zeroed here, replacing the ``np.pad``
    allocation and full copy).
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects an NHWC tensor, got shape {x.shape}")
    batch, height, width, channels = x.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    shape = (batch, out_h, out_w, kernel_h * kernel_w * channels)
    cols = _checked_out(out, shape, x.dtype)
    if padding == 0 or padded is None:
        x_padded = pad_nhwc(x, padding)
    else:
        pad = padding
        x_padded = _checked_out(
            padded,
            (batch, height + 2 * pad, width + 2 * pad, channels),
            x.dtype,
        )
        x_padded[:, :pad].fill(0.0)
        x_padded[:, -pad:].fill(0.0)
        x_padded[:, pad:-pad, :pad].fill(0.0)
        x_padded[:, pad:-pad, -pad:].fill(0.0)
        np.copyto(x_padded[:, pad:-pad, pad:-pad, :], x)
    windows = np.lib.stride_tricks.sliding_window_view(
        x_padded, (kernel_h, kernel_w), axis=(1, 2)
    )[:, ::stride, ::stride]
    # target layout of the last cols axis is (kernel row, kernel col,
    # channel); the window view carries (channel, kernel row, kernel col)
    np.copyto(
        cols.reshape(batch, out_h, out_w, kernel_h, kernel_w, channels),
        windows.transpose(0, 1, 2, 4, 5, 3),
    )
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scatter-add patches back into an NHWC tensor (the adjoint of im2col).

    ``out``, when given, must have the *padded* spatial shape
    ``(N, H + 2p, W + 2p, C)``; it is zeroed here before the scatter-add,
    and the returned array is the unpadded view into it.

    When a compiled backend resolved (see :mod:`repro.axnn.native`) and both
    arrays are C-contiguous float64 — which is what the training arena's
    ``out=`` workspaces always hand in — the scatter-add runs as one native
    pass over the padded image instead of ``kh * kw`` strided
    read-modify-write sweeps.  The native formulation adds each output
    element's contributions in the same ascending kernel-offset order as
    the loop below, so the result is bit-identical.
    """
    batch, height, width, channels = input_shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    expected = (batch, out_h, out_w, kernel_h * kernel_w * channels)
    if cols.shape != expected:
        raise ShapeError(f"col2im expects shape {expected}, got {cols.shape}")
    padded_shape = (batch, height + 2 * padding, width + 2 * padding, channels)
    if out is None:
        x_padded = np.zeros(padded_shape, dtype=cols.dtype)
    else:
        x_padded = _checked_out(out, padded_shape, cols.dtype)
        x_padded.fill(0.0)
    backend = None
    if (
        cols.dtype == np.float64
        and x_padded.dtype == np.float64
        and cols.flags["C_CONTIGUOUS"]
        and x_padded.flags["C_CONTIGUOUS"]
    ):
        # imported lazily: repro.axnn.native depends only on numpy and
        # repro.errors, so this cannot cycle back into repro.nn
        from repro.axnn.native import get_backend

        backend = get_backend()
    if backend is not None:
        backend.col2im_add(
            cols, x_padded, kernel_h, kernel_w, stride, out_h, out_w
        )
    else:
        for i in range(kernel_h):
            for j in range(kernel_w):
                offset = (i * kernel_w + j) * channels
                x_padded[
                    :,
                    i : i + out_h * stride : stride,
                    j : j + out_w * stride : stride,
                    :,
                ] += cols[..., offset : offset + channels]
    if padding == 0:
        return x_padded
    return x_padded[:, padding:-padding, padding:-padding, :]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    normalizer: Optional[int] = None,
    grad_out: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Fused softmax cross-entropy: loss value and logits gradient together.

    One shifted-exp pass replaces the three the unfused pair pays
    (``log_softmax`` for the value, ``softmax`` + ``one_hot`` for the
    gradient), and the results are bit-identical to
    ``CrossEntropyLoss.value``/``gradient``: the same float64 operations run
    in the same order per element — ``x - 0.0`` is exact, so subtracting the
    one-hot target is realised as a fancy-indexed decrement, and dividing
    after the subtraction preserves the unfused ``(probs - one_hot) / n``
    rounding.

    ``normalizer`` overrides the averaging denominator (the data-parallel
    trainer normalises each micro-batch by the full mini-batch size, so the
    canonical-order sum over micro-batches reproduces the batch loss and
    gradient).  The returned value is ``-sum(log p_target) / normalizer``.
    ``grad_out``, when given, receives the gradient in place.
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D (N, classes), got {logits.shape}")
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets must be a length-{logits.shape[0]} vector, got {targets.shape}"
        )
    n, num_classes = logits.shape
    if np.any(targets < 0) or np.any(targets >= num_classes):
        raise ShapeError(f"labels must lie in [0, {num_classes - 1}]")
    if normalizer is None:
        normalizer = n
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    sum_exp = np.sum(exp, axis=-1, keepdims=True)
    rows = np.arange(n)
    picked = shifted[rows, targets] - np.log(sum_exp)[rows, 0]
    value = float(-(picked.sum() / normalizer))
    if grad_out is None:
        grad = np.divide(exp, sum_exp, out=exp)
    else:
        grad = np.divide(exp, sum_exp, out=_checked_out(grad_out, logits.shape, exp.dtype))
    grad[rows, targets] -= 1.0
    np.divide(grad, normalizer, out=grad)
    return value, grad


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be a 1-D vector, got shape {labels.shape}")
    if np.any(labels < 0) or np.any(labels >= num_classes):
        raise ShapeError(f"labels must lie in [0, {num_classes - 1}]")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
