"""Low-level tensor operations shared by the layers.

All image tensors use the NHWC layout ``(batch, height, width, channels)``.
``im2col``/``col2im`` are implemented with small Python loops over the kernel
offsets (at most ``kh * kw`` iterations), which keeps them simple, exactly
invertible, and fast enough for the model sizes used in the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nhwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NHWC tensor."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (padding, padding), (padding, padding), (0, 0)), mode="constant"
    )


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Extract convolution patches from an NHWC tensor.

    Returns an array of shape ``(N, OH, OW, kernel_h * kernel_w * C)`` whose
    last axis is ordered kernel-row-major then channel (matching the weight
    flattening used by :class:`repro.nn.layers.conv.Conv2D`).
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects an NHWC tensor, got shape {x.shape}")
    batch, height, width, channels = x.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    x_padded = pad_nhwc(x, padding)
    cols = np.empty(
        (batch, out_h, out_w, kernel_h * kernel_w * channels), dtype=x.dtype
    )
    for i in range(kernel_h):
        for j in range(kernel_w):
            patch = x_padded[
                :, i : i + out_h * stride : stride, j : j + out_w * stride : stride, :
            ]
            offset = (i * kernel_w + j) * channels
            cols[..., offset : offset + channels] = patch
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add patches back into an NHWC tensor (the adjoint of im2col)."""
    batch, height, width, channels = input_shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    expected = (batch, out_h, out_w, kernel_h * kernel_w * channels)
    if cols.shape != expected:
        raise ShapeError(f"col2im expects shape {expected}, got {cols.shape}")
    x_padded = np.zeros(
        (batch, height + 2 * padding, width + 2 * padding, channels), dtype=cols.dtype
    )
    for i in range(kernel_h):
        for j in range(kernel_w):
            offset = (i * kernel_w + j) * channels
            x_padded[
                :, i : i + out_h * stride : stride, j : j + out_w * stride : stride, :
            ] += cols[..., offset : offset + channels]
    if padding == 0:
        return x_padded
    return x_padded[:, padding:-padding, padding:-padding, :]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be a 1-D vector, got shape {labels.shape}")
    if np.any(labels < 0) or np.any(labels >= num_classes):
        raise ShapeError(f"labels must lie in [0, {num_classes - 1}]")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
