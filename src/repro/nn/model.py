"""The :class:`Sequential` model container.

A ``Sequential`` model owns an ordered list of layers, builds their
parameters lazily from an input shape, and provides the three capabilities
the paper's methodology needs:

* training (forward + backward + optimizer step, via
  :class:`repro.nn.trainer.Trainer`);
* batched inference (``predict`` / ``predict_classes``); and
* input gradients of a loss (``input_gradient``), which is what the
  gradient-based adversarial attacks consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, NotFittedError, ShapeError
from repro.nn.layers.base import Layer
from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.runtime import WorkerSpec, run_sharded, validate_batch_size

#: shared stateless default loss — the gradient-based attacks differentiate
#: through input_gradient thousands of times per sweep; instantiating a
#: fresh CrossEntropyLoss per call was pure garbage-collector churn
_DEFAULT_LOSS = CrossEntropyLoss()


class Sequential:
    """An ordered stack of layers."""

    def __init__(
        self,
        layers: Optional[Sequence[Layer]] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        name: str = "sequential",
        seed: int = 0,
    ) -> None:
        self.name = name
        self.layers: List[Layer] = list(layers) if layers is not None else []
        self.input_shape: Optional[Tuple[int, ...]] = (
            tuple(input_shape) if input_shape is not None else None
        )
        self._seed = seed
        self._built = False
        if self.input_shape is not None and self.layers:
            self.build(self.input_shape)

    # ---------------------------------------------------------------- build
    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (returns self for chaining)."""
        if self._built:
            raise ConfigurationError("cannot add layers after the model is built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Build every layer's parameters for the given per-sample input shape."""
        if not self.layers:
            raise ConfigurationError("cannot build a model without layers")
        rng = np.random.default_rng(self._seed)
        shape = tuple(input_shape)
        self.input_shape = shape
        for position, layer in enumerate(self.layers):
            if getattr(layer, "auto_named", False):
                # positional names make state dicts of two builds of the same
                # architecture compatible (weight caching, serialization)
                layer.name = f"{type(layer).__name__.lower()}_{position}"
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self.output_shape = shape
        self._built = True

    def _require_built(self) -> None:
        if not self._built:
            raise NotFittedError(
                f"model {self.name!r} is not built; call build(input_shape) first"
            )

    # -------------------------------------------------------------- forward
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass on a batch."""
        self._require_built()
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through every layer (reverse order).

        Inside the training runtime's workspace scope, each intermediate
        gradient is handed back to the arena's scratch pool as soon as the
        next layer has consumed it (unless the layer passed it through as a
        view, e.g. Flatten/inactive Dropout).  The final input gradient is
        never reclaimed here.
        """
        self._require_built()
        grad = grad_output
        for layer in reversed(self.layers):
            next_grad = layer.backward(grad)
            if not np.may_share_memory(next_grad, grad):
                layer._reclaim(grad)
            grad = next_grad
        return grad

    def predict(
        self, x: np.ndarray, batch_size: int = 128, workers: WorkerSpec = None
    ) -> np.ndarray:
        """Batched inference returning the final layer output (e.g. logits).

        Runs under :func:`repro.nn.layers.base.no_grad_cache`: backward
        caches (im2col buffers, layer inputs) are neither stored nor kept,
        so memory stays flat regardless of model depth and batch count.  Use
        ``forward``/``input_gradient`` when gradients are needed.

        ``workers`` shards the batches across threads via
        :func:`repro.nn.runtime.run_sharded` (``"auto"`` = one per core;
        the default reads ``REPRO_DEFAULT_WORKERS``, else 1).  The batch
        slicing never depends on the worker count, so outputs are
        bit-identical for every ``workers`` value.
        """
        self._require_built()
        validate_batch_size(batch_size)
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] == 0:
            return np.zeros((0,) + tuple(self.output_shape), dtype=np.float64)
        return run_sharded(
            lambda batch: self.forward(batch, training=False),
            x,
            batch_size,
            workers=workers,
        )

    def predict_classes(
        self, x: np.ndarray, batch_size: int = 128, workers: WorkerSpec = None
    ) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(
            self.predict(x, batch_size=batch_size, workers=workers), axis=-1
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    # ---------------------------------------------------- attack interface
    def input_gradient(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Optional[Loss] = None,
    ) -> np.ndarray:
        """Gradient of ``loss(model(x), y)`` with respect to the input batch.

        This is the primitive used by the gradient-based adversarial attacks
        (FGM / BIM / PGD).  The model is evaluated in inference mode (no
        dropout noise), matching how Foolbox drives a model.
        """
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        loss = loss if loss is not None else _DEFAULT_LOSS
        logits = self.forward(x, training=False)
        grad_logits = loss.gradient(logits, y)
        return self.backward(grad_logits)

    def loss_and_input_gradient(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Optional[Loss] = None,
    ) -> Tuple[float, np.ndarray]:
        """Return ``(loss value, input gradient)`` in a single pass.

        Uses the loss's fused ``value_and_gradient`` (one shifted-exp pass
        for cross-entropy instead of two), bit-identical to calling
        ``value`` and ``gradient`` separately.
        """
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        loss = loss if loss is not None else _DEFAULT_LOSS
        logits = self.forward(x, training=False)
        value, grad_logits = loss.value_and_gradient(logits, y)
        grad = self.backward(grad_logits)
        return value, grad

    # ------------------------------------------------------------ parameters
    def trainable_layers(self) -> List[Layer]:
        """Layers that own parameters."""
        return [layer for layer in self.layers if layer.trainable]

    def parameter_count(self) -> int:
        """Total number of scalar parameters in the model."""
        return sum(layer.parameter_count() for layer in self.layers)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by ``layer_name/param_name``."""
        self._require_built()
        state = {}
        for layer in self.layers:
            for pname, value in layer.params.items():
                state[f"{layer.name}/{pname}"] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`state_dict` (shapes must match)."""
        self._require_built()
        for layer in self.layers:
            for pname in layer.params:
                key = f"{layer.name}/{pname}"
                if key not in state:
                    raise ShapeError(f"missing parameter {key!r} in state dict")
                value = np.asarray(state[key], dtype=np.float64)
                if value.shape != layer.params[pname].shape:
                    raise ShapeError(
                        f"parameter {key!r} has shape {value.shape}, expected "
                        f"{layer.params[pname].shape}"
                    )
                layer.params[pname] = value.copy()

    # ------------------------------------------------------------ reporting
    def summary(self) -> str:
        """Human-readable architecture summary."""
        self._require_built()
        lines = [f"Model: {self.name}"]
        shape: Tuple[int, ...] = self.input_shape  # type: ignore[assignment]
        lines.append(f"{'layer':<24} {'output shape':<20} {'params':>10}")
        lines.append("-" * 56)
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(
                f"{layer.name:<24} {str(shape):<20} {layer.parameter_count():>10}"
            )
        lines.append("-" * 56)
        lines.append(f"total parameters: {self.parameter_count()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential(name={self.name!r}, layers={len(self.layers)})"
