"""A from-scratch NumPy deep-learning framework.

This is the substitute for the paper's TensorFlow training stack: it provides
exactly what the methodology requires — training the accurate float models,
batched inference, and input gradients for gradient-based attacks.
"""

from repro.nn.engine import (
    FlatParameterView,
    Workspace,
    micro_batch_slices,
    training_replicas,
    validate_data_parallel,
)
from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import CrossEntropyLoss, Loss, MeanSquaredError
from repro.nn.metrics import accuracy, accuracy_percent, confusion_matrix, top_k_accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.runtime import (
    ProcessShardPool,
    available_workers,
    batch_slices,
    resolve_workers,
    run_sharded,
    validate_batch_size,
)
from repro.nn.serialization import dumps_model, load_weights, loads_model, save_weights
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "im2col",
    "col2im",
    "conv_output_size",
    "softmax",
    "log_softmax",
    "one_hot",
    "softmax_cross_entropy",
    "Workspace",
    "FlatParameterView",
    "micro_batch_slices",
    "training_replicas",
    "validate_data_parallel",
    "Layer",
    "Conv2D",
    "Dense",
    "AvgPool2D",
    "MaxPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "BatchNorm",
    "Loss",
    "CrossEntropyLoss",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "Trainer",
    "TrainingHistory",
    "accuracy",
    "accuracy_percent",
    "confusion_matrix",
    "top_k_accuracy",
    "save_weights",
    "load_weights",
    "dumps_model",
    "loads_model",
    "ProcessShardPool",
    "available_workers",
    "batch_slices",
    "resolve_workers",
    "run_sharded",
    "validate_batch_size",
]
