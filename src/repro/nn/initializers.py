"""Weight initializers for the NumPy DNN framework."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initializer (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def glorot_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initializer."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initializer, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out of a dense or convolutional weight shape."""
    if len(shape) == 2:  # dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (kh, kw, in, out)
        receptive = shape[0] * shape[1]
        return receptive * shape[2], receptive * shape[3]
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ConfigurationError(f"unsupported weight shape {shape}")


INITIALIZERS = {
    "zeros": zeros,
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown initializer {name!r}; known: {sorted(INITIALIZERS)}"
        ) from exc
