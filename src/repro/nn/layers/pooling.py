"""Average and max pooling layers (NHWC layout)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.functional import conv_output_size
from repro.nn.layers.base import Layer


class _Pool2D(Layer):
    """Shared geometry for 2-D pooling layers."""

    _transient_attrs = ("_input_shape",)

    def __init__(
        self, pool_size: int = 2, stride: Optional[int] = None, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ConfigurationError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        height, width, channels = input_shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        return (out_h, out_w, channels)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """Stack pooling windows along a new axis: (N, OH, OW, C, k*k)."""
        batch, height, width, channels = x.shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        windows = self._scratch(
            (batch, out_h, out_w, channels, self.pool_size * self.pool_size),
            x.dtype,
        )
        for i in range(self.pool_size):
            for j in range(self.pool_size):
                windows[..., i * self.pool_size + j] = x[
                    :,
                    i : i + out_h * self.stride : self.stride,
                    j : j + out_w * self.stride : self.stride,
                    :,
                ]
        return windows


class AvgPool2D(_Pool2D):
    """Average pooling, as used by the paper's LeNet-5 and AlexNet variants."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got shape {x.shape}")
        self._input_shape = x.shape
        windows = self._windows(x)
        out = windows.mean(
            axis=-1, out=self._buffer("out", windows.shape[:-1], windows.dtype)
        )
        self._reclaim(windows)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, height, width, channels = self._input_shape
        out_h, out_w = grad_output.shape[1], grad_output.shape[2]
        grad_input = self._scratch(self._input_shape, grad_output.dtype)
        grad_input.fill(0.0)
        share = np.divide(
            grad_output,
            self.pool_size * self.pool_size,
            out=self._scratch(grad_output.shape, grad_output.dtype),
        )
        for i in range(self.pool_size):
            for j in range(self.pool_size):
                grad_input[
                    :,
                    i : i + out_h * self.stride : self.stride,
                    j : j + out_w * self.stride : self.stride,
                    :,
                ] += share
        self._reclaim(share)
        return grad_input


class MaxPool2D(_Pool2D):
    """Max pooling."""

    _transient_attrs = ("_input_shape", "_argmax")

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got shape {x.shape}")
        self._input_shape = x.shape
        windows = self._windows(x)
        # The argmax map is activation-sized; skip it in pure inference.
        self._argmax = (
            windows.argmax(
                axis=-1, out=self._buffer("argmax", windows.shape[:-1], np.intp)
            )
            if self._keep_grad_cache(training)
            else None
        )
        out = windows.max(
            axis=-1, out=self._buffer("out", windows.shape[:-1], windows.dtype)
        )
        self._reclaim(windows)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, height, width, channels = self._input_shape
        out_h, out_w = grad_output.shape[1], grad_output.shape[2]
        grad_input = self._scratch(self._input_shape, grad_output.dtype)
        grad_input.fill(0.0)
        mask = self._scratch(self._argmax.shape, bool)
        contribution = self._scratch(grad_output.shape, grad_output.dtype)
        for i in range(self.pool_size):
            for j in range(self.pool_size):
                np.equal(self._argmax, i * self.pool_size + j, out=mask)
                np.multiply(grad_output, mask, out=contribution)
                grad_input[
                    :,
                    i : i + out_h * self.stride : self.stride,
                    j : j + out_w * self.stride : self.stride,
                    :,
                ] += contribution
        self._reclaim(mask)
        self._reclaim(contribution)
        return grad_input


class GlobalAvgPool2D(Layer):
    """Global average pooling over the spatial dimensions."""

    _transient_attrs = ("_input_shape",)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (input_shape[2],)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got shape {x.shape}")
        self._input_shape = x.shape
        return x.mean(
            axis=(1, 2), out=self._buffer("out", (x.shape[0], x.shape[3]), x.dtype)
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, height, width, channels = self._input_shape
        scale = 1.0 / (height * width)
        # broadcast-then-scale, matching the allocating expression bit for bit
        grad_input = self._scratch(self._input_shape, grad_output.dtype)
        np.multiply(
            np.broadcast_to(grad_output[:, None, None, :], self._input_shape),
            scale,
            out=grad_input,
        )
        return grad_input
