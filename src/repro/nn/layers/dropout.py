"""Dropout regularisation layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: active only in training mode.

    In evaluation mode (the mode used for inference and adversarial-example
    generation) the layer is the identity, so input gradients are unaffected.
    """

    _transient_attrs = ("_mask",)

    def __init__(
        self, rate: float, seed: Optional[int] = None, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def data_parallel_safe(self) -> bool:
        # active dropout draws from mutable per-layer RNG state: the draw
        # order would depend on micro-batch scheduling
        return self.rate == 0.0

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # same draws and ops as (rng.random(shape) < keep) / keep, buffered
        draws = self._rng.random(out=self._buffer("draws", x.shape, np.float64))
        kept = np.less(draws, keep, out=self._buffer("kept", x.shape, bool))
        self._mask = np.divide(
            kept, keep, out=self._buffer("mask", x.shape, np.float64)
        )
        return np.multiply(
            x, self._mask, out=self._buffer("out", x.shape, x.dtype)
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return np.multiply(
            grad_output,
            self._mask,
            out=self._scratch(grad_output.shape, grad_output.dtype),
        )
