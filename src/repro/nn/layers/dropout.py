"""Dropout regularisation layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: active only in training mode.

    In evaluation mode (the mode used for inference and adversarial-example
    generation) the layer is the identity, so input gradients are unaffected.
    """

    _transient_attrs = ("_mask",)

    def __init__(
        self, rate: float, seed: Optional[int] = None, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
