"""Batch normalisation layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer


class BatchNorm(Layer):
    """Batch normalisation over the last (feature/channel) axis.

    Works for both dense activations ``(N, F)`` and NHWC feature maps
    ``(N, H, W, C)``; statistics are computed over every axis except the
    last.  Running statistics are tracked for evaluation mode.
    """

    _transient_attrs = ("_std", "_x_hat", "_batch_axes")

    def __init__(
        self,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if not 0.0 < momentum < 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1), got {momentum}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.momentum = momentum
        self.epsilon = epsilon

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        features = input_shape[-1]
        self.params["gamma"] = np.ones(features, dtype=np.float64)
        self.params["beta"] = np.zeros(features, dtype=np.float64)
        self.running_mean = np.zeros(features, dtype=np.float64)
        self.running_var = np.ones(features, dtype=np.float64)
        self.built = True

    def data_parallel_safe(self) -> bool:
        # batch statistics couple samples: per-micro-batch statistics would
        # train a different function
        return False

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        # (x - mean) / std into a workspace buffer, same ops as the
        # allocating expression
        x_hat = self._buffer("x_hat", x.shape, x.dtype)
        np.subtract(x, mean, out=x_hat)
        np.divide(x_hat, std, out=x_hat)
        if self._keep_grad_cache(training):
            self._std = std
            self._x_hat = x_hat
            self._batch_axes = axes
        else:
            self._std = None
            self._x_hat = None
            self._batch_axes = None
        out = self._buffer("out", x.shape, x.dtype)
        np.multiply(self.params["gamma"], x_hat, out=out)
        np.add(out, self.params["beta"], out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        axes = self._batch_axes
        x_hat = self._x_hat
        count = grad_output.size // grad_output.shape[-1]
        self.grads["gamma"] = np.sum(grad_output * x_hat, axis=axes)
        self.grads["beta"] = np.sum(grad_output, axis=axes)
        gamma = self.params["gamma"]
        # standard batch-norm backward (through batch statistics)
        dx_hat = grad_output * gamma
        term1 = dx_hat
        term2 = np.mean(dx_hat, axis=axes, keepdims=True)
        term3 = x_hat * np.mean(dx_hat * x_hat, axis=axes, keepdims=True)
        return (term1 - term2 - term3) / self._std
