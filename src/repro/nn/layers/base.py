"""Layer interface for the NumPy DNN framework.

Each layer implements ``forward`` and ``backward``; trainable layers expose
their parameters and the gradients computed during the last backward pass
through the ``params`` and ``grads`` dictionaries.  Layers cache whatever
they need from the forward pass to compute the backward pass, so a backward
call must always follow the forward call whose inputs it differentiates.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

#: per-thread grad-cache state (see no_grad_cache).  The flag is
#: thread-local so concurrent no_grad_cache contexts in different threads
#: cannot corrupt each other via interleaved save/restore of a shared flag.
#: Note the flag is the only per-thread piece: the caches themselves are
#: shared layer attributes, so gradient work and a sharded predict must not
#: run concurrently on the same model instance (shards clear the backward
#: caches as they traverse the layers).
_GRAD_CACHE_STATE = threading.local()

#: per-thread workspace-arena state (see workspace_scope).  Workspace
#: buffers are reused across mini-batches and are therefore only safe for
#: the single-threaded training step that owns them; the flag scopes their
#: use to exactly that step, so sharded predicts and attack crafting on a
#: workspace-bound model keep allocating fresh arrays as before.
_WORKSPACE_STATE = threading.local()


def workspace_enabled() -> bool:
    """Whether layer forwards/backwards may write into workspace buffers.

    False by default: binding a :class:`repro.nn.engine.Workspace` to a
    model has no effect outside a :func:`workspace_scope` block, so any
    other code path (sharded ``predict``, adversarial crafting between
    training steps) sees the allocation behaviour it always had.
    """
    return getattr(_WORKSPACE_STATE, "enabled", False)


@contextmanager
def workspace_scope() -> Iterator[None]:
    """Context manager enabling workspace-arena buffers on the calling thread.

    The training runtime wraps each forward/loss/backward step in this
    scope; every shard worker of a data-parallel step enters it on its own
    thread (the flag is thread-local, and each replica owns a private
    workspace, so shards never contend on buffers).
    """
    previous = workspace_enabled()
    _WORKSPACE_STATE.enabled = True
    try:
        yield
    finally:
        _WORKSPACE_STATE.enabled = previous


def grad_cache_enabled() -> bool:
    """Whether evaluation-mode forwards should keep backward caches.

    Adversarial attacks differentiate the loss through an inference-mode
    forward pass, so caches are kept by default even when ``training`` is
    False.  Pure-inference paths (batched ``predict``) disable them via
    :func:`no_grad_cache` so im2col buffers are not pinned per layer.  The
    state is per-thread: entering :func:`no_grad_cache` affects only the
    calling thread's forward passes.
    """
    return getattr(_GRAD_CACHE_STATE, "enabled", True)


@contextmanager
def no_grad_cache() -> Iterator[None]:
    """Context manager marking a forward pass as pure inference.

    Inside the context, layers neither store nor keep forward-pass caches
    (a following ``backward`` call will fail); previously pinned buffers are
    released as layers are traversed.  The context is thread-local: worker
    threads must enter it themselves (the parallel runtime does so per
    shard) and concurrent contexts in different threads cannot corrupt one
    another's state.
    """
    previous = grad_cache_enabled()
    _GRAD_CACHE_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_CACHE_STATE.enabled = previous


class Layer:
    """Base class for all layers."""

    #: counter used to derive unique default names per subclass
    _instance_counts: Dict[str, int] = {}

    #: names of instance attributes holding transient forward-pass caches
    #: (im2col buffers, activation masks, input shapes).  Subclasses declare
    #: theirs so that pickling a layer — e.g. shipping a model snapshot to a
    #: spawn-started attack worker — carries parameters, never the last
    #: batch's activations.
    _transient_attrs: Tuple[str, ...] = ()

    def __init__(self, name: Optional[str] = None) -> None:
        #: True when the layer was not given an explicit name; Sequential
        #: renames auto-named layers positionally at build time so that two
        #: builds of the same architecture produce identical state dicts.
        self.auto_named = name is None
        if name is None:
            cls = type(self).__name__.lower()
            count = Layer._instance_counts.get(cls, 0) + 1
            Layer._instance_counts[cls] = count
            name = f"{cls}_{count}"
        self.name = name
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.built = False
        #: workspace arena bound by the training runtime (None = allocate)
        self._workspace = None

    # ------------------------------------------------------------------ API
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Create parameters for a given input shape (excluding batch dim)."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape (excluding batch dim) produced for a given input shape."""
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate gradients; fills ``self.grads`` and returns grad wrt input."""
        raise NotImplementedError

    def _keep_grad_cache(self, training: bool) -> bool:
        """Whether this forward pass should retain backward caches.

        True during training and during default inference (adversarial
        attacks differentiate through inference-mode forwards); False inside
        :func:`no_grad_cache`, where layers must not pin activation-sized
        buffers.
        """
        return training or grad_cache_enabled()

    def _buffer(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A reusable workspace buffer, or a fresh array outside the arena.

        Layers route every activation-sized allocation of their forward and
        backward passes through this hook.  With no workspace bound — or
        outside a :func:`workspace_scope` block — it is exactly ``np.empty``,
        so inference and attack paths are unchanged.  Inside the training
        runtime it returns a per-layer buffer that is reused across
        mini-batches, which is what makes steady-state training allocation
        free.  The buffer is uninitialised either way: callers fully
        overwrite it (and zero it themselves when they need zeros).
        """
        workspace = self._workspace
        if workspace is None or not workspace_enabled():
            return np.empty(shape, dtype=dtype)
        return workspace.get((id(self), key), shape, dtype)

    def _scratch(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A transient pooled buffer for stack-lifetime arrays.

        Used for arrays that die as soon as their single consumer has read
        them — the backward gradient chain, pooling window stacks.  Pooled
        (instead of per-layer keyed) buffers keep the arena's cache
        footprint as small as malloc's address reuse would; the producer or
        consumer hands them back via :meth:`_reclaim`.  Outside the arena
        this is plain allocation, exactly like :meth:`_buffer`.
        """
        workspace = self._workspace
        if workspace is None or not workspace_enabled():
            return np.empty(shape, dtype=dtype)
        return workspace.scratch(shape, dtype)

    def _reclaim(self, array: Optional[np.ndarray]) -> None:
        """Return a :meth:`_scratch` buffer to the pool (no-op otherwise)."""
        workspace = self._workspace
        if workspace is not None and workspace_enabled():
            workspace.reclaim(array)

    def _arena_active(self) -> bool:
        """Whether this layer is running inside the training arena.

        Layers with a bit-identical fused kernel spelling (e.g. the
        single-copy strided im2col) switch to it here; the legacy runtime
        and every inference/attack path keep the seed implementation.
        """
        return self._workspace is not None and workspace_enabled()

    def data_parallel_safe(self) -> bool:
        """Whether per-micro-batch gradients equal this layer's batch semantics.

        Layers whose training-mode forward couples samples across the batch
        (BatchNorm statistics) or draws from mutable per-layer RNG state
        (active Dropout) return False; the data-parallel trainer refuses to
        micro-batch models containing them.
        """
        return True

    # ----------------------------------------------------------- utilities
    def __getstate__(self) -> Dict[str, object]:
        """Pickle without transient forward-pass caches.

        A pickled layer is a snapshot of its configuration and parameters; a
        following ``backward`` on the unpickled copy requires a fresh forward
        pass, exactly as after :func:`no_grad_cache` inference.  Workspace
        bindings never travel either: an unpickled layer allocates until a
        trainer binds an arena of its own.
        """
        state = self.__dict__.copy()
        state["_workspace"] = None
        for attr in self._transient_attrs:
            if attr in state:
                state[attr] = None
        return state

    @property
    def trainable(self) -> bool:
        """True when the layer owns parameters."""
        return bool(self.params)

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    @classmethod
    def reset_name_counters(cls) -> None:
        """Reset the automatic name counters (used by tests for determinism)."""
        cls._instance_counts.clear()
