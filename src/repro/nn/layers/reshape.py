"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Flattens all non-batch dimensions."""

    _transient_attrs = ("_input_shape",)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)
