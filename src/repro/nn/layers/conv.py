"""2-D convolution layer (NHWC layout)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.functional import col2im, conv_output_size, im2col, im2col_strided
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer


class Conv2D(Layer):
    """A 2-D convolution over NHWC tensors.

    Weights have shape ``(kernel_h, kernel_w, in_channels, filters)`` and are
    flattened to ``(kernel_h * kernel_w * in_channels, filters)`` for the
    im2col matrix product — the same flattening the approximate inference
    engine uses, so float and LUT paths share weight layout.
    """

    _transient_attrs = ("_cols_cache", "_input_shape_cache")

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        padding: str = "valid",
        use_bias: bool = True,
        kernel_initializer: str = "he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if filters <= 0:
            raise ConfigurationError(f"filters must be positive, got {filters}")
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        if stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")
        if padding not in ("valid", "same"):
            raise ConfigurationError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias
        self.kernel_initializer = kernel_initializer
        self._cols_cache: Optional[np.ndarray] = None
        self._input_shape_cache: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------ geometry
    @property
    def pad_amount(self) -> int:
        """Zero-padding applied to each spatial border."""
        if self.padding == "valid":
            return 0
        return (self.kernel_size - 1) // 2

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ShapeError(
                f"{self.name}: Conv2D expects (H, W, C) inputs, got {input_shape}"
            )
        in_channels = input_shape[2]
        initializer = get_initializer(self.kernel_initializer)
        shape = (self.kernel_size, self.kernel_size, in_channels, self.filters)
        self.params["weight"] = initializer(shape, rng)
        if self.use_bias:
            self.params["bias"] = np.zeros(self.filters, dtype=np.float64)
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        height, width, _ = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad_amount)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad_amount)
        return (out_h, out_w, self.filters)

    # ------------------------------------------------------------- compute
    def flattened_weight(self) -> np.ndarray:
        """Weights reshaped to ``(kh * kw * in_channels, filters)``."""
        w = self.params["weight"]
        return w.reshape(-1, self.filters)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got shape {x.shape}")
        batch, height, width, channels = x.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad_amount)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad_amount)
        patch = self.kernel_size * self.kernel_size * channels
        cols_buffer = self._buffer("cols", (batch, out_h, out_w, patch), x.dtype)
        if self._arena_active():
            # fused single-copy patch extraction (bit-identical to the loop)
            pad = self.pad_amount
            cols = im2col_strided(
                x,
                self.kernel_size,
                self.kernel_size,
                self.stride,
                pad,
                out=cols_buffer,
                padded=(
                    self._buffer(
                        "x_padded",
                        (batch, height + 2 * pad, width + 2 * pad, channels),
                        x.dtype,
                    )
                    if pad
                    else None
                ),
            )
        else:
            cols = im2col(
                x,
                self.kernel_size,
                self.kernel_size,
                self.stride,
                self.pad_amount,
                out=cols_buffer,
            )
        y = np.matmul(
            cols.reshape(-1, patch),
            self.flattened_weight(),
            out=self._buffer("out", (batch * out_h * out_w, self.filters), x.dtype),
        )
        y = y.reshape(batch, out_h, out_w, self.filters)
        if self.use_bias:
            y = np.add(y, self.params["bias"], out=y)
        # Caches are kept in evaluation mode as well so that adversarial
        # attacks can differentiate the loss with respect to the input —
        # except under no_grad_cache (pure batched inference), where keeping
        # them would pin one im2col buffer per layer for no benefit.
        if self._keep_grad_cache(training):
            self._cols_cache = cols
            self._input_shape_cache = x.shape
        else:
            self._cols_cache = None
            self._input_shape_cache = None
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols_cache is None or self._input_shape_cache is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward pass"
            )
        cols = self._cols_cache
        batch, out_h, out_w, patch = cols.shape
        grad_flat = grad_output.reshape(-1, self.filters)
        weight_grad = np.matmul(
            cols.reshape(-1, patch).T,
            grad_flat,
            out=self._buffer("weight_grad", (patch, self.filters), cols.dtype),
        )
        self.grads["weight"] = weight_grad.reshape(self.params["weight"].shape)
        if self.use_bias:
            self.grads["bias"] = grad_flat.sum(
                axis=0, out=self._buffer("bias_grad", (self.filters,), cols.dtype)
            )
        grad_cols = np.matmul(
            grad_flat,
            self.flattened_weight().T,
            out=self._scratch((grad_flat.shape[0], patch), cols.dtype),
        ).reshape(cols.shape)
        in_batch, in_h, in_w, in_c = self._input_shape_cache
        pad = self.pad_amount
        grad_input = col2im(
            grad_cols,
            self._input_shape_cache,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.pad_amount,
            out=self._scratch(
                (in_batch, in_h + 2 * pad, in_w + 2 * pad, in_c), cols.dtype
            ),
        )
        self._reclaim(grad_cols)
        return grad_input
