"""Activation layers.

Every forward/backward routes its activation-sized temporaries through the
workspace hook (:meth:`repro.nn.layers.base.Layer._buffer`): outside the
training runtime the hook is plain allocation, inside it the buffers are
reused across mini-batches.  Each buffered spelling performs the same
float64 operations in the same order as the allocating expression it
replaces, so results are bit-identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit."""

    _transient_attrs = ("_mask",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # np.maximum(x, 0.0) is (x > 0) ? x : +0.0 — the same bits as
        # np.where(x > 0, x, 0.0) for the finite float64 inputs training
        # produces (-0.0 rectifies to +0.0 either way), in one pass; the
        # mask pass is skipped entirely in pure inference.
        self._mask = (
            np.greater(x, 0, out=self._buffer("mask", x.shape, bool))
            if self._keep_grad_cache(training)
            else None
        )
        return np.maximum(x, 0.0, out=self._buffer("out", x.shape, x.dtype))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.multiply(
            grad_output,
            self._mask,
            out=self._scratch(grad_output.shape, grad_output.dtype),
        )


class Tanh(Layer):
    """Hyperbolic tangent."""

    _transient_attrs = ("_output",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        output = np.tanh(x, out=self._buffer("out", x.shape, x.dtype))
        self._output = output if self._keep_grad_cache(training) else None
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # grad * (1 - output ** 2), with the same operation order
        buf = self._scratch(grad_output.shape, grad_output.dtype)
        np.power(self._output, 2, out=buf)
        np.subtract(1.0, buf, out=buf)
        return np.multiply(grad_output, buf, out=buf)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    _transient_attrs = ("_output",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # 1 / (1 + exp(-x)) step by step into one buffer
        output = self._buffer("out", x.shape, x.dtype)
        np.negative(x, out=output)
        np.exp(output, out=output)
        np.add(output, 1.0, out=output)
        np.divide(1.0, output, out=output)
        self._output = output if self._keep_grad_cache(training) else None
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # (grad * output) * (1 - output), matching grad * output * (1 - output)
        buf = self._scratch(grad_output.shape, grad_output.dtype)
        one_minus = self._scratch(grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, self._output, out=buf)
        np.subtract(1.0, self._output, out=one_minus)
        np.multiply(buf, one_minus, out=buf)
        self._reclaim(one_minus)
        return buf


class Softmax(Layer):
    """Softmax over the last axis.

    Models in this package are normally trained on logits with
    :class:`repro.nn.losses.CrossEntropyLoss`, which applies softmax
    internally; this layer exists for inference-time probability outputs and
    for architectures that explicitly end in a softmax classifier.
    """

    _transient_attrs = ("_output",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # the numerically stable softmax of repro.nn.functional, buffered
        output = self._buffer("out", x.shape, x.dtype)
        np.subtract(x, np.max(x, axis=-1, keepdims=True), out=output)
        np.exp(output, out=output)
        np.divide(output, np.sum(output, axis=-1, keepdims=True), out=output)
        self._output = output if self._keep_grad_cache(training) else None
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Jacobian-vector product of softmax: s * (g - sum(g * s))
        s = self._output
        buf = self._scratch(grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, s, out=buf)
        dot = np.sum(buf, axis=-1, keepdims=True)
        np.subtract(grad_output, dot, out=buf)
        return np.multiply(s, buf, out=buf)
