"""Activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit."""

    _transient_attrs = ("_mask",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if self._keep_grad_cache(training) else None
        return np.where(mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic tangent."""

    _transient_attrs = ("_output",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        output = np.tanh(x)
        self._output = output if self._keep_grad_cache(training) else None
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output ** 2)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    _transient_attrs = ("_output",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        output = 1.0 / (1.0 + np.exp(-x))
        self._output = output if self._keep_grad_cache(training) else None
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._output * (1.0 - self._output)


class Softmax(Layer):
    """Softmax over the last axis.

    Models in this package are normally trained on logits with
    :class:`repro.nn.losses.CrossEntropyLoss`, which applies softmax
    internally; this layer exists for inference-time probability outputs and
    for architectures that explicitly end in a softmax classifier.
    """

    _transient_attrs = ("_output",)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        output = softmax(x, axis=-1)
        self._output = output if self._keep_grad_cache(training) else None
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Jacobian-vector product of softmax: s * (g - sum(g * s))
        s = self._output
        dot = np.sum(grad_output * s, axis=-1, keepdims=True)
        return s * (grad_output - dot)
