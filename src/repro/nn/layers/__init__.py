"""Layer zoo for the NumPy DNN framework."""

from repro.nn.layers.base import Layer
from repro.nn.layers.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.norm import BatchNorm
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.reshape import Flatten

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "AvgPool2D",
    "MaxPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "BatchNorm",
]
