"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer


class Dense(Layer):
    """A fully-connected layer: ``y = x @ W + b``.

    Parameters
    ----------
    units:
        Number of output features.
    use_bias:
        Whether to add a bias vector.
    kernel_initializer:
        Name of the weight initializer (see :mod:`repro.nn.initializers`).
    """

    _transient_attrs = ("_input_cache",)

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        kernel_initializer: str = "he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ConfigurationError(f"units must be positive, got {units}")
        self.units = units
        self.use_bias = use_bias
        self.kernel_initializer = kernel_initializer
        self._input_cache: Optional[np.ndarray] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ShapeError(
                f"{self.name}: Dense expects flat inputs, got shape {input_shape}"
            )
        in_features = input_shape[0]
        initializer = get_initializer(self.kernel_initializer)
        self.params["weight"] = initializer((in_features, self.units), rng)
        if self.use_bias:
            self.params["bias"] = np.zeros(self.units, dtype=np.float64)
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2:
            raise ShapeError(f"{self.name}: expected 2-D input, got shape {x.shape}")
        # The input is cached in both training and evaluation mode: adversarial
        # attacks need input gradients of the model in evaluation mode.  Under
        # no_grad_cache (pure batched inference) the reference is dropped.
        self._input_cache = x if self._keep_grad_cache(training) else None
        y = np.matmul(
            x,
            self.params["weight"],
            out=self._buffer("out", (x.shape[0], self.units), x.dtype),
        )
        if self.use_bias:
            y = np.add(y, self.params["bias"], out=y)
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None:
            raise ShapeError(
                f"{self.name}: backward called without a training forward pass"
            )
        x = self._input_cache
        self.grads["weight"] = np.matmul(
            x.T,
            grad_output,
            out=self._buffer("weight_grad", self.params["weight"].shape, x.dtype),
        )
        if self.use_bias:
            self.grads["bias"] = grad_output.sum(
                axis=0, out=self._buffer("bias_grad", (self.units,), x.dtype)
            )
        return np.matmul(
            grad_output,
            self.params["weight"].T,
            out=self._scratch(x.shape, x.dtype),
        )
