"""Gradient-descent optimizers.

Two update entry points coexist:

* :meth:`Optimizer.step` — the original per-layer loop, updating each
  ``layer.params`` array from ``layer.grads`` (kept for external callers
  and as the bit-identity reference);
* :meth:`Optimizer.step_flat` — the training runtime's path: one fused
  elementwise update over a single flat parameter/gradient view
  (:class:`repro.nn.engine.FlatParameterView`).  Every update rule here is
  purely elementwise, so the flat update applies exactly the same float64
  operations to every scalar parameter as the per-layer loop — the two
  paths produce bit-identical weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer

#: a trainable parameter is addressed as (layer, parameter-name)
ParameterRef = Tuple[Layer, str]

#: state key under which the flat (fused) update keeps its buffers
_FLAT_KEY = "__flat__"


class Optimizer:
    """Base class: updates layer parameters in place from ``layer.grads``."""

    def _state_maps(self) -> Tuple[Dict[str, object], ...]:
        """The optimizer's keyed state dicts (velocities, moments, ...).

        Used to detect a runtime switch mid-training: per-layer state
        (written by :meth:`step`) and flat state (written by
        :meth:`step_flat`) address the same parameters under different
        keys, so continuing with the other entry point would silently
        restart momentum/moment accumulators.  Stateless optimizers return
        nothing and may switch freely.
        """
        return ()

    def _guard_state_layout(self, flat: bool) -> None:
        for state in self._state_maps():
            foreign = (
                any(key != _FLAT_KEY for key in state)
                if flat
                else _FLAT_KEY in state
            )
            if foreign:
                raise ConfigurationError(
                    f"{type(self).__name__} holds optimizer state written by "
                    f"the {'per-layer' if flat else 'flat'} update path; "
                    f"momentum/moment accumulators cannot be carried across "
                    f"a runtime switch — use one runtime (or a fresh "
                    f"optimizer) per training run"
                )

    def step(self, layers: Iterable[Layer]) -> None:
        """Apply one update to every trainable parameter of ``layers``."""
        self._guard_state_layout(flat=False)
        for layer in layers:
            for name, value in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                self._update(layer, name, value, grad)

    def supports_flat_step(self) -> bool:
        """Whether this optimizer implements the fused flat update.

        Subclasses that only override ``_update`` (the pre-arena extension
        point) return False here, and the training runtime falls back to
        the per-layer :meth:`step` for them.  The check compares *defining
        classes* in the MRO: a subclass of SGD/Adam that customises
        ``_update`` without touching ``_update_flat`` must not be treated
        as flat-capable — the inherited flat update would silently skip the
        customisation.
        """
        cls = type(self)

        def defining(name: str) -> type:
            for klass in cls.__mro__:
                if name in vars(klass):
                    return klass
            return Optimizer

        flat_definer = defining("_update_flat")
        if flat_definer is Optimizer:
            return False
        # the flat spelling must be at least as derived as the per-layer
        # rule, otherwise it cannot reflect the subclass's update logic
        return issubclass(flat_definer, defining("_update"))

    def step_flat(self, view) -> None:
        """Apply one fused elementwise update to a flat parameter view.

        ``view`` is a :class:`repro.nn.engine.FlatParameterView` (anything
        exposing float64 ``params`` / ``grads`` vectors of equal size
        works).  Optimizer state and scratch buffers for the flat path are
        allocated once and reused, so steady-state stepping is
        allocation-free.
        """
        params, grads = view.params, view.grads
        if params.shape != grads.shape:
            raise ConfigurationError(
                f"flat params/grads size mismatch: {params.shape} vs {grads.shape}"
            )
        self._guard_state_layout(flat=True)
        self._update_flat(params, grads)

    def state_flat(self) -> Dict[str, np.ndarray]:
        """The flat-path optimizer state as named arrays (for checkpoints).

        Only state written by :meth:`step_flat` is covered — checkpointing
        requires the arena runtime, whose fused step always takes the flat
        path for flat-capable optimizers.  Stateless optimizers return an
        empty dict.  Scalars (Adam's step count) travel as 0-d arrays.
        """
        return {}

    def load_state_flat(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore flat-path state captured by :meth:`state_flat`."""
        if arrays:
            raise ConfigurationError(
                f"{type(self).__name__} is stateless but a checkpoint carries "
                f"optimizer state {sorted(arrays)}; the optimizer type changed "
                f"since the checkpoint was written"
            )

    def _update(
        self, layer: Layer, name: str, value: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError

    def _update_flat(self, value: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def _state_key(self, layer: Layer, name: str) -> str:
        return f"{layer.name}/{name}"

    def _scratch(self, name: str, like: np.ndarray) -> np.ndarray:
        """A persistent scratch buffer for the flat update path."""
        buffers: Dict[str, np.ndarray] = self.__dict__.setdefault("_flat_scratch", {})
        buf = buffers.get(name)
        if buf is None or buf.shape != like.shape or buf.dtype != like.dtype:
            buf = np.empty_like(like)
            buffers[name] = buf
        return buf


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self, learning_rate: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def _state_maps(self):
        return (self._velocity,)

    def state_flat(self):
        velocity = self._velocity.get(_FLAT_KEY)
        if velocity is None:
            return {}
        return {"velocity": velocity.copy()}

    def load_state_flat(self, arrays):
        self._guard_state_layout(flat=True)
        if "velocity" in arrays:
            self._velocity[_FLAT_KEY] = np.array(arrays["velocity"], dtype=np.float64)

    def _update(self, layer, name, value, grad):
        if self.weight_decay:
            grad = grad + self.weight_decay * value
        if self.momentum:
            key = self._state_key(layer, name)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(value)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[key] = velocity
            value += velocity
        else:
            value -= self.learning_rate * grad

    def _update_flat(self, value, grad):
        # Same elementwise operations (and operand order) as _update, fused
        # over the whole flat vector; `x * scalar` commutes bitwise, so the
        # in-place spellings below match the per-layer expressions exactly.
        if self.weight_decay:
            decayed = self._scratch("decayed", value)
            np.multiply(value, self.weight_decay, out=decayed)
            np.add(grad, decayed, out=decayed)
            grad = decayed
        scaled = self._scratch("scaled", value)
        np.multiply(grad, self.learning_rate, out=scaled)
        if self.momentum:
            velocity = self._velocity.get(_FLAT_KEY)
            if velocity is None or velocity.shape != value.shape:
                velocity = np.zeros_like(value)
                self._velocity[_FLAT_KEY] = velocity
            np.multiply(velocity, self.momentum, out=velocity)
            np.subtract(velocity, scaled, out=velocity)
            np.add(value, velocity, out=value)
        else:
            np.subtract(value, scaled, out=value)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        for label, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1), got {beta}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t: Dict[str, int] = {}

    def _state_maps(self):
        return (self._m, self._v, self._t)

    def state_flat(self):
        m = self._m.get(_FLAT_KEY)
        if m is None:
            return {}
        return {
            "m": m.copy(),
            "v": self._v[_FLAT_KEY].copy(),
            "t": np.int64(self._t.get(_FLAT_KEY, 0)),
        }

    def load_state_flat(self, arrays):
        self._guard_state_layout(flat=True)
        if "m" not in arrays:
            return
        self._m[_FLAT_KEY] = np.array(arrays["m"], dtype=np.float64)
        self._v[_FLAT_KEY] = np.array(arrays["v"], dtype=np.float64)
        self._t[_FLAT_KEY] = int(arrays["t"])

    def _update(self, layer, name, value, grad):
        if self.weight_decay:
            grad = grad + self.weight_decay * value
        key = self._state_key(layer, name)
        m = self._m.get(key, np.zeros_like(value))
        v = self._v.get(key, np.zeros_like(value))
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
        self._m[key], self._v[key], self._t[key] = m, v, t
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def _update_flat(self, value, grad):
        # Fused spelling of _update: identical elementwise float64 ops in
        # identical order per scalar parameter (scalar multiplies commute).
        if self.weight_decay:
            decayed = self._scratch("decayed", value)
            np.multiply(value, self.weight_decay, out=decayed)
            np.add(grad, decayed, out=decayed)
            grad = decayed
        m = self._m.get(_FLAT_KEY)
        v = self._v.get(_FLAT_KEY)
        if m is None or m.shape != value.shape:
            # fresh moments restart the step count too — a stale t would
            # treat the zeroed moments as fully bias-corrected
            m = np.zeros_like(value)
            v = np.zeros_like(value)
            self._t.pop(_FLAT_KEY, None)
        t = self._t.get(_FLAT_KEY, 0) + 1
        s1 = self._scratch("s1", value)
        s2 = self._scratch("s2", value)
        # m = beta1 * m + (1 - beta1) * grad
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        np.add(m, s1, out=m)
        # v = beta2 * v + (1 - beta2) * grad ** 2
        np.multiply(v, self.beta2, out=v)
        np.power(grad, 2, out=s1)
        np.multiply(s1, 1.0 - self.beta2, out=s1)
        np.add(v, s1, out=v)
        self._m[_FLAT_KEY], self._v[_FLAT_KEY], self._t[_FLAT_KEY] = m, v, t
        # value -= lr * m_hat / (sqrt(v_hat) + eps)
        np.divide(m, 1.0 - self.beta1 ** t, out=s1)
        np.divide(v, 1.0 - self.beta2 ** t, out=s2)
        np.multiply(s1, self.learning_rate, out=s1)
        np.sqrt(s2, out=s2)
        np.add(s2, self.epsilon, out=s2)
        np.divide(s1, s2, out=s1)
        np.subtract(value, s1, out=value)
