"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer

#: a trainable parameter is addressed as (layer, parameter-name)
ParameterRef = Tuple[Layer, str]


class Optimizer:
    """Base class: updates layer parameters in place from ``layer.grads``."""

    def step(self, layers: Iterable[Layer]) -> None:
        """Apply one update to every trainable parameter of ``layers``."""
        for layer in layers:
            for name, value in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                self._update(layer, name, value, grad)

    def _update(
        self, layer: Layer, name: str, value: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError

    def _state_key(self, layer: Layer, name: str) -> str:
        return f"{layer.name}/{name}"


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self, learning_rate: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def _update(self, layer, name, value, grad):
        if self.weight_decay:
            grad = grad + self.weight_decay * value
        if self.momentum:
            key = self._state_key(layer, name)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(value)
            velocity = self.momentum * velocity - self.learning_rate * grad
            self._velocity[key] = velocity
            value += velocity
        else:
            value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        for label, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1), got {beta}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t: Dict[str, int] = {}

    def _update(self, layer, name, value, grad):
        if self.weight_decay:
            grad = grad + self.weight_decay * value
        key = self._state_key(layer, name)
        m = self._m.get(key, np.zeros_like(value))
        v = self._v.get(key, np.zeros_like(value))
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
        self._m[key], self._v[key], self._t[key] = m, v, t
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
