"""The deterministic training runtime: arenas, flat views, micro-batching.

PRs 1-4 made inference, attack crafting and re-runs fast; this module makes
the remaining cold-path cost — training — allocation-free and data-parallel
without ever changing a trained bit:

:class:`Workspace`
    A per-model buffer arena.  Layers route activation-sized allocations of
    their forward/backward passes through :meth:`repro.nn.layers.base.Layer.
    _buffer`, which resolves to a reusable workspace buffer inside a
    :func:`repro.nn.layers.base.workspace_scope` block.  Buffers are keyed
    by (layer, slot, shape, dtype), so steady-state training touches the
    heap only on the first occurrence of each shape (one full batch and one
    remainder batch per epoch schedule).  Every buffered operation performs
    the same float64 arithmetic in the same order as its allocating
    spelling, so arena training is bit-identical to the legacy loop.

:class:`FlatParameterView`
    Rebinds every trainable parameter of a model as a view into one
    contiguous float64 vector, with a parallel flat gradient vector.  The
    optimizers' ``step_flat`` then applies one fused elementwise update to
    the whole model instead of a Python loop over layers x parameters —
    elementwise updates are position-independent, so the flat step is
    bit-identical to the per-layer loop.

micro-batching (:func:`micro_batch_slices`, :func:`training_replicas`)
    The canonical micro-batch partition of a mini-batch is fixed by
    ``(batch size, micro_batch)`` alone — never by the worker count — and
    per-micro-batch gradients are reduced in canonical index order, so
    trained weights are bit-identical for every ``workers`` value.  Worker
    threads run on shallow model replicas that share the parameter storage
    (reads during the step, updated in place by the optimizer afterwards)
    but own private cache slots, grads and workspaces — the same
    snapshot-isolation idea as the PR 3 attack runtime, without any
    serialization because threads share memory.
"""

from __future__ import annotations

from copy import copy as _shallow_copy
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer, workspace_scope


class Workspace:
    """A keyed arena of reusable ndarray buffers.

    ``get`` returns an *uninitialised* buffer — callers overwrite every
    element (or zero it explicitly).  Buffers are keyed by
    ``(owner key, shape, dtype)``, so a workload alternating between a full
    batch and a remainder batch keeps both buffers resident instead of
    reallocating twice per epoch.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[Hashable, Tuple[int, ...], np.dtype], np.ndarray] = {}
        #: externally owned flat segments served for specific keys (see
        #: FlatParameterView.bind_gradient_sinks)
        self._sinks: Dict[Hashable, np.ndarray] = {}
        #: free scratch slabs (raw uint8), reused best-fit by byte size
        self._free: List[np.ndarray] = []
        #: registry of every scratch slab ever handed out, by id — holds a
        #: strong reference, so ids stay unique for the workspace's lifetime
        self._scratch_registry: Dict[int, np.ndarray] = {}
        #: buffers served from the arena / created on first use
        self.hits = 0
        self.allocations = 0

    def get(self, key: Hashable, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        shape = tuple(int(dim) for dim in shape)
        sink = self._sinks.get(key)
        if sink is not None:
            if sink.dtype == np.dtype(dtype) and sink.size == int(
                np.prod(shape, dtype=np.int64)
            ):
                self.hits += 1
                return sink.reshape(shape)
        full_key = (key, shape, np.dtype(dtype))
        buf = self._buffers.get(full_key)
        if buf is None:
            self.allocations += 1
            buf = np.empty(shape, dtype=dtype)
            self._buffers[full_key] = buf
        else:
            self.hits += 1
        return buf

    def set_sink(self, key: Hashable, flat: np.ndarray) -> None:
        """Serve ``flat`` (reshaped) for every :meth:`get` of ``key``.

        Used to alias a layer's gradient buffer to its segment of a flat
        gradient vector, so backward passes write gradients in their final
        resting place.  The requested shape only needs to match in size —
        layers may ask for flattened spellings of the same parameter.
        """
        self._sinks[key] = flat

    def scratch(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A transient buffer from the size-keyed free pool.

        For short-lived arrays with stack-like lifetimes — the backward
        gradient chain, pooling window stacks — a dedicated per-layer slot
        (:meth:`get`) would pin one buffer per layer and blow the cache
        footprint far past what malloc's address reuse achieves.  The
        scratch pool mirrors malloc instead: raw byte slabs are handed back
        via :meth:`reclaim` the moment their last reader is done and reused
        best-fit for the next request of *any* shape — the same address
        recycling as the allocator, without the syscalls, page faults or
        per-call bookkeeping.  A slab is never handed out while live, and
        every buffer is fully written before it is read, so values are
        unaffected — only addresses.
        """
        shape = tuple(int(dim) for dim in shape)
        dtype = np.dtype(dtype)
        need = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        best = -1
        for index, slab in enumerate(self._free):
            if slab.nbytes >= need and (
                best < 0 or slab.nbytes < self._free[best].nbytes
            ):
                best = index
        if best >= 0:
            slab = self._free.pop(best)
            self.hits += 1
        else:
            self.allocations += 1
            slab = np.empty(max(need, 1), dtype=np.uint8)
            self._scratch_registry[id(slab)] = slab
        return slab[:need].view(dtype).reshape(shape)

    def reclaim(self, array: Optional[np.ndarray]) -> None:
        """Return a scratch buffer (or any view into one) to the free pool.

        Arrays that did not come from :meth:`scratch` — layer inputs, keyed
        buffers, externally allocated gradients — are ignored, so callers
        can reclaim unconditionally.
        """
        if array is None:
            return
        base = array
        while base.base is not None:
            base = base.base
        registered = self._scratch_registry.get(id(base))
        if registered is not base:
            return
        if any(entry is base for entry in self._free):  # double-reclaim guard
            return
        self._free.append(base)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena (keyed + scratch)."""
        return int(
            sum(buf.nbytes for buf in self._buffers.values())
            + sum(buf.nbytes for buf in self._scratch_registry.values())
        )

    def bind(self, model) -> None:
        """Attach this arena to every layer of ``model``.

        Binding alone changes nothing: layers only consult the workspace
        inside a :func:`repro.nn.layers.base.workspace_scope` block.
        """
        for layer in model.layers:
            layer._workspace = self

    @staticmethod
    def unbind(model) -> None:
        """Detach any arena from ``model``'s layers (buffers stay cached here)."""
        for layer in model.layers:
            layer._workspace = None

    def release(self) -> None:
        """Drop every cached buffer, gradient sink and scratch slab."""
        self._buffers.clear()
        self._sinks.clear()
        self._free.clear()
        self._scratch_registry.clear()


class FlatParameterView:
    """All trainable parameters of a model as one flat float64 vector.

    Construction copies the current parameter values into ``params`` and
    rebinds each ``layer.params[name]`` to a reshaped view of it, so
    in-place updates on the flat vector are immediately visible to every
    forward pass (including thread replicas, which share the same parameter
    dict objects).  ``grads`` is the companion flat gradient vector filled
    by :meth:`pack_grads`.
    """

    def __init__(self, model) -> None:
        self._model = model
        entries: List[Tuple[int, str, int, int, Tuple[int, ...]]] = []
        offset = 0
        for index, layer in enumerate(model.layers):
            if not layer.trainable:
                continue
            for name, array in layer.params.items():
                size = int(array.size)
                entries.append((index, name, offset, size, array.shape))
                offset += size
        if offset == 0:
            raise ConfigurationError(
                f"model {model.name!r} has no trainable parameters"
            )
        self._entries = entries
        self.params = np.empty(offset, dtype=np.float64)
        self.grads = np.zeros(offset, dtype=np.float64)
        self._views: List[np.ndarray] = []
        for index, name, start, size, shape in entries:
            array = model.layers[index].params[name]
            segment = self.params[start : start + size]
            segment[:] = np.asarray(array, dtype=np.float64).ravel()
            view = segment.reshape(shape)
            model.layers[index].params[name] = view
            self._views.append(view)

    @property
    def size(self) -> int:
        return int(self.params.size)

    def is_bound(self, model) -> bool:
        """Whether ``model``'s parameters are still views into this vector.

        ``load_state_dict`` replaces parameter arrays wholesale; a trainer
        checks this before reusing a cached view across ``fit`` calls.
        """
        if model is not self._model:
            return False
        for (index, name, _, _, _), view in zip(self._entries, self._views):
            if model.layers[index].params.get(name) is not view:
                return False
        return True

    def bind_gradient_sinks(self, workspace: "Workspace") -> None:
        """Point each layer's gradient buffer at its flat-vector segment.

        Layers request their weight/bias gradient buffers from the
        workspace under the key ``f"{param}_grad"``; registering those keys
        as sinks into :attr:`grads` makes the backward pass write gradients
        *directly* into the flat vector — the subsequent :meth:`pack_grads`
        skips them (same-memory check), so the fused optimizer step reads
        gradients that were never copied.
        """
        for index, name, start, size, shape in self._entries:
            layer = self._model.layers[index]
            workspace.set_sink(
                (id(layer), f"{name}_grad"), self.grads[start : start + size]
            )

    def pack_grads(self, model=None, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather ``layer.grads`` into a flat vector in canonical order.

        ``model`` defaults to the view's own model; a thread replica with
        the same layer structure may be passed instead.  ``out`` defaults
        to :attr:`grads`.  Every entry must have a gradient — the training
        step always runs a full backward pass first.  Gradients that
        already live in their ``out`` segment (see
        :meth:`bind_gradient_sinks`) are left in place.
        """
        model = model if model is not None else self._model
        out = out if out is not None else self.grads
        for index, name, start, size, shape in self._entries:
            grad = model.layers[index].grads.get(name)
            if grad is None:
                raise ConfigurationError(
                    f"layer {model.layers[index].name!r} has no gradient for "
                    f"{name!r}; backward must run before packing"
                )
            root = grad
            while root.base is not None:
                root = root.base
            if root is out:
                continue  # already accumulated in place via a gradient sink
            np.copyto(out[start : start + size].reshape(shape), grad)
        return out


def ensure_training_engine(model, arena: Optional[Workspace], flat):
    """Lazily create/rebind the (arena, flat view) pair of one trainer.

    Shared by :class:`repro.nn.trainer.Trainer` and
    :class:`repro.defenses.adversarial_training.AdversarialTrainer` so the
    binding invariants (rebuild the flat view when ``load_state_dict``
    replaced the parameter arrays, route gradient sinks into the arena)
    live in exactly one place.  Returns the pair to store back.
    """
    if arena is None:
        arena = Workspace()
    arena.bind(model)
    if flat is None or not flat.is_bound(model):
        flat = FlatParameterView(model)
        flat.bind_gradient_sinks(arena)
    return arena, flat


def fused_training_step(
    model, loss, optimizer, arena: Workspace, flat: FlatParameterView, xb, yb
) -> Tuple[float, int]:
    """One full-batch arena training step; returns (loss value, #correct).

    Bit-identical to the legacy step: same forward, fused
    ``value_and_gradient`` (same bits as the unfused pair), same optimizer
    arithmetic.  Optimizers that implement the fused flat update take it;
    subclasses that only override ``_update`` (the pre-arena extension
    point) fall back to the per-layer ``step`` — their ``layer.grads``
    already hold the freshly written gradients (via the arena's gradient
    sinks or plain buffers), so both routes see identical values.
    """
    with workspace_scope():
        logits = model.forward(xb, training=True)
        value, grad = loss.value_and_gradient(logits, yb)
        # the input gradient is unused in training: recycle its buffer
        arena.reclaim(model.backward(grad))
    if optimizer.supports_flat_step():
        flat.pack_grads()
        optimizer.step_flat(flat)
    else:
        optimizer.step(model.trainable_layers())
    correct = int(np.sum(np.argmax(logits, axis=-1) == yb))
    return value, correct


def micro_batch_slices(n_samples: int, micro_batch: int) -> List[slice]:
    """The canonical micro-batch partition of a mini-batch.

    Depends only on ``(n_samples, micro_batch)`` — never on the worker
    count — which is what makes data-parallel gradients bit-identical for
    every ``workers`` value.  Delegates to the parallel runtime's
    :func:`repro.nn.runtime.batch_slices` (the same canonical slicing the
    sharded predict path uses, including its strict size validation).
    """
    from repro.nn.runtime import batch_slices

    return batch_slices(n_samples, micro_batch)


def validate_data_parallel(model) -> None:
    """Refuse micro-batching for models whose training step couples samples.

    BatchNorm computes batch statistics (per-micro-batch statistics would
    change the trained function) and active Dropout draws from mutable
    per-layer RNG state (draw order would depend on scheduling); both are
    rejected with a clear error instead of silently training differently.
    """
    offenders = [
        f"{layer.name} ({type(layer).__name__})"
        for layer in model.layers
        if not layer.data_parallel_safe()
    ]
    if offenders:
        raise ConfigurationError(
            "micro-batched data-parallel training requires per-sample layer "
            f"semantics; offending layers: {', '.join(offenders)}. Train "
            "with micro_batch=None (the default), or use dropout rate 0 / "
            "no BatchNorm."
        )


def _replicate_layer(layer: Layer) -> Layer:
    """A shallow training replica of one layer.

    The replica shares the *parameter dict object* (so flat-view rebinding
    and in-place optimizer updates are visible without copies) but owns its
    grads dict and transient cache slots, making concurrent forward/backward
    passes on different replicas independent.
    """
    clone = _shallow_copy(layer)
    clone.params = layer.params
    clone.grads = {}
    clone._workspace = None
    for attr in layer._transient_attrs:
        if hasattr(clone, attr):
            setattr(clone, attr, None)
    return clone


def training_replicas(model, count: int) -> List:
    """Thread replicas of a built model for data-parallel gradient shards."""
    replicas = []
    for _ in range(count):
        replica = _shallow_copy(model)
        replica.layers = [_replicate_layer(layer) for layer in model.layers]
        replicas.append(replica)
    return replicas
