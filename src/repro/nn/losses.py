"""Loss functions.

Each loss exposes ``value(logits_or_predictions, targets)`` and
``gradient(...)`` returning the gradient with respect to the first argument.
Targets are integer class labels for classification losses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.functional import log_softmax, one_hot, softmax


class Loss:
    """Base class for losses."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.value(predictions, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy on logits with integer class targets."""

    def _check(self, logits: np.ndarray, targets: np.ndarray) -> None:
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D (N, classes), got {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"targets must be a length-{logits.shape[0]} vector, got {targets.shape}"
            )

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._check(logits, targets)
        log_probs = log_softmax(logits, axis=-1)
        picked = log_probs[np.arange(logits.shape[0]), targets.astype(np.int64)]
        return float(-picked.mean())

    def gradient(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(logits, targets)
        probs = softmax(logits, axis=-1)
        grad = (probs - one_hot(targets, logits.shape[1])) / logits.shape[0]
        return grad


class MeanSquaredError(Loss):
    """Mean squared error between predictions and float targets."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        diff = predictions - targets
        return float(np.mean(diff ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return 2.0 * (predictions - targets) / predictions.size
