"""Loss functions.

Each loss exposes ``value(logits_or_predictions, targets)`` and
``gradient(...)`` returning the gradient with respect to the first argument.
Targets are integer class labels for classification losses.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.functional import log_softmax, one_hot, softmax, softmax_cross_entropy


class Loss:
    """Base class for losses."""

    #: True when value_and_gradient honours the ``normalizer`` override,
    #: which is what the data-parallel trainer needs to sum per-micro-batch
    #: gradients into the exact mini-batch gradient.
    supports_normalizer = False

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def value_and_gradient(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        normalizer: Optional[int] = None,
        grad_out: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Loss value and gradient of one batch in a single call.

        The base implementation simply chains :meth:`value` and
        :meth:`gradient`; fused losses override it to share the expensive
        intermediate (see :class:`CrossEntropyLoss`).  ``normalizer`` is
        only meaningful for losses that declare ``supports_normalizer``.
        """
        if normalizer is not None and normalizer != predictions.shape[0]:
            raise ConfigurationError(
                f"{type(self).__name__} does not support micro-batch "
                f"normalization (normalizer={normalizer} for a batch of "
                f"{predictions.shape[0]})"
            )
        value = self.value(predictions, targets)
        grad = self.gradient(predictions, targets)
        if grad_out is not None:
            np.copyto(grad_out, grad)
            grad = grad_out
        return value, grad

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.value(predictions, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy on logits with integer class targets.

    :meth:`value` and :meth:`gradient` are the unfused reference pair (three
    shifted-exp passes between them); :meth:`value_and_gradient` is the
    fused single-pass path the training runtime uses, bit-identical to the
    pair (see :func:`repro.nn.functional.softmax_cross_entropy`).
    """

    supports_normalizer = True

    def _check(self, logits: np.ndarray, targets: np.ndarray) -> None:
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D (N, classes), got {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"targets must be a length-{logits.shape[0]} vector, got {targets.shape}"
            )

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._check(logits, targets)
        log_probs = log_softmax(logits, axis=-1)
        picked = log_probs[np.arange(logits.shape[0]), targets.astype(np.int64)]
        return float(-picked.mean())

    def gradient(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(logits, targets)
        probs = softmax(logits, axis=-1)
        grad = (probs - one_hot(targets, logits.shape[1])) / logits.shape[0]
        return grad

    def value_and_gradient(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        normalizer: Optional[int] = None,
        grad_out: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        self._check(logits, np.asarray(targets))
        return softmax_cross_entropy(
            logits, targets, normalizer=normalizer, grad_out=grad_out
        )


class MeanSquaredError(Loss):
    """Mean squared error between predictions and float targets."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        diff = predictions - targets
        return float(np.mean(diff ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return 2.0 * (predictions - targets) / predictions.size
