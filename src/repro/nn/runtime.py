"""Parallel inference runtime: multi-core batch sharding for prediction.

PR 1 made single-batch AxDNN latency BLAS-bound; the remaining lever for the
figure sweeps (which evaluate every victim on every adversarial batch) is
running *batches* concurrently.  This module provides the shared machinery:

:func:`run_sharded`
    Split an input array into fixed-size batches, evaluate a forward
    callable over them — serially or across a thread pool — and concatenate
    the per-batch outputs in input order.  The slicing is identical for
    every worker count, and each batch is an independent deterministic
    computation, so results are bit-identical regardless of ``workers``.

:func:`resolve_workers`
    Normalise a ``workers`` argument: a positive int, ``"auto"`` (one worker
    per available core), or ``None`` (the ``REPRO_DEFAULT_WORKERS``
    environment variable when set, else 1 — the hook the CI matrix uses to
    run the whole suite through the sharded path).

:class:`ProcessShardPool`
    Persistent spawn-context process pool for work the GIL serialises —
    attack generation (see :mod:`repro.attacks.engine`) rather than
    inference.  Executors are cached per worker count and reused across
    calls.

Threads (not processes) are the right vehicle here: the dominant kernels
release the GIL inside BLAS (the percode / error-correction / exact paths)
and inside most NumPy ufuncs, and worker threads share the process-wide
read-only LUT cache (:mod:`repro.multipliers.base`) and the per-layer bound
kernels for free, with no pickling of models or tables.  scipy.sparse
products (the sparse kernel) hold the GIL, so sharded speedups are largest
for BLAS-kernel models.  Forward passes run under
:func:`repro.nn.layers.base.no_grad_cache`, where layers neither store nor
keep activation-sized caches, so concurrent shards of one ``predict`` call
do not contend on layer state.  Layer cache *slots* are shared instance
attributes, however: do not run gradient work (attacks, training) on the
same model object concurrently with a sharded ``predict`` — shards clear
the backward caches the gradient thread relies on.  The sequential drivers
in this repo never do.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import signal
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from inspect import signature
from typing import Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import no_grad_cache
from repro.resilience import FaultInjector, RetryPolicy

logger = logging.getLogger("repro.resilience")

#: environment variable supplying the default worker count (CI matrix hook)
WORKERS_ENV_VAR = "REPRO_DEFAULT_WORKERS"

WorkerSpec = Union[None, int, str]


def available_workers() -> int:
    """Number of usable cores (affinity-aware when the platform exposes it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: WorkerSpec = None) -> int:
    """Resolve a ``workers`` argument to a concrete positive worker count.

    ``None`` reads :data:`WORKERS_ENV_VAR` (defaulting to 1), ``"auto"``
    resolves to :func:`available_workers`, and a positive integer (or its
    string spelling, for the environment variable) passes through.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV_VAR) or 1
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            return available_workers()
        try:
            workers = int(text)
        except ValueError:
            raise ConfigurationError(
                f"workers must be a positive int or 'auto', got {workers!r}"
            ) from None
    if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
        raise ConfigurationError(
            f"workers must be a positive int or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return int(workers)


def validate_batch_size(batch_size) -> int:
    """Check that ``batch_size`` is a positive integer and return it."""
    if isinstance(batch_size, bool) or not isinstance(batch_size, (int, np.integer)):
        raise ConfigurationError(
            f"batch_size must be a positive int, got {batch_size!r}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    return int(batch_size)


def batch_slices(n_samples: int, batch_size: int) -> List[slice]:
    """Contiguous batch slices covering ``n_samples`` rows.

    The final slice carries the remainder when ``n_samples`` is not a
    multiple of ``batch_size``.  The slicing depends only on
    ``(n_samples, batch_size)`` — never on the worker count — which is what
    makes sharded prediction bit-identical to the serial loop.
    """
    batch_size = validate_batch_size(batch_size)
    return [
        slice(start, min(start + batch_size, n_samples))
        for start in range(0, n_samples, batch_size)
    ]


def run_sharded(
    forward: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    batch_size: int,
    workers: WorkerSpec = None,
    grad_free: bool = True,
) -> np.ndarray:
    """Evaluate ``forward`` over batches of ``x`` and concatenate the outputs.

    With ``workers > 1`` the batches are distributed over a thread pool;
    outputs are always concatenated in input order.  ``grad_free`` wraps the
    evaluation of *each shard* in :func:`no_grad_cache` — the context is
    thread-local, so every worker enters it itself and concurrent gradient
    work in other threads is unaffected.  ``x`` must be non-empty — callers
    handle the empty-input case, whose output shape they know and this
    function does not.
    """
    x = np.asarray(x)
    if x.shape[0] == 0:
        raise ConfigurationError("run_sharded requires a non-empty input batch")
    slices = batch_slices(x.shape[0], batch_size)
    workers = resolve_workers(workers)

    def run_shard(shard: slice) -> np.ndarray:
        with no_grad_cache() if grad_free else nullcontext():
            return forward(x[shard])

    if workers == 1 or len(slices) == 1:
        outputs = [run_shard(s) for s in slices]
    else:
        pool_size = min(workers, len(slices))
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-shard"
        ) as pool:
            outputs = list(pool.map(run_shard, slices))
    return np.concatenate(outputs, axis=0)


def _shard_fault_shim(payload):
    """Worker-side chaos wrapper (module-level so ``spawn`` can import it).

    The parent's fault plan cannot reach spawned workers (it is process
    state), so ``pool.worker`` rules travel inside the task payload: the
    worker running the matching shard applies the scripted fault — killing
    itself, exiting abruptly or raising — *mid-shard*, exactly where a real
    worker death would land.  Only wrapped when a plan is active; the
    production path never pays for this.
    """
    task, item, ordinal, rules = payload
    for rule in rules:
        if rule.matches(ordinal):
            if rule.action == "kill_worker":
                os.kill(os.getpid(), signal.SIGKILL)
            rule.trigger()
    return task(item)


class ProcessShardPool:
    """Self-healing spawn-context process pool for GIL-heavy shard work.

    Thread sharding (:func:`run_sharded`) covers BLAS-bound inference, but
    adversarial-example crafting is gradient-bound: its forward/backward
    passes hold the GIL in pure-NumPy layer code and mutate per-layer
    backward caches, so worker *threads* neither speed it up nor share one
    model object safely.  This pool runs shard tasks in separate processes
    instead.  Tasks must be module-level callables with picklable arguments
    that are *self-contained* — pure functions of their payload, sharing no
    mutable state with the parent (models travel as
    :func:`repro.nn.serialization.dumps_model` payloads and are rebuilt per
    call).  That property is also what makes every recovery path below
    bit-identical: re-running a shard anywhere recomputes the same bytes.

    **Self-healing.**  A dead worker (OOM-killed, segfaulted, SIGKILLed)
    poisons its executor with :class:`BrokenProcessPool`; ``map`` evicts the
    executor, respawns a fresh pool and retries the whole map under a
    :class:`repro.resilience.RetryPolicy`.  When process pools keep failing
    — spawn errors, a hostile sandbox, repeated worker deaths — ``map``
    degrades process → thread → serial with a logged warning at each step
    rather than failing the run; results are identical on every rung
    because tasks are self-contained and ordering is preserved.

    Worker processes are started with the ``spawn`` method (fork-safety with
    threaded BLAS) and are expensive to boot — a fresh interpreter plus the
    NumPy/SciPy imports — so executors are cached per worker count and
    reused for the life of the parent process.  Lifecycle: :func:`atexit`
    tears every cached executor down at interpreter exit, and the pool is a
    context manager that tears its executor down *on exception* (a failed
    crafting run must not leak spawn processes) while keeping it cached on
    the happy path.  ``map`` preserves task order, and a pool of any size
    never changes *what* is computed: shard decomposition and per-shard
    seeding are fixed by the caller before dispatch.
    """

    _executors: Dict[int, ProcessPoolExecutor] = {}
    _lock = threading.Lock()

    def __init__(
        self, workers: WorkerSpec = None, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.workers = resolve_workers(workers)
        self.retry = retry if retry is not None else RetryPolicy.from_env()

    @classmethod
    def _executor(cls, workers: int) -> ProcessPoolExecutor:
        with cls._lock:
            pool = cls._executors.get(workers)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                cls._executors[workers] = pool
            return pool

    @classmethod
    def _evict(cls, workers: int) -> None:
        with cls._lock:
            pool = cls._executors.pop(workers, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    @classmethod
    def shutdown_all(cls) -> None:
        """Shut down every cached executor (atexit hook; also for tests)."""
        with cls._lock:
            pools = list(cls._executors.values())
            cls._executors.clear()
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------ lifecycle
    def shutdown(self) -> None:
        """Tear down this worker-count's cached executor (if any)."""
        self._evict(self.workers)

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # teardown on exception only: a failed crafting run must not leak
        # spawn processes, but the happy path keeps the expensive warm pool
        if exc_type is not None:
            self.shutdown()

    # ------------------------------------------------------------- dispatch
    def map(self, task: Callable, items: Iterable) -> List:
        """Run ``task`` over ``items`` and return results in input order.

        A single worker (or a single item) runs inline in the calling
        process — no pool, no serialization round-trip — which is also what
        keeps one-shard problems bit-identical with zero process overhead.
        Multi-shard maps run on the process pool with the self-healing
        ladder described on the class.
        """
        items = list(items)
        if not items:
            return []
        if self.workers == 1 or len(items) == 1:
            return [task(item) for item in items]
        failure: Optional[BaseException] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                FaultInjector.consult("pool.process")
                return self._map_processes(task, items)
            except (BrokenProcessPool, OSError) as exc:
                # a dead worker poisons the cached executor; evict it so the
                # retry starts from a healthy pool
                failure = exc
                self._evict(self.workers)
                # a scripted worker-kill fired in a child that cannot update
                # the parent's counters — disarm it so the retry runs clean
                FaultInjector.disarm("pool.worker")
                if attempt < self.retry.max_attempts:
                    logger.warning(
                        "process shard pool failed (%s: %s); respawning, "
                        "retry %d/%d",
                        type(exc).__name__,
                        exc,
                        attempt,
                        self.retry.max_attempts - 1,
                    )
                    self.retry.sleep(self.retry.delay_s(attempt))
        logger.warning(
            "process shard pool kept failing (%s: %s); degrading to threads",
            type(failure).__name__,
            failure,
        )
        try:
            FaultInjector.consult("pool.thread")
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard-fallback"
            ) as pool:
                return list(pool.map(task, items))
        except Exception as exc:
            logger.warning(
                "thread fallback failed (%s: %s); degrading to serial",
                type(exc).__name__,
                exc,
            )
            return [task(item) for item in items]

    def _map_processes(self, task: Callable, items: List) -> List:
        worker_rules = FaultInjector.rules_for("pool.worker")
        if worker_rules:
            # ship the chaos rules into the workers: shard ordinals are the
            # item indices, so "kill the worker at shard K" is well-defined
            rules = tuple(r for r in worker_rules)
            items = [
                (task, item, ordinal, rules) for ordinal, item in enumerate(items)
            ]
            task = _shard_fault_shim
        return list(self._executor(self.workers).map(task, items))


atexit.register(ProcessShardPool.shutdown_all)


def call_with_workers(method: Callable, *args, workers: WorkerSpec = None, **kwargs):
    """Invoke a prediction method, forwarding ``workers`` when it accepts it.

    The robustness drivers evaluate "any object exposing
    ``predict_classes``" — float models, AxDNNs, defense wrappers.  Only the
    first two understand ``workers``; this helper forwards the argument to
    methods that declare it and silently drops it otherwise, so wrapped
    victims keep working unchanged.  An explicit ``workers`` value is always
    forwarded — ``workers=1`` must force serial execution even when
    ``REPRO_DEFAULT_WORKERS`` would resolve ``None`` to something larger.
    """
    if workers is not None and _accepts_workers(method):
        return method(*args, workers=workers, **kwargs)
    return method(*args, **kwargs)


def _accepts_workers(method: Callable) -> bool:
    try:
        return "workers" in signature(method).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C callables
        return False
