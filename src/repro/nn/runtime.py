"""Parallel inference runtime: multi-core batch sharding for prediction.

PR 1 made single-batch AxDNN latency BLAS-bound; the remaining lever for the
figure sweeps (which evaluate every victim on every adversarial batch) is
running *batches* concurrently.  This module provides the shared machinery:

:func:`run_sharded`
    Split an input array into fixed-size batches, evaluate a forward
    callable over them — serially or across a thread pool — and concatenate
    the per-batch outputs in input order.  The slicing is identical for
    every worker count, and each batch is an independent deterministic
    computation, so results are bit-identical regardless of ``workers``.

:func:`resolve_workers`
    Normalise a ``workers`` argument: a positive int, ``"auto"`` (one worker
    per available core), or ``None`` (the ``REPRO_DEFAULT_WORKERS``
    environment variable when set, else 1 — the hook the CI matrix uses to
    run the whole suite through the sharded path).

:class:`ProcessShardPool`
    Persistent spawn-context process pool for work the GIL serialises —
    attack generation (see :mod:`repro.attacks.engine`) rather than
    inference.  Executors are cached per worker count and reused across
    calls.

Threads (not processes) are the right vehicle here: the dominant kernels
release the GIL inside BLAS (the percode / error-correction / exact paths)
and inside most NumPy ufuncs, and worker threads share the process-wide
read-only LUT cache (:mod:`repro.multipliers.base`) and the per-layer bound
kernels for free, with no pickling of models or tables.  scipy.sparse
products (the sparse kernel) hold the GIL, so sharded speedups are largest
for BLAS-kernel models.  Forward passes run under
:func:`repro.nn.layers.base.no_grad_cache`, where layers neither store nor
keep activation-sized caches, so concurrent shards of one ``predict`` call
do not contend on layer state.  Layer cache *slots* are shared instance
attributes, however: do not run gradient work (attacks, training) on the
same model object concurrently with a sharded ``predict`` — shards clear
the backward caches the gradient thread relies on.  The sequential drivers
in this repo never do.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from inspect import signature
from typing import Callable, Dict, Iterable, List, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import no_grad_cache

#: environment variable supplying the default worker count (CI matrix hook)
WORKERS_ENV_VAR = "REPRO_DEFAULT_WORKERS"

WorkerSpec = Union[None, int, str]


def available_workers() -> int:
    """Number of usable cores (affinity-aware when the platform exposes it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: WorkerSpec = None) -> int:
    """Resolve a ``workers`` argument to a concrete positive worker count.

    ``None`` reads :data:`WORKERS_ENV_VAR` (defaulting to 1), ``"auto"``
    resolves to :func:`available_workers`, and a positive integer (or its
    string spelling, for the environment variable) passes through.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV_VAR) or 1
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            return available_workers()
        try:
            workers = int(text)
        except ValueError:
            raise ConfigurationError(
                f"workers must be a positive int or 'auto', got {workers!r}"
            ) from None
    if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
        raise ConfigurationError(
            f"workers must be a positive int or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return int(workers)


def validate_batch_size(batch_size) -> int:
    """Check that ``batch_size`` is a positive integer and return it."""
    if isinstance(batch_size, bool) or not isinstance(batch_size, (int, np.integer)):
        raise ConfigurationError(
            f"batch_size must be a positive int, got {batch_size!r}"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    return int(batch_size)


def batch_slices(n_samples: int, batch_size: int) -> List[slice]:
    """Contiguous batch slices covering ``n_samples`` rows.

    The final slice carries the remainder when ``n_samples`` is not a
    multiple of ``batch_size``.  The slicing depends only on
    ``(n_samples, batch_size)`` — never on the worker count — which is what
    makes sharded prediction bit-identical to the serial loop.
    """
    batch_size = validate_batch_size(batch_size)
    return [
        slice(start, min(start + batch_size, n_samples))
        for start in range(0, n_samples, batch_size)
    ]


def run_sharded(
    forward: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    batch_size: int,
    workers: WorkerSpec = None,
    grad_free: bool = True,
) -> np.ndarray:
    """Evaluate ``forward`` over batches of ``x`` and concatenate the outputs.

    With ``workers > 1`` the batches are distributed over a thread pool;
    outputs are always concatenated in input order.  ``grad_free`` wraps the
    evaluation of *each shard* in :func:`no_grad_cache` — the context is
    thread-local, so every worker enters it itself and concurrent gradient
    work in other threads is unaffected.  ``x`` must be non-empty — callers
    handle the empty-input case, whose output shape they know and this
    function does not.
    """
    x = np.asarray(x)
    if x.shape[0] == 0:
        raise ConfigurationError("run_sharded requires a non-empty input batch")
    slices = batch_slices(x.shape[0], batch_size)
    workers = resolve_workers(workers)

    def run_shard(shard: slice) -> np.ndarray:
        with no_grad_cache() if grad_free else nullcontext():
            return forward(x[shard])

    if workers == 1 or len(slices) == 1:
        outputs = [run_shard(s) for s in slices]
    else:
        pool_size = min(workers, len(slices))
        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-shard"
        ) as pool:
            outputs = list(pool.map(run_shard, slices))
    return np.concatenate(outputs, axis=0)


class ProcessShardPool:
    """Persistent spawn-context process pool for GIL-heavy shard work.

    Thread sharding (:func:`run_sharded`) covers BLAS-bound inference, but
    adversarial-example crafting is gradient-bound: its forward/backward
    passes hold the GIL in pure-NumPy layer code and mutate per-layer
    backward caches, so worker *threads* neither speed it up nor share one
    model object safely.  This pool runs shard tasks in separate processes
    instead.  Tasks must be module-level callables with picklable arguments;
    models travel as :func:`repro.nn.serialization.dumps_model` payloads.

    Worker processes are started with the ``spawn`` method (fork-safety with
    threaded BLAS) and are expensive to boot — a fresh interpreter plus the
    NumPy/SciPy imports — so executors are cached per worker count and
    reused for the life of the parent process; :func:`atexit` tears them
    down.  ``map`` preserves task order, and a pool of any size never
    changes *what* is computed: shard decomposition and per-shard seeding
    are fixed by the caller before dispatch.
    """

    _executors: Dict[int, ProcessPoolExecutor] = {}
    _lock = threading.Lock()

    def __init__(self, workers: WorkerSpec = None) -> None:
        self.workers = resolve_workers(workers)

    @classmethod
    def _executor(cls, workers: int) -> ProcessPoolExecutor:
        with cls._lock:
            pool = cls._executors.get(workers)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                cls._executors[workers] = pool
            return pool

    @classmethod
    def _evict(cls, workers: int) -> None:
        with cls._lock:
            pool = cls._executors.pop(workers, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    @classmethod
    def shutdown_all(cls) -> None:
        """Shut down every cached executor (atexit hook; also for tests)."""
        with cls._lock:
            pools = list(cls._executors.values())
            cls._executors.clear()
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)

    def map(self, task: Callable, items: Iterable) -> List:
        """Run ``task`` over ``items`` and return results in input order.

        A single worker (or a single item) runs inline in the calling
        process — no pool, no serialization round-trip — which is also what
        keeps one-shard problems bit-identical with zero process overhead.
        """
        items = list(items)
        if not items:
            return []
        if self.workers == 1 or len(items) == 1:
            return [task(item) for item in items]
        try:
            return list(self._executor(self.workers).map(task, items))
        except BrokenProcessPool:
            # a dead worker poisons the cached executor; evict it so the
            # next call starts from a healthy pool
            self._evict(self.workers)
            raise


atexit.register(ProcessShardPool.shutdown_all)


def call_with_workers(method: Callable, *args, workers: WorkerSpec = None, **kwargs):
    """Invoke a prediction method, forwarding ``workers`` when it accepts it.

    The robustness drivers evaluate "any object exposing
    ``predict_classes``" — float models, AxDNNs, defense wrappers.  Only the
    first two understand ``workers``; this helper forwards the argument to
    methods that declare it and silently drops it otherwise, so wrapped
    victims keep working unchanged.  An explicit ``workers`` value is always
    forwarded — ``workers=1`` must force serial execution even when
    ``REPRO_DEFAULT_WORKERS`` would resolve ``None`` to something larger.
    """
    if workers is not None and _accepts_workers(method):
        return method(*args, workers=workers, **kwargs)
    return method(*args, **kwargs)


def _accepts_workers(method: Callable) -> bool:
    try:
        return "workers" in signature(method).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C callables
        return False
