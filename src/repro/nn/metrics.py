"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def accuracy(predicted_labels: np.ndarray, true_labels: np.ndarray) -> float:
    """Fraction of correct predictions, in [0, 1]."""
    predicted_labels = np.asarray(predicted_labels)
    true_labels = np.asarray(true_labels)
    if predicted_labels.shape != true_labels.shape:
        raise ShapeError(
            f"label arrays must have equal shapes, got {predicted_labels.shape} "
            f"and {true_labels.shape}"
        )
    if predicted_labels.size == 0:
        raise ShapeError("cannot compute accuracy of empty label arrays")
    return float(np.mean(predicted_labels == true_labels))


def accuracy_percent(predicted_labels: np.ndarray, true_labels: np.ndarray) -> float:
    """Accuracy expressed in percent (the unit used throughout the paper)."""
    return accuracy(predicted_labels, true_labels) * 100.0


def confusion_matrix(
    predicted_labels: np.ndarray, true_labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Confusion matrix with true classes on rows and predictions on columns."""
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    true_labels = np.asarray(true_labels, dtype=np.int64)
    if predicted_labels.shape != true_labels.shape:
        raise ShapeError("label arrays must have equal shapes")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, predicted in zip(true_labels, predicted_labels):
        matrix[true, predicted] += 1
    return matrix


def top_k_accuracy(logits: np.ndarray, true_labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is in the top-k logits."""
    logits = np.asarray(logits)
    true_labels = np.asarray(true_labels, dtype=np.int64)
    if logits.ndim != 2 or logits.shape[0] != true_labels.shape[0]:
        raise ShapeError("logits must be (N, classes) aligned with labels")
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = np.any(top_k == true_labels[:, None], axis=1)
    return float(np.mean(hits))
