"""Mini-batch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer, SGD


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        """Metrics of the final epoch."""
        result: Dict[str, float] = {}
        if self.train_loss:
            result["train_loss"] = self.train_loss[-1]
        if self.train_accuracy:
            result["train_accuracy"] = self.train_accuracy[-1]
        if self.validation_accuracy:
            result["validation_accuracy"] = self.validation_accuracy[-1]
        return result


class Trainer:
    """Trains a :class:`repro.nn.model.Sequential` model with mini-batch SGD."""

    def __init__(
        self,
        model: Sequential,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.optimizer = optimizer if optimizer is not None else SGD(0.01, momentum=0.9)
        self._rng = np.random.default_rng(seed)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``; returns the history."""
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"x and y must have matching first dimensions, got {x.shape[0]} and "
                f"{y.shape[0]}"
            )
        history = TrainingHistory()
        n_samples = x.shape[0]
        for epoch in range(epochs):
            order = np.arange(n_samples)
            if shuffle:
                self._rng.shuffle(order)
            epoch_losses = []
            epoch_correct = 0
            for start in range(0, n_samples, batch_size):
                batch_idx = order[start : start + batch_size]
                xb, yb = x[batch_idx], y[batch_idx]
                logits = self.model.forward(xb, training=True)
                batch_loss = self.loss.value(logits, yb)
                grad = self.loss.gradient(logits, yb)
                self.model.backward(grad)
                self.optimizer.step(self.model.trainable_layers())
                epoch_losses.append(batch_loss)
                epoch_correct += int(np.sum(np.argmax(logits, axis=-1) == yb))
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.train_accuracy.append(epoch_correct / n_samples)
            if validation_data is not None:
                val_x, val_y = validation_data
                val_acc = self.evaluate(val_x, val_y, batch_size=batch_size)
                history.validation_accuracy.append(val_acc)
            if verbose:  # pragma: no cover - console output
                message = (
                    f"epoch {epoch + 1}/{epochs}: loss={history.train_loss[-1]:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.4f}"
                )
                if validation_data is not None:
                    message += f" val_acc={history.validation_accuracy[-1]:.4f}"
                print(message)
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
        """Accuracy of the model on ``(x, y)``."""
        predictions = self.model.predict_classes(x, batch_size=batch_size)
        return accuracy(predictions, np.asarray(y, dtype=np.int64))
