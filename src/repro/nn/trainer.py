"""Mini-batch training loop on the deterministic training runtime.

The default ``runtime="arena"`` path routes every step through
:mod:`repro.nn.engine`: layer forwards/backwards reuse per-model workspace
buffers, the loss runs as the fused single-pass
:func:`repro.nn.functional.softmax_cross_entropy`, and the optimizer applies
one fused elementwise update to a flat parameter view.  All of it performs
the same float64 operations in the same order as the original loop, so the
trained weights are bit-identical to ``runtime="legacy"`` (the seed loop,
kept as the reference and for benchmarking).

``micro_batch=m`` additionally turns on deterministic data-parallel
gradients: each mini-batch is split into the *canonical* micro-batch
partition (fixed by the batch size alone — never by the worker count),
per-micro-batch gradients are computed on thread replicas that share
parameter storage, and reduced in canonical index order.  The result is
bit-identical for every ``workers`` value; it differs from the full-batch
gradient only by float summation order.  With ``micro_batch=None`` (the
default) the gradient math is exactly the full-batch computation, so
``workers`` never changes trained weights — it only shards validation and
evaluation passes.
"""

from __future__ import annotations

import json
import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.resilience import FaultInjector
from repro.nn.engine import (
    FlatParameterView,
    Workspace,
    ensure_training_engine,
    fused_training_step,
    micro_batch_slices,
    training_replicas,
    validate_data_parallel,
)
from repro.nn.layers.base import workspace_scope
from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer, SGD
from repro.nn.runtime import WorkerSpec, resolve_workers, validate_batch_size

#: called after every epoch with (1-based epoch index, metrics of the epoch)
EpochCallback = Callable[[int, Dict[str, float]], None]

#: npz keys of the serialized epoch state (see Trainer.capture_state)
_CKPT_PARAMS = "flat_params"
_CKPT_EPOCH = "epoch"
_CKPT_RNG = "rng_state"
_CKPT_OPT_PREFIX = "opt__"
_CKPT_LAYER_RNG_PREFIX = "layer_rng__"
_CKPT_HISTORY = {
    "history_train_loss": "train_loss",
    "history_train_accuracy": "train_accuracy",
    "history_validation_accuracy": "validation_accuracy",
}


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        """Metrics of the final epoch."""
        result: Dict[str, float] = {}
        if self.train_loss:
            result["train_loss"] = self.train_loss[-1]
        if self.train_accuracy:
            result["train_accuracy"] = self.train_accuracy[-1]
        if self.validation_accuracy:
            result["validation_accuracy"] = self.validation_accuracy[-1]
        return result


class Trainer:
    """Trains a :class:`repro.nn.model.Sequential` model with mini-batch SGD."""

    def __init__(
        self,
        model: Sequential,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.optimizer = optimizer if optimizer is not None else SGD(0.01, momentum=0.9)
        self._rng = np.random.default_rng(seed)
        self._arena: Optional[Workspace] = None
        self._flat: Optional[FlatParameterView] = None

    # ------------------------------------------------------------- plumbing
    def _ensure_engine(self) -> FlatParameterView:
        """Bind the workspace arena and (re)build the flat parameter view."""
        self._arena, self._flat = ensure_training_engine(
            self.model, self._arena, self._flat
        )
        return self._flat

    @property
    def workspace(self) -> Optional[Workspace]:
        """The trainer's buffer arena (populated after the first arena fit)."""
        return self._arena

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle: bool = True,
        verbose: bool = False,
        workers: WorkerSpec = None,
        micro_batch: Optional[int] = None,
        runtime: str = "arena",
        on_epoch: Optional[EpochCallback] = None,
        checkpoint=None,
        checkpoint_every: Optional[int] = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``; returns the history.

        Parameters beyond the seed loop's:

        workers:
            Shards validation/evaluation predicts and, when ``micro_batch``
            is set, the per-micro-batch gradient computation across threads.
            Never changes trained weights: the gradient partition is
            canonical (worker-count independent) and reduced in canonical
            order, so weights are bit-identical for every value.
        micro_batch:
            Canonical micro-batch size for deterministic data-parallel
            gradients.  ``None`` (default) keeps the exact full-batch
            gradient math of the seed trainer.
        runtime:
            ``"arena"`` (default) — workspace buffers, fused loss, flat
            optimizer step; bit-identical to ``"legacy"``, the original
            allocating loop kept as reference.
        on_epoch:
            Callback invoked after each epoch with ``(epoch, metrics)`` —
            the hook :class:`repro.experiments.session.Session` uses for
            training progress events.
        checkpoint:
            A checkpointer (anything exposing ``every``,
            ``save(epoch, arrays)`` and ``load_latest(max_epoch)`` — see
            :class:`repro.experiments.store.TrainingCheckpointer`).  Epoch
            state — the flat parameter vector, optimizer slots and every
            RNG state — is serialized at the cadence, and an interrupted
            ``fit`` resumes from the latest valid checkpoint with final
            weights byte-identical to an uninterrupted run.
        checkpoint_every:
            Overrides the checkpointer's cadence (epochs between saves).
        """
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        validate_batch_size(batch_size)
        if runtime not in ("arena", "legacy"):
            raise ConfigurationError(
                f"runtime must be 'arena' or 'legacy', got {runtime!r}"
            )
        if checkpoint_every is not None:
            if checkpoint is None:
                raise ConfigurationError(
                    "checkpoint_every requires a checkpointer to write to; "
                    "pass checkpoint= (see TrainingCheckpointer)"
                )
            validate_batch_size(checkpoint_every)
        if checkpoint is not None:
            if runtime != "arena":
                raise ConfigurationError(
                    "checkpointing serializes the flat parameter vector and "
                    "requires the arena runtime"
                )
            if not self.optimizer.supports_flat_step():
                raise ConfigurationError(
                    f"{type(self.optimizer).__name__} does not implement the "
                    f"flat update; its state cannot be checkpointed — train "
                    f"with checkpoint=None"
                )
        checkpoint_cadence = (
            checkpoint_every
            if checkpoint_every is not None
            else getattr(checkpoint, "every", 1)
        )
        if micro_batch is not None:
            if runtime == "legacy":
                raise ConfigurationError(
                    "micro_batch requires the arena runtime"
                )
            validate_batch_size(micro_batch)
            validate_data_parallel(self.model)
            if not getattr(self.loss, "supports_normalizer", False):
                raise ConfigurationError(
                    f"{type(self.loss).__name__} does not support micro-batch "
                    f"normalization; train with micro_batch=None"
                )
            if not self.optimizer.supports_flat_step():
                raise ConfigurationError(
                    f"{type(self.optimizer).__name__} implements only the "
                    f"per-layer update; micro-batch gradients reduce into a "
                    f"flat vector — train with micro_batch=None"
                )
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"x and y must have matching first dimensions, got {x.shape[0]} and "
                f"{y.shape[0]}"
            )
        history = TrainingHistory()
        n_samples = x.shape[0]
        flat = self._ensure_engine() if runtime == "arena" else None
        start_epoch = 0
        if checkpoint is not None:
            start_epoch = self._restore_checkpoint(checkpoint, epochs, flat, history)
        shard_pool = None
        try:
            if micro_batch is not None:
                shard_pool = _MicroBatchPool(
                    self.model, flat, resolve_workers(workers), self._arena
                )
            for epoch in range(start_epoch, epochs):
                order = np.arange(n_samples)
                if shuffle:
                    self._rng.shuffle(order)
                epoch_losses = []
                epoch_correct = 0
                for start in range(0, n_samples, batch_size):
                    batch_idx = order[start : start + batch_size]
                    xb, yb = x[batch_idx], y[batch_idx]
                    if runtime == "legacy":
                        batch_loss, correct = self._legacy_step(xb, yb)
                    elif shard_pool is not None:
                        batch_loss, correct = self._micro_batch_step(
                            xb, yb, micro_batch, flat, shard_pool
                        )
                    else:
                        batch_loss, correct = self._arena_step(xb, yb, flat)
                    epoch_losses.append(batch_loss)
                    epoch_correct += correct
                history.train_loss.append(float(np.mean(epoch_losses)))
                history.train_accuracy.append(epoch_correct / n_samples)
                if validation_data is not None:
                    val_x, val_y = validation_data
                    val_acc = self.evaluate(
                        val_x, val_y, batch_size=batch_size, workers=workers
                    )
                    history.validation_accuracy.append(val_acc)
                if on_epoch is not None:
                    metrics = {
                        "train_loss": history.train_loss[-1],
                        "train_accuracy": history.train_accuracy[-1],
                    }
                    if validation_data is not None:
                        metrics["validation_accuracy"] = history.validation_accuracy[-1]
                    on_epoch(epoch + 1, metrics)
                if checkpoint is not None and (
                    (epoch + 1) % checkpoint_cadence == 0 or epoch + 1 == epochs
                ):
                    checkpoint.save(epoch + 1, self.capture_state(epoch + 1, history))
                # chaos seam: a scripted plan interrupts training here — after
                # the epoch's checkpoint, exactly where a real crash would land
                FaultInjector.consult("trainer.epoch")
                if verbose:  # pragma: no cover - console output
                    message = (
                        f"epoch {epoch + 1}/{epochs}: loss={history.train_loss[-1]:.4f} "
                        f"train_acc={history.train_accuracy[-1]:.4f}"
                    )
                    if validation_data is not None:
                        message += f" val_acc={history.validation_accuracy[-1]:.4f}"
                    print(message)
        finally:
            if shard_pool is not None:
                shard_pool.shutdown()
            if runtime == "arena":
                # drop buffer bindings so the trained model doesn't pin
                # activation-sized arrays; the arena itself stays cached on
                # the trainer for the next fit
                Workspace.unbind(self.model)
        return history

    # ------------------------------------------------------------ the steps
    def _legacy_step(self, xb: np.ndarray, yb: np.ndarray) -> Tuple[float, int]:
        """The seed training step: allocating ops, per-layer optimizer loop."""
        logits = self.model.forward(xb, training=True)
        batch_loss = self.loss.value(logits, yb)
        grad = self.loss.gradient(logits, yb)
        self.model.backward(grad)
        self.optimizer.step(self.model.trainable_layers())
        correct = int(np.sum(np.argmax(logits, axis=-1) == yb))
        return batch_loss, correct

    def _arena_step(
        self, xb: np.ndarray, yb: np.ndarray, flat: FlatParameterView
    ) -> Tuple[float, int]:
        """One full-batch step on the arena runtime (bit-identical to legacy)."""
        return fused_training_step(
            self.model, self.loss, self.optimizer, self._arena, flat, xb, yb
        )

    def _micro_batch_step(
        self,
        xb: np.ndarray,
        yb: np.ndarray,
        micro_batch: int,
        flat: FlatParameterView,
        shard_pool: "_MicroBatchPool",
    ) -> Tuple[float, int]:
        """One data-parallel step over the canonical micro-batch partition.

        Gradients are normalised by the full mini-batch size and reduced in
        canonical index order, so the step is invariant to the worker count
        (and equals the full-batch gradient up to float summation order).
        """
        slices = micro_batch_slices(xb.shape[0], micro_batch)
        parts = shard_pool.run(xb, yb, slices, self.loss)
        batch_loss = 0.0
        correct = 0
        for value, n_correct in parts:
            batch_loss += value
            correct += n_correct
        grad_stack = shard_pool.grad_stack(len(slices), flat.size)
        np.sum(grad_stack[: len(slices)], axis=0, out=flat.grads)
        self.optimizer.step_flat(flat)
        return batch_loss, correct

    # ----------------------------------------------------------- checkpoints
    def capture_state(self, epoch: int, history: TrainingHistory) -> Dict[str, np.ndarray]:
        """Serialize the complete epoch state as named arrays.

        Covers everything the next epoch depends on: the flat parameter
        vector, the optimizer's flat slots (momentum/moments/step count),
        the shuffle RNG, every layer's private RNG (Dropout draws a mask per
        batch), and the history so far.  Restoring this state and continuing
        performs the exact float64 operations of an uninterrupted run —
        resumed weights are byte-identical.
        """
        flat = self._ensure_engine()
        arrays: Dict[str, np.ndarray] = {
            _CKPT_PARAMS: flat.params.copy(),
            _CKPT_EPOCH: np.int64(epoch),
            _CKPT_RNG: np.asarray(json.dumps(self._rng.bit_generator.state)),
        }
        for name, value in self.optimizer.state_flat().items():
            arrays[f"{_CKPT_OPT_PREFIX}{name}"] = value
        for index, layer in enumerate(self.model.layers):
            rng = getattr(layer, "_rng", None)
            if isinstance(rng, np.random.Generator):
                arrays[f"{_CKPT_LAYER_RNG_PREFIX}{index}"] = np.asarray(
                    json.dumps(rng.bit_generator.state)
                )
        for key, attr in _CKPT_HISTORY.items():
            arrays[key] = np.asarray(getattr(history, attr), dtype=np.float64)
        return arrays

    def _restore_checkpoint(self, checkpoint, epochs, flat, history) -> int:
        """Resume from the checkpointer's latest valid state; returns the epoch.

        An unusable checkpoint (wrong parameter count — the architecture
        changed under the digest, which content hashing makes impossible in
        practice — or missing keys) is ignored and training starts fresh:
        resume is an optimization, never a correctness risk.
        """
        loaded = checkpoint.load_latest(epochs)
        if loaded is None:
            return 0
        epoch, arrays = loaded
        # parse everything before mutating anything: a checkpoint this build
        # cannot read is a miss, and a half-applied restore must never
        # corrupt the fresh-start state it falls back to
        try:
            params = np.asarray(arrays[_CKPT_PARAMS], dtype=np.float64)
            if int(params.size) != flat.size:
                raise ValueError(
                    f"checkpoint holds {int(params.size)} parameters, model "
                    f"has {flat.size}"
                )
            opt_state = {
                key[len(_CKPT_OPT_PREFIX):]: value
                for key, value in arrays.items()
                if key.startswith(_CKPT_OPT_PREFIX)
            }
            rng_state = json.loads(str(arrays[_CKPT_RNG]))
            layer_rngs = {}
            for index, layer in enumerate(self.model.layers):
                key = f"{_CKPT_LAYER_RNG_PREFIX}{index}"
                rng = getattr(layer, "_rng", None)
                if key in arrays and isinstance(rng, np.random.Generator):
                    layer_rngs[index] = json.loads(str(arrays[key]))
        except (KeyError, ValueError, TypeError):
            return 0
        flat.params[:] = params
        self.optimizer.load_state_flat(opt_state)
        self._rng.bit_generator.state = rng_state
        for index, state in layer_rngs.items():
            self.model.layers[index]._rng.bit_generator.state = state
        for key, attr in _CKPT_HISTORY.items():
            values = arrays.get(key)
            if values is not None:
                getattr(history, attr).extend(float(v) for v in np.atleast_1d(values))
        return int(epoch)

    # ------------------------------------------------------------- evaluate
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 128,
        workers: WorkerSpec = None,
    ) -> float:
        """Accuracy of the model on ``(x, y)``.

        ``workers`` shards the prediction batches across threads (see
        :func:`repro.nn.runtime.run_sharded`); results are bit-identical
        for every worker count.
        """
        predictions = self.model.predict_classes(
            x, batch_size=batch_size, workers=workers
        )
        return accuracy(predictions, np.asarray(y, dtype=np.int64))


class _MicroBatchPool:
    """Thread replicas + executor for one data-parallel ``fit`` call.

    Each worker thread checks a replica out of a queue, runs the
    forward/loss/backward of one micro-batch inside its own
    :func:`workspace_scope`, packs the replica's gradients into the
    micro-batch's row of a shared stack, and returns the replica.  Which
    thread computes which micro-batch never matters: replicas share the
    parameter storage and the packing row is fixed by the micro-batch
    index, so the reduction input is identical for every worker count.
    """

    def __init__(
        self, model, flat: FlatParameterView, workers: int, arena: Workspace
    ) -> None:
        self._flat = flat
        self._workers = max(1, workers)
        self._stack: Optional[np.ndarray] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._replicas: "queue.SimpleQueue" = queue.SimpleQueue()
        if self._workers == 1:
            # serial: compute on the model itself (its arena is already bound)
            self._model = model
            self._arena = arena
        else:
            self._model = None
            self._arena = None
            for replica in training_replicas(model, self._workers):
                workspace = Workspace()
                workspace.bind(replica)
                self._replicas.put((replica, workspace))
            self._executor = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-train"
            )

    def grad_stack(self, rows: int, size: int) -> np.ndarray:
        if self._stack is None or self._stack.shape[0] < rows:
            self._stack = np.empty((rows, size), dtype=np.float64)
        return self._stack

    def run(
        self, xb: np.ndarray, yb: np.ndarray, slices, loss: Loss
    ) -> List[Tuple[float, int]]:
        """Per-micro-batch (loss contribution, correct count), in order."""
        total = int(xb.shape[0])
        stack = self.grad_stack(len(slices), self._flat.size)

        def run_micro(index: int) -> Tuple[float, int]:
            micro = slices[index]
            if self._model is not None:
                replica, workspace = self._model, self._arena
            else:
                replica, workspace = self._replicas.get()
            try:
                with workspace_scope():
                    logits = replica.forward(xb[micro], training=True)
                    value, grad = loss.value_and_gradient(
                        logits, yb[micro], normalizer=total
                    )
                    workspace.reclaim(replica.backward(grad))
                self._flat.pack_grads(model=replica, out=stack[index])
                correct = int(np.sum(np.argmax(logits, axis=-1) == yb[micro]))
                return value, correct
            finally:
                if self._model is None:
                    self._replicas.put((replica, workspace))

        indices = range(len(slices))
        if self._executor is None or len(slices) == 1:
            return [run_micro(i) for i in indices]
        return list(self._executor.map(run_micro, indices))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
