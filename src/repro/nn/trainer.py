"""Mini-batch training loop on the deterministic training runtime.

The default ``runtime="arena"`` path routes every step through
:mod:`repro.nn.engine`: layer forwards/backwards reuse per-model workspace
buffers, the loss runs as the fused single-pass
:func:`repro.nn.functional.softmax_cross_entropy`, and the optimizer applies
one fused elementwise update to a flat parameter view.  All of it performs
the same float64 operations in the same order as the original loop, so the
trained weights are bit-identical to ``runtime="legacy"`` (the seed loop,
kept as the reference and for benchmarking).

``micro_batch=m`` additionally turns on deterministic data-parallel
gradients: each mini-batch is split into the *canonical* micro-batch
partition (fixed by the batch size alone — never by the worker count),
per-micro-batch gradients are computed on thread replicas that share
parameter storage, and reduced in canonical index order.  The result is
bit-identical for every ``workers`` value; it differs from the full-batch
gradient only by float summation order.  With ``micro_batch=None`` (the
default) the gradient math is exactly the full-batch computation, so
``workers`` never changes trained weights — it only shards validation and
evaluation passes.
"""

from __future__ import annotations

import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.engine import (
    FlatParameterView,
    Workspace,
    ensure_training_engine,
    fused_training_step,
    micro_batch_slices,
    training_replicas,
    validate_data_parallel,
)
from repro.nn.layers.base import workspace_scope
from repro.nn.losses import CrossEntropyLoss, Loss
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer, SGD
from repro.nn.runtime import WorkerSpec, resolve_workers, validate_batch_size

#: called after every epoch with (1-based epoch index, metrics of the epoch)
EpochCallback = Callable[[int, Dict[str, float]], None]


@dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        """Metrics of the final epoch."""
        result: Dict[str, float] = {}
        if self.train_loss:
            result["train_loss"] = self.train_loss[-1]
        if self.train_accuracy:
            result["train_accuracy"] = self.train_accuracy[-1]
        if self.validation_accuracy:
            result["validation_accuracy"] = self.validation_accuracy[-1]
        return result


class Trainer:
    """Trains a :class:`repro.nn.model.Sequential` model with mini-batch SGD."""

    def __init__(
        self,
        model: Sequential,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.optimizer = optimizer if optimizer is not None else SGD(0.01, momentum=0.9)
        self._rng = np.random.default_rng(seed)
        self._arena: Optional[Workspace] = None
        self._flat: Optional[FlatParameterView] = None

    # ------------------------------------------------------------- plumbing
    def _ensure_engine(self) -> FlatParameterView:
        """Bind the workspace arena and (re)build the flat parameter view."""
        self._arena, self._flat = ensure_training_engine(
            self.model, self._arena, self._flat
        )
        return self._flat

    @property
    def workspace(self) -> Optional[Workspace]:
        """The trainer's buffer arena (populated after the first arena fit)."""
        return self._arena

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle: bool = True,
        verbose: bool = False,
        workers: WorkerSpec = None,
        micro_batch: Optional[int] = None,
        runtime: str = "arena",
        on_epoch: Optional[EpochCallback] = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``; returns the history.

        Parameters beyond the seed loop's:

        workers:
            Shards validation/evaluation predicts and, when ``micro_batch``
            is set, the per-micro-batch gradient computation across threads.
            Never changes trained weights: the gradient partition is
            canonical (worker-count independent) and reduced in canonical
            order, so weights are bit-identical for every value.
        micro_batch:
            Canonical micro-batch size for deterministic data-parallel
            gradients.  ``None`` (default) keeps the exact full-batch
            gradient math of the seed trainer.
        runtime:
            ``"arena"`` (default) — workspace buffers, fused loss, flat
            optimizer step; bit-identical to ``"legacy"``, the original
            allocating loop kept as reference.
        on_epoch:
            Callback invoked after each epoch with ``(epoch, metrics)`` —
            the hook :class:`repro.experiments.session.Session` uses for
            training progress events.
        """
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        validate_batch_size(batch_size)
        if runtime not in ("arena", "legacy"):
            raise ConfigurationError(
                f"runtime must be 'arena' or 'legacy', got {runtime!r}"
            )
        if micro_batch is not None:
            if runtime == "legacy":
                raise ConfigurationError(
                    "micro_batch requires the arena runtime"
                )
            validate_batch_size(micro_batch)
            validate_data_parallel(self.model)
            if not getattr(self.loss, "supports_normalizer", False):
                raise ConfigurationError(
                    f"{type(self.loss).__name__} does not support micro-batch "
                    f"normalization; train with micro_batch=None"
                )
            if not self.optimizer.supports_flat_step():
                raise ConfigurationError(
                    f"{type(self.optimizer).__name__} implements only the "
                    f"per-layer update; micro-batch gradients reduce into a "
                    f"flat vector — train with micro_batch=None"
                )
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"x and y must have matching first dimensions, got {x.shape[0]} and "
                f"{y.shape[0]}"
            )
        history = TrainingHistory()
        n_samples = x.shape[0]
        flat = self._ensure_engine() if runtime == "arena" else None
        shard_pool = None
        try:
            if micro_batch is not None:
                shard_pool = _MicroBatchPool(
                    self.model, flat, resolve_workers(workers), self._arena
                )
            for epoch in range(epochs):
                order = np.arange(n_samples)
                if shuffle:
                    self._rng.shuffle(order)
                epoch_losses = []
                epoch_correct = 0
                for start in range(0, n_samples, batch_size):
                    batch_idx = order[start : start + batch_size]
                    xb, yb = x[batch_idx], y[batch_idx]
                    if runtime == "legacy":
                        batch_loss, correct = self._legacy_step(xb, yb)
                    elif shard_pool is not None:
                        batch_loss, correct = self._micro_batch_step(
                            xb, yb, micro_batch, flat, shard_pool
                        )
                    else:
                        batch_loss, correct = self._arena_step(xb, yb, flat)
                    epoch_losses.append(batch_loss)
                    epoch_correct += correct
                history.train_loss.append(float(np.mean(epoch_losses)))
                history.train_accuracy.append(epoch_correct / n_samples)
                if validation_data is not None:
                    val_x, val_y = validation_data
                    val_acc = self.evaluate(
                        val_x, val_y, batch_size=batch_size, workers=workers
                    )
                    history.validation_accuracy.append(val_acc)
                if on_epoch is not None:
                    metrics = {
                        "train_loss": history.train_loss[-1],
                        "train_accuracy": history.train_accuracy[-1],
                    }
                    if validation_data is not None:
                        metrics["validation_accuracy"] = history.validation_accuracy[-1]
                    on_epoch(epoch + 1, metrics)
                if verbose:  # pragma: no cover - console output
                    message = (
                        f"epoch {epoch + 1}/{epochs}: loss={history.train_loss[-1]:.4f} "
                        f"train_acc={history.train_accuracy[-1]:.4f}"
                    )
                    if validation_data is not None:
                        message += f" val_acc={history.validation_accuracy[-1]:.4f}"
                    print(message)
        finally:
            if shard_pool is not None:
                shard_pool.shutdown()
            if runtime == "arena":
                # drop buffer bindings so the trained model doesn't pin
                # activation-sized arrays; the arena itself stays cached on
                # the trainer for the next fit
                Workspace.unbind(self.model)
        return history

    # ------------------------------------------------------------ the steps
    def _legacy_step(self, xb: np.ndarray, yb: np.ndarray) -> Tuple[float, int]:
        """The seed training step: allocating ops, per-layer optimizer loop."""
        logits = self.model.forward(xb, training=True)
        batch_loss = self.loss.value(logits, yb)
        grad = self.loss.gradient(logits, yb)
        self.model.backward(grad)
        self.optimizer.step(self.model.trainable_layers())
        correct = int(np.sum(np.argmax(logits, axis=-1) == yb))
        return batch_loss, correct

    def _arena_step(
        self, xb: np.ndarray, yb: np.ndarray, flat: FlatParameterView
    ) -> Tuple[float, int]:
        """One full-batch step on the arena runtime (bit-identical to legacy)."""
        return fused_training_step(
            self.model, self.loss, self.optimizer, self._arena, flat, xb, yb
        )

    def _micro_batch_step(
        self,
        xb: np.ndarray,
        yb: np.ndarray,
        micro_batch: int,
        flat: FlatParameterView,
        shard_pool: "_MicroBatchPool",
    ) -> Tuple[float, int]:
        """One data-parallel step over the canonical micro-batch partition.

        Gradients are normalised by the full mini-batch size and reduced in
        canonical index order, so the step is invariant to the worker count
        (and equals the full-batch gradient up to float summation order).
        """
        slices = micro_batch_slices(xb.shape[0], micro_batch)
        parts = shard_pool.run(xb, yb, slices, self.loss)
        batch_loss = 0.0
        correct = 0
        for value, n_correct in parts:
            batch_loss += value
            correct += n_correct
        grad_stack = shard_pool.grad_stack(len(slices), flat.size)
        np.sum(grad_stack[: len(slices)], axis=0, out=flat.grads)
        self.optimizer.step_flat(flat)
        return batch_loss, correct

    # ------------------------------------------------------------- evaluate
    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int = 128,
        workers: WorkerSpec = None,
    ) -> float:
        """Accuracy of the model on ``(x, y)``.

        ``workers`` shards the prediction batches across threads (see
        :func:`repro.nn.runtime.run_sharded`); results are bit-identical
        for every worker count.
        """
        predictions = self.model.predict_classes(
            x, batch_size=batch_size, workers=workers
        )
        return accuracy(predictions, np.asarray(y, dtype=np.int64))


class _MicroBatchPool:
    """Thread replicas + executor for one data-parallel ``fit`` call.

    Each worker thread checks a replica out of a queue, runs the
    forward/loss/backward of one micro-batch inside its own
    :func:`workspace_scope`, packs the replica's gradients into the
    micro-batch's row of a shared stack, and returns the replica.  Which
    thread computes which micro-batch never matters: replicas share the
    parameter storage and the packing row is fixed by the micro-batch
    index, so the reduction input is identical for every worker count.
    """

    def __init__(
        self, model, flat: FlatParameterView, workers: int, arena: Workspace
    ) -> None:
        self._flat = flat
        self._workers = max(1, workers)
        self._stack: Optional[np.ndarray] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._replicas: "queue.SimpleQueue" = queue.SimpleQueue()
        if self._workers == 1:
            # serial: compute on the model itself (its arena is already bound)
            self._model = model
            self._arena = arena
        else:
            self._model = None
            self._arena = None
            for replica in training_replicas(model, self._workers):
                workspace = Workspace()
                workspace.bind(replica)
                self._replicas.put((replica, workspace))
            self._executor = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-train"
            )

    def grad_stack(self, rows: int, size: int) -> np.ndarray:
        if self._stack is None or self._stack.shape[0] < rows:
            self._stack = np.empty((rows, size), dtype=np.float64)
        return self._stack

    def run(
        self, xb: np.ndarray, yb: np.ndarray, slices, loss: Loss
    ) -> List[Tuple[float, int]]:
        """Per-micro-batch (loss contribution, correct count), in order."""
        total = int(xb.shape[0])
        stack = self.grad_stack(len(slices), self._flat.size)

        def run_micro(index: int) -> Tuple[float, int]:
            micro = slices[index]
            if self._model is not None:
                replica, workspace = self._model, self._arena
            else:
                replica, workspace = self._replicas.get()
            try:
                with workspace_scope():
                    logits = replica.forward(xb[micro], training=True)
                    value, grad = loss.value_and_gradient(
                        logits, yb[micro], normalizer=total
                    )
                    workspace.reclaim(replica.backward(grad))
                self._flat.pack_grads(model=replica, out=stack[index])
                correct = int(np.sum(np.argmax(logits, axis=-1) == yb[micro]))
                return value, correct
            finally:
                if self._model is None:
                    self._replicas.put((replica, workspace))

        indices = range(len(slices))
        if self._executor is None or len(slices) == 1:
            return [run_micro(i) for i in indices]
        return list(self._executor.map(run_micro, indices))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
