"""Saving and loading model weights as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.model import Sequential


def save_weights(model: Sequential, path: str) -> None:
    """Write the model's parameters to an ``.npz`` archive."""
    state = model.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # '/' is not a valid npz key separator on all platforms; escape it.
    np.savez(path, **{key.replace("/", "__"): value for key, value in state.items()})


def load_weights(model: Sequential, path: str) -> None:
    """Load parameters saved by :func:`save_weights` into a built model."""
    if not os.path.exists(path):
        raise ConfigurationError(f"weight file {path!r} does not exist")
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {
            key.replace("__", "/"): archive[key] for key in archive.files
        }
    model.load_state_dict(state)
