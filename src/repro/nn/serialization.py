"""Model serialization: ``.npz`` weight archives and spawn-safe snapshots.

Two serialization forms coexist here:

* :func:`save_weights` / :func:`load_weights` persist *parameters only* to
  disk, keyed by layer name (the model zoo's cache format);
* :func:`dumps_model` / :func:`loads_model` snapshot a *whole built model*
  (architecture + parameters) to bytes for shipping to spawn-started worker
  processes — the transport the process-sharded attack runtime uses.  Layers
  drop their transient backward caches on pickling (see
  :meth:`repro.nn.layers.base.Layer.__getstate__`), so the payload stays
  small and the copy behaves like a freshly built model.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.model import Sequential


def save_weights(model: Sequential, path: str) -> None:
    """Write the model's parameters to an ``.npz`` archive."""
    state = model.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # '/' is not a valid npz key separator on all platforms; escape it.
    np.savez(path, **{key.replace("/", "__"): value for key, value in state.items()})


def load_weights(model: Sequential, path: str) -> None:
    """Load parameters saved by :func:`save_weights` into a built model."""
    if not os.path.exists(path):
        raise ConfigurationError(f"weight file {path!r} does not exist")
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {
            key.replace("__", "/"): archive[key] for key in archive.files
        }
    model.load_state_dict(state)


def dumps_model(model: Sequential) -> bytes:
    """Snapshot a built model to bytes (architecture + parameters).

    The payload is safe to hand to a ``spawn``-started process: it carries
    no transient activation caches, no open handles and no thread state.
    """
    if not isinstance(model, Sequential):
        raise ConfigurationError(
            f"dumps_model expects a Sequential model, got {type(model).__name__}"
        )
    return pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)


def loads_model(payload: bytes) -> Sequential:
    """Rebuild a model snapshot produced by :func:`dumps_model`."""
    model = pickle.loads(payload)
    if not isinstance(model, Sequential):
        raise ConfigurationError(
            f"model payload decoded to {type(model).__name__}, expected Sequential"
        )
    return model
