"""Fault-tolerance primitives: retries, deadlines and scripted fault injection.

Every long-running stage in this repo — training, adversarial crafting,
artifact-store IO — is deterministic and content-addressed (PRs 1-5), which
makes crash recovery *provable*: a resumed or retried computation must
produce byte-identical artifacts, so fault tolerance is tested as a
bit-identity invariant rather than a best-effort behavior.  This module
holds the shared machinery the store, the worker pools and the trainer build
that recovery on:

:class:`RetryPolicy`
    Bounded attempts with deterministic exponential backoff (no jitter — the
    delay sequence is part of the reproducibility contract) and a
    transient-vs-fatal error classification.  ``OSError`` and friends are
    transient (a flaky filesystem deserves another try); programming and
    configuration errors are fatal and surface immediately.

:class:`Deadline` / :func:`run_with_deadline`
    Wall-clock budgets.  ``Deadline`` is a passive budget consulted by
    polling loops (lease waits); ``run_with_deadline`` actively bounds one
    call by running it on a worker thread.

:class:`FaultInjector` / :class:`FaultRule`
    A process-global, deterministically scripted fault plan.  Production
    code consults *named fault points* (``store.write``, ``pool.process``,
    ``trainer.epoch``, and the remote-store points ``backend.get`` /
    ``backend.put`` / ``backend.head`` / ``backend.list`` /
    ``backend.delete``, ...) via :meth:`FaultInjector.consult`; with no plan
    active the consult is a single attribute check and the runtime cost is
    nil.  A chaos test activates a plan — "raise ``OSError`` on the second
    store write", "SIGKILL the worker crafting shard 3", "corrupt 8 bytes of
    this artifact" — and the production retry/recovery paths run exactly as
    a real fault would run them, without monkeypatching.  Plans can also be
    supplied from the environment (``REPRO_FAULT_PLAN`` holding the JSON
    rule list), which is how the CI fault-injection job kills a training
    process at epoch K from outside the interpreter.

Environment knobs
-----------------
``REPRO_MAX_RETRIES``
    Attempts per retried operation (default 3; 1 disables retrying).
``REPRO_RETRY_BACKOFF``
    First backoff delay in seconds (default 0.05; doubles per attempt).
``REPRO_FAULT_PLAN``
    JSON list of fault-rule dicts activated at first consult.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    FaultInjectionError,
)

logger = logging.getLogger("repro.resilience")

#: environment variable bounding retry attempts
MAX_RETRIES_ENV_VAR = "REPRO_MAX_RETRIES"

#: environment variable setting the first backoff delay (seconds)
RETRY_BACKOFF_ENV_VAR = "REPRO_RETRY_BACKOFF"

#: environment variable holding a JSON fault plan (list of rule dicts)
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"


# --------------------------------------------------------------------- retry
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the first try: 3 means one try plus two retries,
    1 disables retrying entirely.  The backoff sequence is deterministic
    (``backoff_s * backoff_factor ** (attempt - 1)``, capped at
    ``max_backoff_s``) — no jitter, so a retried run's timing profile is
    reproducible and tests can assert the exact schedule.

    Transient errors (``transient`` types, default ``OSError``) are retried;
    everything else is fatal and re-raised immediately — a shape mismatch or
    a misconfiguration never deserves a second attempt.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    transient: Tuple[type, ...] = (OSError,)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be a positive int, got {self.max_attempts!r}"
            )
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.max_backoff_s < 0:
            raise ConfigurationError(
                "backoff_s/max_backoff_s must be >= 0 and backoff_factor >= 1"
            )

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """A policy configured by ``REPRO_MAX_RETRIES``/``REPRO_RETRY_BACKOFF``."""
        from repro.config import env_float, env_int

        settings = {
            "max_attempts": env_int(MAX_RETRIES_ENV_VAR, cls.max_attempts),
            "backoff_s": env_float(RETRY_BACKOFF_ENV_VAR, cls.backoff_s),
        }
        settings.update(overrides)
        return cls(**settings)

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying."""
        return isinstance(exc, self.transient)

    def delay_s(self, attempt: int) -> float:
        """Backoff before the retry following ``attempt`` (1-based)."""
        return min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )

    def run(
        self,
        fn: Callable,
        description: str = "operation",
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Call ``fn()`` under this policy; returns its result.

        Fatal errors and the final transient failure propagate unchanged.
        ``on_retry(attempt, exc)`` fires before each backoff sleep — the
        store uses it to count retries in its stats.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as exc:
                if not self.is_transient(exc) or attempt == self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                logger.warning(
                    "%s failed (%s: %s); retry %d/%d in %.3fs",
                    description,
                    type(exc).__name__,
                    exc,
                    attempt,
                    self.max_attempts - 1,
                    self.delay_s(attempt),
                )
                self.sleep(self.delay_s(attempt))


# ----------------------------------------------------------------- deadlines
class Deadline:
    """A wall-clock budget for polling loops.

    Passive: callers ask :meth:`remaining`/:meth:`expired` (or
    :meth:`check`, which raises) between poll iterations.  ``timeout_s=None``
    never expires.
    """

    def __init__(self, timeout_s: Optional[float]) -> None:
        if timeout_s is not None and timeout_s < 0:
            raise ConfigurationError(f"timeout_s must be >= 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self._expires = None if timeout_s is None else time.monotonic() + timeout_s

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` for no deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def check(self, description: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(
                f"{description} exceeded its {self.timeout_s:.1f}s deadline"
            )


def run_with_deadline(fn: Callable, timeout_s: float, description: str = "operation"):
    """Call ``fn()`` with a hard wall-clock bound; returns its result.

    Runs ``fn`` on a worker thread and raises :class:`DeadlineExceededError`
    when it has not finished within ``timeout_s``.  Python cannot kill a
    thread, so on timeout the call keeps running detached — use this for
    operations whose effects are idempotent or atomic (store IO is both).
    """
    if timeout_s <= 0:
        raise ConfigurationError(f"timeout_s must be positive, got {timeout_s}")
    pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-deadline")
    try:
        future = pool.submit(fn)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            raise DeadlineExceededError(
                f"{description} exceeded its {timeout_s:.1f}s deadline"
            ) from None
    finally:
        pool.shutdown(wait=False)


# ------------------------------------------------------------ fault injection
#: exception types a fault rule may script, by name (JSON plans use names)
FAULT_ERRORS: Dict[str, type] = {
    "OSError": OSError,
    "IOError": OSError,
    "ConnectionError": ConnectionError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
    "MemoryError": MemoryError,
    "KeyboardInterrupt": KeyboardInterrupt,
}

_ACTIONS = ("raise", "delay", "exit", "sigkill", "kill_worker", "corrupt")


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault: *at this point, on this consult, do this*.

    ``point`` names the fault point consulted by production code;
    ``index`` is the 0-based consult (or shard) ordinal the rule fires on,
    and ``count`` how many consecutive consults it covers.  Actions:

    ``raise``
        Raise ``error`` (a :data:`FAULT_ERRORS` name) with ``message``.
    ``delay``
        Sleep ``delay_s`` (latency injection), then continue normally.
    ``exit``
        ``os._exit(exit_code)`` — an abrupt interpreter death with no
        cleanup, atexit hooks or finally blocks.
    ``sigkill``
        ``SIGKILL`` the calling process — the harshest interruption the OS
        offers (the CI resume-determinism job uses this at ``trainer.epoch``).
    ``kill_worker``
        Handled by :class:`repro.nn.runtime.ProcessShardPool`: the worker
        process running the matching shard kills itself, and the pool's
        self-healing path must recover.
    ``corrupt``
        Handled by the artifact store: overwrite ``corrupt_bytes`` bytes of
        the just-written payload at ``corrupt_offset`` — a simulated torn or
        bit-rotted artifact that :meth:`ArtifactStore.verify` must catch.

    Rules hold only primitives (the error as a *name*), so they pickle
    cleanly into spawned worker processes.
    """

    point: str
    index: int = 0
    action: str = "raise"
    error: str = "OSError"
    message: str = "injected fault"
    count: int = 1
    delay_s: float = 0.0
    exit_code: int = 70
    corrupt_bytes: int = 8
    corrupt_offset: int = 0

    def __post_init__(self) -> None:
        if not self.point or not isinstance(self.point, str):
            raise FaultInjectionError(f"fault point must be a name, got {self.point!r}")
        if self.action not in _ACTIONS:
            raise FaultInjectionError(
                f"unknown fault action {self.action!r}; known: {_ACTIONS}"
            )
        if self.action == "raise" and self.error not in FAULT_ERRORS:
            raise FaultInjectionError(
                f"unknown fault error {self.error!r}; known: {sorted(FAULT_ERRORS)}"
            )
        if self.index < 0 or self.count < 1:
            raise FaultInjectionError("index must be >= 0 and count >= 1")

    def matches(self, ordinal: int) -> bool:
        """Whether the rule covers the given 0-based consult/shard ordinal."""
        return self.index <= ordinal < self.index + self.count

    def trigger(self) -> None:
        """Perform the rule's process-local action (raise/delay/exit/sigkill)."""
        if self.action == "raise":
            raise FAULT_ERRORS[self.error](self.message)
        if self.action == "delay":
            time.sleep(self.delay_s)
        elif self.action == "exit":
            os._exit(self.exit_code)
        elif self.action == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        # kill_worker / corrupt are caller-interpreted: consult returns them

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise FaultInjectionError(f"unknown fault-rule keys: {sorted(unknown)}")
        return cls(**payload)


class FaultInjector:
    """Process-global scripted fault plan consulted at named fault points.

    With no plan active (the production state), :meth:`consult` returns
    after a single class-attribute check.  Chaos tests activate a plan with
    :meth:`activate`/:func:`fault_plan` and production code misbehaves in
    exactly the scripted ways — through its real failure paths, with no
    monkeypatching.  Consults are counted per point, so "the Nth write"
    is well-defined and deterministic.
    """

    _plan: Optional[Tuple[FaultRule, ...]] = None
    _counters: Dict[str, int] = {}
    _fired: List[Tuple[str, int, FaultRule]] = []
    _lock = threading.Lock()
    _env_loaded = False

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def activate(cls, rules: Sequence[FaultRule]) -> None:
        """Install a fault plan (replacing any active one); resets counters."""
        with cls._lock:
            cls._plan = tuple(rules)
            cls._counters = {}
            cls._fired = []

    @classmethod
    def deactivate(cls) -> None:
        """Remove the active plan and reset counters."""
        with cls._lock:
            cls._plan = None
            cls._counters = {}
            cls._fired = []

    @classmethod
    def active(cls) -> bool:
        cls._load_env_plan()
        return cls._plan is not None

    @classmethod
    def fired(cls) -> List[Tuple[str, int, FaultRule]]:
        """The (point, ordinal, rule) triples that have fired, in order."""
        with cls._lock:
            return list(cls._fired)

    @classmethod
    def _load_env_plan(cls) -> None:
        # the environment plan is read once per process: spawned children and
        # CLI invocations inherit chaos through the environment
        if cls._env_loaded:
            return
        with cls._lock:
            if cls._env_loaded:
                return
            cls._env_loaded = True
            raw = os.environ.get(FAULT_PLAN_ENV_VAR)
            if not raw:
                return
            try:
                payloads = json.loads(raw)
                rules = tuple(FaultRule.from_dict(p) for p in payloads)
            except (ValueError, TypeError) as exc:
                raise FaultInjectionError(
                    f"{FAULT_PLAN_ENV_VAR} holds an invalid fault plan: {exc}"
                ) from exc
            if cls._plan is None:
                cls._plan = rules
                cls._counters = {}
                cls._fired = []

    # -------------------------------------------------------------- consult
    @classmethod
    def consult(cls, point: str) -> Optional[FaultRule]:
        """Consult a fault point; fires any matching rule of the active plan.

        Process-local actions (``raise``/``delay``/``exit``/``sigkill``)
        execute here; caller-interpreted actions (``kill_worker``,
        ``corrupt``) are returned for the call site to apply.  Returns
        ``None`` when nothing fires — the common case, and with no plan
        active the only work is one attribute check.
        """
        if cls._plan is None and cls._env_loaded:
            return None
        cls._load_env_plan()
        with cls._lock:
            if cls._plan is None:
                return None
            ordinal = cls._counters.get(point, 0)
            cls._counters[point] = ordinal + 1
            rule = next(
                (
                    r
                    for r in cls._plan
                    if r.point == point and r.matches(ordinal)
                ),
                None,
            )
            if rule is not None:
                cls._fired.append((point, ordinal, rule))
        if rule is not None:
            logger.warning(
                "fault injected at %s[%d]: %s", point, ordinal, rule.action
            )
            rule.trigger()
        return rule

    @classmethod
    def rules_for(cls, point: str) -> Tuple[FaultRule, ...]:
        """The still-armed rules of one point (for shipping into workers)."""
        if cls._plan is None and cls._env_loaded:
            return ()
        cls._load_env_plan()
        with cls._lock:
            if cls._plan is None:
                return ()
            return tuple(r for r in cls._plan if r.point == point)

    @classmethod
    def disarm(cls, point: str) -> None:
        """Remove every rule of one point from the active plan.

        Used by recovery paths after a caller-interpreted fault was applied
        out-of-process (a killed worker cannot update the parent's
        counters): the pool disarms ``pool.worker`` after the crash so the
        retried map runs clean.
        """
        with cls._lock:
            if cls._plan is None:
                return
            remaining = tuple(r for r in cls._plan if r.point != point)
            removed = len(cls._plan) - len(remaining)
            cls._plan = remaining
            if removed:
                cls._fired.append((point, -1, FaultRule(point=point, action="delay")))


class fault_plan:
    """Context manager scripting a fault plan for one ``with`` block.

    ::

        with fault_plan([FaultRule(point="store.write", index=1)]):
            store.put_arrays(...)   # the second write raises OSError once
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self.rules = list(rules)

    def __enter__(self) -> "fault_plan":
        FaultInjector.activate(self.rules)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        FaultInjector.deactivate()


def corrupt_file(path: str, offset: int = 0, n_bytes: int = 8) -> int:
    """Deterministically flip ``n_bytes`` bytes of a file at ``offset``.

    The store's ``corrupt`` fault action and the chaos tests share this
    helper.  Bytes are XORed with 0xFF, so corruption is self-inverse and
    never a no-op.  Returns the number of bytes actually corrupted (clipped
    to the file size); corrupting an empty span is a scripting error.
    """
    size = os.path.getsize(path)
    if offset >= size:
        raise FaultInjectionError(
            f"corrupt offset {offset} is past the end of {path} ({size} bytes)"
        )
    span = min(n_bytes, size - offset)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(span)
        handle.seek(offset)
        handle.write(bytes(b ^ 0xFF for b in original))
    return span


__all__ = [
    "RetryPolicy",
    "Deadline",
    "run_with_deadline",
    "FaultRule",
    "FaultInjector",
    "fault_plan",
    "corrupt_file",
    "FAULT_ERRORS",
    "MAX_RETRIES_ENV_VAR",
    "RETRY_BACKOFF_ENV_VAR",
    "FAULT_PLAN_ENV_VAR",
]
