"""Synthetic MNIST substitute: procedurally rendered digit-like glyphs.

The real MNIST download is not available offline, so this module generates a
deterministic 10-class, 28x28 grayscale dataset with the same tensor layout
and value range.  Each class is a hand-designed stroke glyph resembling the
corresponding digit; every sample applies a random affine perturbation
(shift / rotation / scale), intensity jitter and additive noise, which gives
the intra-class variability needed for the accurate models, the quantized
models and the AxDNNs to behave like their MNIST counterparts in the paper's
pipeline (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.base import DataSplit, Dataset
from repro.datasets.rendering import random_affine, render_strokes
from repro.errors import ConfigurationError

IMAGE_SIZE = 28
NUM_CLASSES = 10

#: stroke description of each digit glyph, in (row, col) coordinates in [0, 1]
DIGIT_STROKES: Dict[int, List[dict]] = {
    0: [{"arc": ((0.50, 0.50), 0.30, 0.0, 360.0)}],
    1: [
        {"line": ((0.35, 0.40), (0.20, 0.55))},
        {"line": ((0.20, 0.55), (0.80, 0.55))},
        {"line": ((0.80, 0.40), (0.80, 0.70))},
    ],
    2: [
        {"arc": ((0.35, 0.50), 0.20, -80.0, 110.0)},
        {"line": ((0.48, 0.66), (0.80, 0.30))},
        {"line": ((0.80, 0.30), (0.80, 0.72))},
    ],
    3: [
        {"arc": ((0.33, 0.48), 0.18, -60.0, 150.0)},
        {"arc": ((0.67, 0.48), 0.18, 30.0, 240.0)},
    ],
    4: [
        {"line": ((0.20, 0.62), (0.80, 0.62))},
        {"line": ((0.20, 0.62), (0.58, 0.28))},
        {"line": ((0.58, 0.28), (0.58, 0.78))},
    ],
    5: [
        {"line": ((0.22, 0.32), (0.22, 0.72))},
        {"line": ((0.22, 0.32), (0.50, 0.32))},
        {"arc": ((0.65, 0.48), 0.20, 20.0, 270.0)},
    ],
    6: [
        {"line": ((0.22, 0.58), (0.55, 0.32))},
        {"arc": ((0.68, 0.50), 0.20, 0.0, 360.0)},
    ],
    7: [
        {"line": ((0.22, 0.30), (0.22, 0.74))},
        {"line": ((0.22, 0.74), (0.80, 0.42))},
    ],
    8: [
        {"arc": ((0.34, 0.50), 0.17, 0.0, 360.0)},
        {"arc": ((0.68, 0.50), 0.19, 0.0, 360.0)},
    ],
    9: [
        {"arc": ((0.36, 0.48), 0.19, 0.0, 360.0)},
        {"line": ((0.40, 0.66), (0.80, 0.60))},
    ],
}


def glyph_template(digit: int, size: int = IMAGE_SIZE, thickness: float = 1.8) -> np.ndarray:
    """Render the canonical glyph of a digit class."""
    if digit not in DIGIT_STROKES:
        raise ConfigurationError(f"digit must be in [0, 9], got {digit}")
    return render_strokes(size, DIGIT_STROKES[digit], thickness=thickness)


class SyntheticMNIST:
    """Generator for the synthetic MNIST-like dataset."""

    def __init__(
        self,
        noise_level: float = 0.08,
        max_shift: int = 2,
        max_rotate_deg: float = 12.0,
        scale_range: Tuple[float, float] = (0.9, 1.1),
        image_size: int = IMAGE_SIZE,
    ) -> None:
        self.noise_level = noise_level
        self.max_shift = max_shift
        self.max_rotate_deg = max_rotate_deg
        self.scale_range = scale_range
        self.image_size = image_size
        self._templates = {
            digit: glyph_template(digit, image_size) for digit in range(NUM_CLASSES)
        }

    # ------------------------------------------------------------- sampling
    def sample(self, digit: int, rng: np.random.Generator) -> np.ndarray:
        """Generate one (H, W, 1) sample of a digit class."""
        template = self._templates[digit]
        image = random_affine(
            template,
            rng,
            max_shift=self.max_shift,
            max_rotate_deg=self.max_rotate_deg,
            scale_range=self.scale_range,
        )
        intensity = rng.uniform(0.75, 1.0)
        image = image * intensity
        image = image + rng.normal(0.0, self.noise_level, size=image.shape)
        return np.clip(image, 0.0, 1.0)[..., None]

    def generate(
        self, n_samples: int, seed: int = 0, balanced: bool = True
    ) -> DataSplit:
        """Generate a split of ``n_samples`` images with labels."""
        if n_samples <= 0:
            raise ConfigurationError(f"n_samples must be positive, got {n_samples}")
        rng = np.random.default_rng(seed)
        if balanced:
            labels = np.arange(n_samples) % NUM_CLASSES
            rng.shuffle(labels)
        else:
            labels = rng.integers(0, NUM_CLASSES, size=n_samples)
        images = np.stack([self.sample(int(label), rng) for label in labels])
        return DataSplit(images.astype(np.float64), labels.astype(np.int64))

    def load(
        self, n_train: int = 2000, n_test: int = 400, seed: int = 0
    ) -> Dataset:
        """Generate the full train/test dataset."""
        train = self.generate(n_train, seed=seed)
        test = self.generate(n_test, seed=seed + 1)
        return Dataset(
            name="synthetic-mnist",
            train=train,
            test=test,
            num_classes=NUM_CLASSES,
            image_shape=(self.image_size, self.image_size, 1),
        )


def load_synthetic_mnist(
    n_train: int = 2000, n_test: int = 400, seed: int = 0
) -> Dataset:
    """Convenience wrapper mirroring a torchvision-style loader."""
    return SyntheticMNIST().load(n_train=n_train, n_test=n_test, seed=seed)
