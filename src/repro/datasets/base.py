"""Dataset containers and batching helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import ShapeError


@dataclass
class DataSplit:
    """One split (train or test) of a dataset: images plus integer labels."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ShapeError(
                f"images and labels disagree on sample count: {self.images.shape[0]} "
                f"vs {self.labels.shape[0]}"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def subset(self, count: int) -> "DataSplit":
        """First ``count`` samples (used to keep benchmark runtimes bounded)."""
        return DataSplit(self.images[:count], self.labels[:count])

    def batches(
        self, batch_size: int, shuffle: bool = False, seed: int = 0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over mini-batches."""
        order = np.arange(len(self))
        if shuffle:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            index = order[start : start + batch_size]
            yield self.images[index], self.labels[index]


@dataclass
class Dataset:
    """A train/test dataset with image metadata."""

    name: str
    train: DataSplit
    test: DataSplit
    num_classes: int
    image_shape: Tuple[int, int, int]

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"{self.name}: {len(self.train)} train / {len(self.test)} test samples, "
            f"shape {self.image_shape}, {self.num_classes} classes"
        )
