"""Synthetic datasets replacing the MNIST / CIFAR-10 downloads (offline).

See DESIGN.md for the substitution rationale: the datasets preserve tensor
shapes, value ranges and class counts so every downstream code path (training,
quantization, LUT inference, attacks, robustness sweeps) is exercised exactly
as with the real data.
"""

from repro.datasets.base import DataSplit, Dataset
from repro.datasets.synthetic_cifar10 import (
    CLASS_RECIPES,
    SyntheticCIFAR10,
    load_synthetic_cifar10,
)
from repro.datasets.synthetic_mnist import (
    DIGIT_STROKES,
    SyntheticMNIST,
    glyph_template,
    load_synthetic_mnist,
)

__all__ = [
    "Dataset",
    "DataSplit",
    "SyntheticMNIST",
    "SyntheticCIFAR10",
    "load_synthetic_mnist",
    "load_synthetic_cifar10",
    "glyph_template",
    "DIGIT_STROKES",
    "CLASS_RECIPES",
]
