"""Procedural rasterisation helpers for the synthetic datasets.

The synthetic MNIST substitute renders digit-like glyphs from stroke
descriptions; the synthetic CIFAR-10 substitute renders coloured shapes over
textured backgrounds.  Everything here is deterministic given an explicit
``numpy.random.Generator``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


def blank_canvas(size: int) -> np.ndarray:
    """A zeroed ``size x size`` float canvas."""
    return np.zeros((size, size), dtype=np.float64)


def draw_line(
    canvas: np.ndarray, start: Point, end: Point, thickness: float = 1.6
) -> None:
    """Draw an anti-aliased line segment (coordinates in [0, 1], row/col order)."""
    size = canvas.shape[0]
    r0, c0 = start[0] * (size - 1), start[1] * (size - 1)
    r1, c1 = end[0] * (size - 1), end[1] * (size - 1)
    length = max(abs(r1 - r0), abs(c1 - c0), 1.0)
    steps = int(np.ceil(length * 2)) + 1
    rows = np.linspace(r0, r1, steps)
    cols = np.linspace(c0, c1, steps)
    grid_r, grid_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    for r, c in zip(rows, cols):
        distance_sq = (grid_r - r) ** 2 + (grid_c - c) ** 2
        canvas += np.exp(-distance_sq / (2.0 * (thickness / 2.0) ** 2))
    np.clip(canvas, 0.0, 1.0, out=canvas)


def draw_arc(
    canvas: np.ndarray,
    center: Point,
    radius: float,
    start_deg: float,
    end_deg: float,
    thickness: float = 1.6,
) -> None:
    """Draw a circular arc (angles in degrees, coordinates in [0, 1])."""
    size = canvas.shape[0]
    cr, cc = center[0] * (size - 1), center[1] * (size - 1)
    rad = radius * (size - 1)
    angles = np.linspace(np.radians(start_deg), np.radians(end_deg), 48)
    grid_r, grid_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    for angle in angles:
        r = cr - rad * np.cos(angle)
        c = cc + rad * np.sin(angle)
        distance_sq = (grid_r - r) ** 2 + (grid_c - c) ** 2
        canvas += np.exp(-distance_sq / (2.0 * (thickness / 2.0) ** 2))
    np.clip(canvas, 0.0, 1.0, out=canvas)


def render_strokes(
    size: int, strokes: Sequence[dict], thickness: float = 1.6
) -> np.ndarray:
    """Render a glyph described as a list of stroke dictionaries.

    A stroke is either ``{"line": (start, end)}`` or
    ``{"arc": (center, radius, start_deg, end_deg)}``.
    """
    canvas = blank_canvas(size)
    for stroke in strokes:
        if "line" in stroke:
            start, end = stroke["line"]
            draw_line(canvas, start, end, thickness)
        elif "arc" in stroke:
            center, radius, start_deg, end_deg = stroke["arc"]
            draw_arc(canvas, center, radius, start_deg, end_deg, thickness)
        else:
            raise ValueError(f"unknown stroke type in {stroke!r}")
    return canvas


def random_affine(
    image: np.ndarray,
    rng: np.random.Generator,
    max_shift: int = 2,
    max_rotate_deg: float = 12.0,
    scale_range: Tuple[float, float] = (0.9, 1.1),
) -> np.ndarray:
    """Apply a small random shift / rotation / scale to a grayscale image."""
    from scipy import ndimage

    angle = rng.uniform(-max_rotate_deg, max_rotate_deg)
    scale = rng.uniform(*scale_range)
    shifted = ndimage.rotate(image, angle, reshape=False, order=1, mode="constant")
    zoomed = ndimage.zoom(shifted, scale, order=1, mode="constant")
    # crop or pad back to the original size, centred
    size = image.shape[0]
    result = np.zeros_like(image)
    z = zoomed.shape[0]
    if z >= size:
        offset = (z - size) // 2
        result = zoomed[offset : offset + size, offset : offset + size]
    else:
        offset = (size - z) // 2
        result[offset : offset + z, offset : offset + z] = zoomed
    shift_r = rng.integers(-max_shift, max_shift + 1)
    shift_c = rng.integers(-max_shift, max_shift + 1)
    result = np.roll(result, (shift_r, shift_c), axis=(0, 1))
    return np.clip(result, 0.0, 1.0)


def checkerboard(size: int, period: int, phase: int = 0) -> np.ndarray:
    """A binary checkerboard texture."""
    rows, cols = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    return (((rows + phase) // period + (cols + phase) // period) % 2).astype(np.float64)


def stripes(size: int, period: int, horizontal: bool = True) -> np.ndarray:
    """A binary stripe texture."""
    axis = np.arange(size)
    pattern = ((axis // period) % 2).astype(np.float64)
    if horizontal:
        return np.tile(pattern[:, None], (1, size))
    return np.tile(pattern[None, :], (size, 1))


def filled_circle(size: int, center: Point, radius: float) -> np.ndarray:
    """A filled circle mask (coordinates in [0, 1])."""
    grid_r, grid_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    cr, cc = center[0] * (size - 1), center[1] * (size - 1)
    rad = radius * (size - 1)
    return ((grid_r - cr) ** 2 + (grid_c - cc) ** 2 <= rad ** 2).astype(np.float64)


def filled_rect(size: int, top_left: Point, bottom_right: Point) -> np.ndarray:
    """A filled axis-aligned rectangle mask (coordinates in [0, 1])."""
    grid_r, grid_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    r0, c0 = top_left[0] * (size - 1), top_left[1] * (size - 1)
    r1, c1 = bottom_right[0] * (size - 1), bottom_right[1] * (size - 1)
    return (
        (grid_r >= r0) & (grid_r <= r1) & (grid_c >= c0) & (grid_c <= c1)
    ).astype(np.float64)


def filled_triangle(size: int, apex: Point, base_y: float, half_width: float) -> np.ndarray:
    """A filled isoceles triangle mask pointing upwards."""
    grid_r, grid_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    ar, ac = apex[0] * (size - 1), apex[1] * (size - 1)
    by = base_y * (size - 1)
    hw = half_width * (size - 1)
    height = max(by - ar, 1.0)
    # width of the triangle at a given row grows linearly from apex to base
    rel = np.clip((grid_r - ar) / height, 0.0, 1.0)
    inside_rows = (grid_r >= ar) & (grid_r <= by)
    inside_cols = np.abs(grid_c - ac) <= rel * hw
    return (inside_rows & inside_cols).astype(np.float64)
