"""Synthetic CIFAR-10 substitute: coloured shapes over textured backgrounds.

The real CIFAR-10 archive is not available offline, so this module generates
a deterministic 10-class, 32x32x3 dataset.  Each class pairs a background
texture with a coloured foreground shape; samples randomise hue, position,
size, texture phase and noise.  The classes are deliberately harder to
separate than the MNIST-like glyphs (colour overlap between classes), so the
AlexNet-style model lands at an accuracy regime comparable to the paper's
CIFAR-10 baseline rather than saturating.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.datasets.base import DataSplit, Dataset
from repro.datasets.rendering import (
    checkerboard,
    filled_circle,
    filled_rect,
    filled_triangle,
    stripes,
)
from repro.errors import ConfigurationError

IMAGE_SIZE = 32
NUM_CLASSES = 10

#: per-class recipe: background colour, texture, foreground shape and colour
CLASS_RECIPES: Dict[int, dict] = {
    0: {"bg": (0.55, 0.70, 0.90), "texture": "plain", "shape": "triangle", "fg": (0.75, 0.75, 0.80)},
    1: {"bg": (0.50, 0.50, 0.55), "texture": "stripes_h", "shape": "rect", "fg": (0.85, 0.15, 0.15)},
    2: {"bg": (0.40, 0.65, 0.35), "texture": "plain", "shape": "circle", "fg": (0.90, 0.80, 0.25)},
    3: {"bg": (0.55, 0.45, 0.35), "texture": "checker", "shape": "rect", "fg": (0.90, 0.55, 0.20)},
    4: {"bg": (0.35, 0.55, 0.30), "texture": "stripes_v", "shape": "triangle", "fg": (0.55, 0.40, 0.25)},
    5: {"bg": (0.75, 0.65, 0.50), "texture": "plain", "shape": "circle", "fg": (0.45, 0.30, 0.20)},
    6: {"bg": (0.20, 0.40, 0.25), "texture": "checker", "shape": "circle", "fg": (0.35, 0.75, 0.30)},
    7: {"bg": (0.60, 0.70, 0.45), "texture": "stripes_h", "shape": "rect", "fg": (0.40, 0.25, 0.18)},
    8: {"bg": (0.45, 0.60, 0.80), "texture": "stripes_v", "shape": "rect", "fg": (0.80, 0.80, 0.85)},
    9: {"bg": (0.55, 0.55, 0.60), "texture": "checker", "shape": "triangle", "fg": (0.95, 0.75, 0.20)},
}


class SyntheticCIFAR10:
    """Generator for the synthetic CIFAR-10-like dataset."""

    def __init__(
        self,
        noise_level: float = 0.06,
        color_jitter: float = 0.10,
        image_size: int = IMAGE_SIZE,
    ) -> None:
        self.noise_level = noise_level
        self.color_jitter = color_jitter
        self.image_size = image_size

    # ------------------------------------------------------------ rendering
    def _background(self, recipe: dict, rng: np.random.Generator) -> np.ndarray:
        size = self.image_size
        base = np.array(recipe["bg"], dtype=np.float64)
        base = np.clip(base + rng.uniform(-self.color_jitter, self.color_jitter, 3), 0, 1)
        image = np.ones((size, size, 3), dtype=np.float64) * base
        texture = recipe["texture"]
        period = int(rng.integers(3, 6))
        phase = int(rng.integers(0, period))
        if texture == "checker":
            mask = checkerboard(size, period, phase)
        elif texture == "stripes_h":
            mask = stripes(size, period, horizontal=True)
        elif texture == "stripes_v":
            mask = stripes(size, period, horizontal=False)
        else:
            mask = np.zeros((size, size), dtype=np.float64)
        shading = 0.12 * (mask - 0.5)
        return np.clip(image + shading[..., None], 0.0, 1.0)

    def _foreground(self, recipe: dict, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        size = self.image_size
        center = (rng.uniform(0.40, 0.60), rng.uniform(0.40, 0.60))
        scale = rng.uniform(0.22, 0.34)
        shape = recipe["shape"]
        if shape == "circle":
            mask = filled_circle(size, center, scale)
        elif shape == "rect":
            half = scale
            mask = filled_rect(
                size,
                (center[0] - half, center[1] - half * 1.3),
                (center[0] + half, center[1] + half * 1.3),
            )
        elif shape == "triangle":
            mask = filled_triangle(size, (center[0] - scale, center[1]), center[0] + scale, scale)
        else:
            raise ConfigurationError(f"unknown shape {shape!r}")
        color = np.array(recipe["fg"], dtype=np.float64)
        color = np.clip(color + rng.uniform(-self.color_jitter, self.color_jitter, 3), 0, 1)
        return mask, color

    def sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """Generate one (H, W, 3) sample of a class."""
        recipe = CLASS_RECIPES[label]
        image = self._background(recipe, rng)
        mask, color = self._foreground(recipe, rng)
        image = image * (1.0 - mask[..., None]) + color * mask[..., None]
        image = image + rng.normal(0.0, self.noise_level, size=image.shape)
        return np.clip(image, 0.0, 1.0)

    # ------------------------------------------------------------- dataset
    def generate(self, n_samples: int, seed: int = 0, balanced: bool = True) -> DataSplit:
        """Generate a split of ``n_samples`` images with labels."""
        if n_samples <= 0:
            raise ConfigurationError(f"n_samples must be positive, got {n_samples}")
        rng = np.random.default_rng(seed)
        if balanced:
            labels = np.arange(n_samples) % NUM_CLASSES
            rng.shuffle(labels)
        else:
            labels = rng.integers(0, NUM_CLASSES, size=n_samples)
        images = np.stack([self.sample(int(label), rng) for label in labels])
        return DataSplit(images.astype(np.float64), labels.astype(np.int64))

    def load(self, n_train: int = 2000, n_test: int = 400, seed: int = 0) -> Dataset:
        """Generate the full train/test dataset."""
        train = self.generate(n_train, seed=seed)
        test = self.generate(n_test, seed=seed + 1)
        return Dataset(
            name="synthetic-cifar10",
            train=train,
            test=test,
            num_classes=NUM_CLASSES,
            image_shape=(self.image_size, self.image_size, 3),
        )


def load_synthetic_cifar10(
    n_train: int = 2000, n_test: int = 400, seed: int = 0
) -> Dataset:
    """Convenience wrapper mirroring a torchvision-style loader."""
    return SyntheticCIFAR10().load(n_train=n_train, n_test=n_test, seed=seed)
