"""Single source of truth for the package version.

The version also salts every artifact-store content hash
(:func:`repro.experiments.spec.content_hash`): an artifact is only valid
for the code that produced it, so **bump this on any release that changes
numerical behaviour** (training, attacks, kernels, quantization) to
invalidate stale stores.
"""

__version__ = "1.1.0"
