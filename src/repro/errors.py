"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class ShapeError(ReproError):
    """Raised when tensors with incompatible shapes are combined."""


class CalibrationError(ReproError):
    """Raised when quantization calibration cannot be performed."""


class UnknownComponentError(ReproError, KeyError):
    """Raised when a registry lookup (multiplier, attack, model) fails."""


class NotFittedError(ReproError):
    """Raised when inference is attempted on an untrained/unbuilt component."""


class MissingArtifactError(ReproError):
    """Raised when a cache-only session would need to train or craft.

    Emitted by :class:`repro.experiments.session.Session` when
    ``require_cached`` is set (e.g. via ``REPRO_REQUIRE_CACHED=1``) and a
    requested artifact is not in the store — the mechanism CI uses to assert
    that a repeated run is served entirely from the artifact store.
    """
