"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class SpecValidationError(ConfigurationError):
    """A spec validation failure carrying a machine-readable field path.

    ``path`` names the offending field in dotted/indexed form
    (``"model.n_train"``, ``"attacks[1].attack"``; ``""`` for
    document-level problems) and ``reason`` holds the bare message, so an
    HTTP layer can return a structured 400 body and the CLI can point at
    the exact field instead of echoing a whole document.
    """

    def __init__(self, reason: str, path: str = "") -> None:
        self.reason = reason
        self.path = path
        super().__init__(f"{path}: {reason}" if path else reason)

    def at(self, prefix: str) -> "SpecValidationError":
        """The same failure re-anchored under ``prefix`` (for nested specs)."""
        path = f"{prefix}.{self.path}" if self.path else prefix
        if self.path.startswith("["):  # index path: "attacks" + "[1].attack"
            path = f"{prefix}{self.path}"
        return SpecValidationError(self.reason, path=path)

    def to_dict(self) -> dict:
        """The failure as a machine-readable JSON payload."""
        return {"error": "invalid_spec", "path": self.path, "message": self.reason}


class ShapeError(ReproError):
    """Raised when tensors with incompatible shapes are combined."""


class CalibrationError(ReproError):
    """Raised when quantization calibration cannot be performed."""


class UnknownComponentError(ReproError, KeyError):
    """Raised when a registry lookup (multiplier, attack, model) fails."""


class NotFittedError(ReproError):
    """Raised when inference is attempted on an untrained/unbuilt component."""


class MissingArtifactError(ReproError):
    """Raised when a cache-only session would need to train or craft.

    Emitted by :class:`repro.experiments.session.Session` when
    ``require_cached`` is set (e.g. via ``REPRO_REQUIRE_CACHED=1``) and a
    requested artifact is not in the store — the mechanism CI uses to assert
    that a repeated run is served entirely from the artifact store.

    Also raised by :class:`repro.experiments.store.ArtifactStore` when a
    remote store backend is *degraded* (its circuit breaker is open) and a
    read misses the local cache — ``backend_degraded`` is True in that case,
    so callers can distinguish "nobody ever computed this" from "it may
    exist remotely but the backend is unreachable right now".

    Carries enough context to act on the failure: the content hash of the
    missing artifact (``digest``), the store path that was probed (``path``),
    and — for trained models — the nearest available checkpoint epoch
    (``checkpoint_epoch``), when a partially trained run left one behind.
    """

    def __init__(
        self,
        message: str,
        kind: str = None,
        digest: str = None,
        path: str = None,
        checkpoint_epoch: int = None,
        backend_degraded: bool = False,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.digest = digest
        self.path = path
        self.checkpoint_epoch = checkpoint_epoch
        self.backend_degraded = bool(backend_degraded)


class LeaseHeldError(ReproError):
    """Raised when a single-writer store lease is held by a live writer."""


class PreconditionFailedError(ReproError):
    """Raised when a conditional store-backend put fails its ETag check.

    ``put_atomic(..., if_match=etag)`` raises this when the stored object's
    ETag no longer matches (someone replaced it), and
    ``put_atomic(..., if_none_match=True)`` when the key already exists.
    For content-addressed artifacts the latter is a *success* signal — the
    identical payload is already uploaded — which is how the store's remote
    write path deduplicates concurrent uploads from multiple hosts.
    """


class DeadlineExceededError(ReproError):
    """Raised when an operation exceeds its wall-clock deadline."""


class FaultInjectionError(ReproError):
    """Raised for misconfigured fault plans (never by an injected fault).

    Injected faults raise the error type the plan scripts (``OSError`` by
    default) so that production retry/recovery paths are exercised exactly
    as a real failure would exercise them.
    """
