"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with inconsistent parameters."""


class ShapeError(ReproError):
    """Raised when tensors with incompatible shapes are combined."""


class CalibrationError(ReproError):
    """Raised when quantization calibration cannot be performed."""


class UnknownComponentError(ReproError, KeyError):
    """Raised when a registry lookup (multiplier, attack, model) fails."""


class NotFittedError(ReproError):
    """Raised when inference is attempted on an untrained/unbuilt component."""
