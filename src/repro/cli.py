"""Command-line interface for the reproduction package.

Subcommands
-----------
``multipliers``
    List the multiplier library with error metrics and energy figures.
``attacks``
    List the attack registry (the paper's Table I).
``sweep``
    Run a multiplier x epsilon robustness sweep and print the heat-map.
``screen``
    Run the paper's error-resilience screening of candidate multipliers.
``report``
    Generate EXPERIMENTS.md from the benchmark results directory.

Examples::

    python -m repro.cli multipliers
    python -m repro.cli sweep --attack BIM_linf --multipliers M1,M4,M8 --samples 40
    python -m repro.cli report --results benchmarks/results --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.version import __version__


def _cmd_multipliers(args: argparse.Namespace) -> int:
    from repro.multipliers import (
        energy_saving_percent,
        error_reports,
        list_multipliers,
        paper_label,
    )

    names = args.names.split(",") if args.names else list_multipliers()
    reports = error_reports(names)
    header = (
        f"{'name':>16} {'label':>6} {'MAE%':>8} {'WCE%':>8} {'bias%':>8} "
        f"{'err-prob':>9} {'saving%':>8}"
    )
    print(header)
    print("-" * len(header))
    for report in reports:
        label = paper_label(report.name, "lenet") or paper_label(report.name, "alexnet") or "-"
        print(
            f"{report.name:>16} {label:>6} {report.mae_percent:>8.3f} "
            f"{report.wce_percent:>8.2f} {report.mean_error_percent:>8.3f} "
            f"{report.error_probability:>9.3f} "
            f"{energy_saving_percent(report.name):>8.1f}"
        )
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from repro.attacks import attack_table
    from repro.attacks.extended import EXTENDED_ATTACKS

    print(f"{'key':>10} {'attack':>32} {'type':>10} {'norm':>6}")
    print("-" * 62)
    for metadata in attack_table():
        key = f"{metadata.short_name}_{metadata.norm}"
        print(f"{key:>10} {metadata.name:>32} {metadata.attack_type:>10} {metadata.norm:>6}")
    if args.extended:
        print("\nextension attacks (beyond the paper's Table I):")
        for key in sorted(EXTENDED_ATTACKS):
            print(f"  {key}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_robustness_grid
    from repro.attacks import get_attack
    from repro.models import trained_lenet5
    from repro.robustness import build_victims, multiplier_sweep

    trained = trained_lenet5(n_train=args.train, n_test=300, epochs=args.epochs)
    dataset = trained.dataset
    calibration = dataset.train.images[:128]
    victims = build_victims(trained.model, args.multipliers.split(","), calibration)
    epsilons = [float(value) for value in args.epsilons.split(",")]
    grid = multiplier_sweep(
        trained.model,
        victims,
        get_attack(args.attack),
        dataset.test.images[: args.samples],
        dataset.test.labels[: args.samples],
        epsilons,
        dataset.name,
        workers=args.workers,
    )
    print(format_robustness_grid(grid))
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.models import trained_lenet5
    from repro.multipliers.selection import select_resilient_multipliers

    trained = trained_lenet5(n_train=args.train, n_test=300, epochs=args.epochs)
    dataset = trained.dataset
    report = select_resilient_multipliers(
        trained.model,
        args.candidates.split(","),
        dataset.train.images[:128],
        dataset.test.images[: args.samples],
        dataset.test.labels[: args.samples],
        accuracy_threshold_percent=args.threshold,
    )
    print(f"accuracy threshold: {report.threshold_percent:.1f}%")
    for result in report.results:
        status = "keep" if result.accepted else "drop"
        print(
            f"  [{status}] {result.name:>16}  MAE={result.mae_percent:6.3f}%  "
            f"accuracy={result.clean_accuracy_percent:5.1f}%"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_generator import write_experiments_markdown

    content = write_experiments_markdown(args.results, args.output)
    print(f"wrote {args.output} ({len(content.splitlines())} lines)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="AxDNN adversarial-robustness reproduction toolkit"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    mult = subparsers.add_parser("multipliers", help="list the multiplier library")
    mult.add_argument("--names", default="", help="comma-separated subset to show")
    mult.set_defaults(func=_cmd_multipliers)

    attacks = subparsers.add_parser("attacks", help="list the attack registry (Table I)")
    attacks.add_argument("--extended", action="store_true", help="also list extension attacks")
    attacks.set_defaults(func=_cmd_attacks)

    sweep = subparsers.add_parser("sweep", help="run a robustness sweep on LeNet-5")
    sweep.add_argument("--attack", default="BIM_linf")
    sweep.add_argument("--multipliers", default="M1,M4,M8")
    sweep.add_argument("--epsilons", default="0,0.05,0.1,0.25,0.5")
    sweep.add_argument("--samples", type=int, default=40)
    sweep.add_argument("--train", type=int, default=1500)
    sweep.add_argument("--epochs", type=int, default=4)
    sweep.add_argument(
        "--workers",
        default="auto",
        help="worker count for attack generation (processes) and victim "
        "evaluation (threads): a positive int or 'auto' (one per core); "
        "results are invariant to it",
    )
    sweep.set_defaults(func=_cmd_sweep)

    screen = subparsers.add_parser(
        "screen", help="error-resilience screening of candidate multipliers"
    )
    screen.add_argument("--candidates", default="M1,M2,M3,M4,M5,M6,M7,M8,M9")
    screen.add_argument("--threshold", type=float, default=90.0)
    screen.add_argument("--samples", type=int, default=60)
    screen.add_argument("--train", type=int, default=1500)
    screen.add_argument("--epochs", type=int, default=4)
    screen.set_defaults(func=_cmd_screen)

    report = subparsers.add_parser("report", help="generate EXPERIMENTS.md from benchmark results")
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
