"""Command-line interface for the reproduction package.

Subcommands
-----------
``run``
    Run a declarative experiment spec (JSON) through the
    :class:`repro.experiments.Session` pipeline with artifact caching.
``spec``
    Emit a template experiment spec to edit and feed back into ``run``.
``sweep``
    Run a multiplier x epsilon robustness sweep and print the heat-map
    (a shorthand for a one-attack ``run`` on LeNet-5).
``screen``
    Run the paper's error-resilience screening of candidate multipliers.
``multipliers``
    List the multiplier library with error metrics and energy figures.
``attacks``
    List the attack registry (the paper's Table I).
``report``
    Generate EXPERIMENTS.md from the benchmark results directory.
``verify``
    Audit the artifact store: re-hash every artifact against its recorded
    payload SHA-256, quarantine corrupted entries, sweep crashed writers'
    temp files and expired leases.
``serve``
    Run the robustness evaluation service: an HTTP server exposing
    experiment submission (with request coalescing), SSE progress
    streams, micro-batched single-sample queries, ``/healthz`` and
    ``/metrics``.

Examples::

    python -m repro.cli spec --name fig4a --attacks BIM_linf > fig4a.json
    python -m repro.cli run --spec fig4a.json --workers auto
    python -m repro.cli sweep --attack BIM_linf --multipliers M1,M4,M8 --samples 40
    python -m repro.cli report --results benchmarks/results --output EXPERIMENTS.md

Every subcommand that performs inference or crafting takes ``--workers``
(a positive int or ``auto``); results are invariant to it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.version import __version__


def add_store_url_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--store-url`` option.

    Selects the remote store backend behind the local artifact cache
    (``file://``, ``mem://``, ``sim://``); every subcommand that opens a
    store routes through this helper so the flag behaves identically
    everywhere.
    """
    parser.add_argument(
        "--store-url",
        default=None,
        metavar="URL",
        help="remote store backend URL — file:///path, mem://name or "
        "sim://name?latency_ms=&error_rate= (default: $REPRO_STORE_URL; "
        "empty = local-only)",
    )


def add_workers_argument(parser: argparse.ArgumentParser, default: str = None) -> None:
    """Attach the shared ``--workers`` option.

    The raw value (``"auto"`` or an int spelling) is resolved by
    ``repro.nn.runtime.resolve_workers`` downstream — every subcommand that
    runs inference or crafting routes through this one helper so the flag
    behaves identically everywhere.
    """
    parser.add_argument(
        "--workers",
        default=default,
        help="worker count for attack generation (processes) and victim "
        "evaluation (threads): a positive int or 'auto' (one per core); "
        "results are invariant to it",
    )


def _progress_printer(event) -> None:
    print(f"[{event.stage}:{event.status}] {event.detail}")


def _print_spec_error(exc) -> None:
    """Print a structured spec-validation failure (field path + message)."""
    where = exc.path or "<spec>"
    print(f"invalid spec at {where}: {exc.reason}", file=sys.stderr)
    print(json.dumps(exc.to_dict(), sort_keys=True), file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis import format_robustness_grid, format_transfer_table
    from repro.experiments import ExperimentSpec, Session, SpecValidationError

    try:
        spec = ExperimentSpec.load(args.spec)
    except SpecValidationError as exc:
        _print_spec_error(exc)
        return 2
    session = Session(
        store=args.store,
        workers=args.workers,
        progress=_progress_printer if args.verbose else None,
        require_cached=True if args.require_cached else None,
        checkpoint_every=args.checkpoint_every,
        store_url=args.store_url,
    )
    result = session.run(spec)

    source = "artifact store" if result.from_cache else "computed"
    print(f"experiment {spec.name!r} ({spec.kind}): {source} in {result.elapsed_s:.2f}s")
    for source_name, accuracy in sorted(result.source_accuracies.items()):
        print(f"  source {source_name}: clean test accuracy {accuracy * 100.0:.1f}%")
    for grid in result.grids:
        print()
        print(format_robustness_grid(grid, title=f"{spec.name}: {grid.attack_key}"))
    if result.study is not None:
        print()
        for key, comparison in sorted(result.study.comparisons.items()):
            gains = comparison.quantization_gain()
            print(
                f"  {key:10s} mean quantization gain: "
                f"{sum(gains) / len(gains):+.2f} points"
            )
        print(
            f"  overall mean quantization gain: "
            f"{result.study.mean_quantization_gain():+.2f} points"
        )
    if result.table is not None:
        datasets = sorted({cell.dataset for cell in result.table.cells})
        victims = list(dict.fromkeys(cell.victim for cell in result.table.cells))
        print()
        print(f"transferability ({result.table.attack_key}, eps={result.table.epsilon}):")
        print(format_transfer_table(result.table.cells, datasets, victims))
    stats = session.store.stats
    print(
        f"\nartifact store {session.store.root}: "
        f"{stats.hits} hit(s), {stats.misses} miss(es), {stats.puts} put(s)"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.experiments import (
        AttackSpec,
        ExperimentSpec,
        ModelSpec,
        SweepSpec,
        VictimSpec,
    )

    spec = ExperimentSpec(
        name=args.name,
        kind=args.kind,
        model=ModelSpec(
            architecture=args.architecture,
            dataset=args.dataset,
            n_train=args.train,
            n_test=max(args.samples, 300),
            epochs=args.epochs,
        ),
        victims=VictimSpec(multipliers=tuple(args.multipliers.split(","))),
        attacks=tuple(AttackSpec(attack=key) for key in args.attacks.split(",")),
        sweep=SweepSpec(
            epsilons=tuple(float(value) for value in args.epsilons.split(",")),
            n_samples=args.samples,
        ),
    )
    text = spec.to_json()
    if args.output and args.output != "-":
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output} (spec hash {spec.content_hash()[:16]})")
    else:
        print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import format_robustness_grid
    from repro.experiments import ModelSpec, Session, panel_spec

    spec = panel_spec(
        f"cli_sweep_{args.attack}",
        attacks=[args.attack],
        multipliers=args.multipliers.split(","),
        model=ModelSpec(
            architecture="lenet5",
            dataset="mnist",
            n_train=args.train,
            n_test=300,
            epochs=args.epochs,
        ),
        epsilons=[float(value) for value in args.epsilons.split(",")],
        n_samples=args.samples,
    )
    session = Session(workers=args.workers)
    result = session.run(spec)
    print(format_robustness_grid(result.grids[0]))
    return 0


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.experiments import ModelSpec, Session
    from repro.multipliers.selection import select_resilient_multipliers

    session = Session(workers=args.workers)
    trained = session.resolve_model(
        ModelSpec(
            architecture="lenet5",
            dataset="mnist",
            n_train=args.train,
            n_test=300,
            epochs=args.epochs,
        )
    )
    dataset = trained.dataset
    report = select_resilient_multipliers(
        trained.model,
        args.candidates.split(","),
        dataset.train.images[:128],
        dataset.test.images[: args.samples],
        dataset.test.labels[: args.samples],
        accuracy_threshold_percent=args.threshold,
        workers=args.workers,
    )
    print(f"accuracy threshold: {report.threshold_percent:.1f}%")
    for result in report.results:
        status = "keep" if result.accepted else "drop"
        print(
            f"  [{status}] {result.name:>16}  MAE={result.mae_percent:6.3f}%  "
            f"accuracy={result.clean_accuracy_percent:5.1f}%"
        )
    return 0


def _cmd_multipliers(args: argparse.Namespace) -> int:
    from repro.multipliers import (
        energy_saving_percent,
        error_reports,
        list_multipliers,
        paper_label,
    )

    names = args.names.split(",") if args.names else list_multipliers()
    reports = error_reports(names)
    header = (
        f"{'name':>16} {'label':>6} {'MAE%':>8} {'WCE%':>8} {'bias%':>8} "
        f"{'err-prob':>9} {'saving%':>8}"
    )
    print(header)
    print("-" * len(header))
    for report in reports:
        label = paper_label(report.name, "lenet") or paper_label(report.name, "alexnet") or "-"
        print(
            f"{report.name:>16} {label:>6} {report.mae_percent:>8.3f} "
            f"{report.wce_percent:>8.2f} {report.mean_error_percent:>8.3f} "
            f"{report.error_probability:>9.3f} "
            f"{energy_saving_percent(report.name):>8.1f}"
        )
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from repro.attacks import attack_table
    from repro.attacks.extended import EXTENDED_ATTACKS

    print(f"{'key':>10} {'attack':>32} {'type':>10} {'norm':>6}")
    print("-" * 62)
    for metadata in attack_table():
        key = f"{metadata.short_name}_{metadata.norm}"
        print(f"{key:>10} {metadata.name:>32} {metadata.attack_type:>10} {metadata.norm:>6}")
    if args.extended:
        print("\nextension attacks (beyond the paper's Table I):")
        for key in sorted(EXTENDED_ATTACKS):
            print(f"  {key}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments import ArtifactStore

    store = ArtifactStore(args.store, store_url=args.store_url)
    findings = store.verify(repair=not args.no_repair)
    entries = store.entries()
    print(f"artifact store {store.root}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
    if not findings:
        print("verify: clean (every payload matches its recorded hash)")
        return 0
    for finding in findings:
        action = "quarantined" if finding.quarantined else "found"
        print(f"  [{action}] {finding.kind}/{finding.digest[:16]}: {finding.problem}")
    print(f"verify: {len(findings)} problem(s) {'repaired' if not args.no_repair else 'found'}")
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_generator import write_experiments_markdown

    content = write_experiments_markdown(args.results, args.output)
    print(f"wrote {args.output} ({len(content.splitlines())} lines)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.service import ServiceApp

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(levelname)s %(message)s"
    )
    app = ServiceApp(
        store=args.store,
        store_url=args.store_url,
        workers=args.job_workers,
        queue_depth=args.queue_depth,
        session_workers=args.workers,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        drain_timeout_s=args.drain_timeout,
    )
    app.run(host=args.host, port=args.port)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="AxDNN adversarial-robustness reproduction toolkit"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    run = subparsers.add_parser(
        "run", help="run a declarative experiment spec with artifact caching"
    )
    run.add_argument("--spec", required=True, help="path to an experiment spec JSON file")
    run.add_argument(
        "--store",
        default=None,
        help="artifact store root (default: $REPRO_ARTIFACT_DIR or ~/.cache/repro)",
    )
    add_store_url_argument(run)
    run.add_argument("--output", default="", help="also write the result JSON here")
    run.add_argument(
        "--require-cached",
        action="store_true",
        help="fail instead of training/crafting (assert the store serves the run)",
    )
    run.add_argument(
        "--verbose", action="store_true", help="print per-stage cache hit/compute events"
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a training checkpoint every N epochs so an interrupted "
        "run resumes bit-identically (default: $REPRO_CHECKPOINT_EVERY)",
    )
    add_workers_argument(run)
    run.set_defaults(func=_cmd_run)

    spec = subparsers.add_parser(
        "spec", help="emit an experiment spec template for `run`"
    )
    spec.add_argument("--name", default="experiment")
    spec.add_argument(
        "--kind", default="panel", choices=["panel", "quantization", "transfer"]
    )
    spec.add_argument("--architecture", default="lenet5")
    spec.add_argument("--dataset", default="mnist")
    spec.add_argument("--attacks", default="BIM_linf", help="comma-separated attack keys")
    spec.add_argument(
        "--multipliers",
        default="M1,M2,M3,M4,M5,M6,M7,M8,M9",
        help="comma-separated multiplier labels",
    )
    spec.add_argument("--epsilons", default="0,0.05,0.1,0.25,0.5")
    spec.add_argument("--samples", type=int, default=60)
    spec.add_argument("--train", type=int, default=1500)
    spec.add_argument("--epochs", type=int, default=4)
    spec.add_argument("--output", default="-", help="output path ('-' for stdout)")
    spec.set_defaults(func=_cmd_spec)

    sweep = subparsers.add_parser("sweep", help="run a robustness sweep on LeNet-5")
    sweep.add_argument("--attack", default="BIM_linf")
    sweep.add_argument("--multipliers", default="M1,M4,M8")
    sweep.add_argument("--epsilons", default="0,0.05,0.1,0.25,0.5")
    sweep.add_argument("--samples", type=int, default=40)
    sweep.add_argument("--train", type=int, default=1500)
    sweep.add_argument("--epochs", type=int, default=4)
    add_workers_argument(sweep, default="auto")
    sweep.set_defaults(func=_cmd_sweep)

    screen = subparsers.add_parser(
        "screen", help="error-resilience screening of candidate multipliers"
    )
    screen.add_argument("--candidates", default="M1,M2,M3,M4,M5,M6,M7,M8,M9")
    screen.add_argument("--threshold", type=float, default=90.0)
    screen.add_argument("--samples", type=int, default=60)
    screen.add_argument("--train", type=int, default=1500)
    screen.add_argument("--epochs", type=int, default=4)
    add_workers_argument(screen, default="auto")
    screen.set_defaults(func=_cmd_screen)

    mult = subparsers.add_parser("multipliers", help="list the multiplier library")
    mult.add_argument("--names", default="", help="comma-separated subset to show")
    mult.set_defaults(func=_cmd_multipliers)

    attacks = subparsers.add_parser("attacks", help="list the attack registry (Table I)")
    attacks.add_argument("--extended", action="store_true", help="also list extension attacks")
    attacks.set_defaults(func=_cmd_attacks)

    report = subparsers.add_parser("report", help="generate EXPERIMENTS.md from benchmark results")
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.set_defaults(func=_cmd_report)

    verify = subparsers.add_parser(
        "verify", help="audit the artifact store and quarantine corrupted entries"
    )
    verify.add_argument(
        "--store",
        default=None,
        help="artifact store root (default: $REPRO_ARTIFACT_DIR or ~/.cache/repro)",
    )
    add_store_url_argument(verify)
    verify.add_argument(
        "--no-repair",
        action="store_true",
        help="report problems without quarantining or sweeping debris",
    )
    verify.set_defaults(func=_cmd_verify)

    serve = subparsers.add_parser(
        "serve", help="run the robustness evaluation HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="listen port (0 picks a free one)"
    )
    serve.add_argument(
        "--store",
        default=None,
        help="artifact store root (default: $REPRO_ARTIFACT_DIR or ~/.cache/repro)",
    )
    add_store_url_argument(serve)
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="experiment jobs run concurrently (the worker pool width)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="queued jobs beyond the pool before submissions get 429",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch size cap for /v1/query",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=5.0,
        help="micro-batch hold time in milliseconds",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for accepted jobs on SIGTERM before giving up",
    )
    add_workers_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
