"""Energy / accuracy / robustness trade-off of the approximate multipliers.

The motivation for AxDNNs is energy efficiency; the paper's warning is that
the energy saving can come with a hidden robustness cost.  This example puts
the three quantities side by side for the LeNet-5 multiplier set: per-MAC
energy saving, clean accuracy, and accuracy under a fixed adversarial attack.

Run:  python examples/energy_accuracy_tradeoff.py --attack BIM_linf --epsilon 0.1
"""

from __future__ import annotations

import argparse

from repro.experiments import AttackSpec, ModelSpec, Session, SweepSpec
from repro.models import build_lenet5, multiply_counts
from repro.multipliers import (
    energy_per_mac_pj,
    energy_saving_percent,
    error_report,
)
from repro.robustness import build_victims


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", default="BIM_linf")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--samples", type=int, default=60)
    args = parser.parse_args()

    session = Session()
    model_spec = ModelSpec(architecture="lenet5", dataset="mnist", n_train=1500, n_test=300)
    trained = session.resolve_model(model_spec)
    dataset = trained.dataset
    calibration = dataset.train.images[:128]
    labels = [f"M{i}" for i in range(1, 10)]
    victims = build_victims(trained.model, labels, calibration)

    # the suite comes from the artifact store when this configuration ran
    # before; --epsilon 0 degenerates to the clean baseline alone
    epsilons = (0.0,) if args.epsilon == 0.0 else (0.0, args.epsilon)
    suite = session.resolve_suite(
        model_spec,
        AttackSpec(attack=args.attack),
        SweepSpec(epsilons=epsilons, n_samples=args.samples),
        trained=trained,
    )

    macs = sum(multiply_counts(build_lenet5()))
    print(
        f"LeNet-5 performs {macs:,} multiplications per inference; "
        f"attack = {args.attack} at eps = {args.epsilon}\n"
    )
    header = (
        f"{'label':>5} {'multiplier':>14} {'MAE%':>7} {'pJ/MAC':>7} "
        f"{'saving%':>8} {'clean%':>7} {'attacked%':>10}"
    )
    print(header)
    print("-" * len(header))
    for label in labels:
        victim = victims[label]
        name = victim.multiplier.name
        report = error_report(victim.multiplier)
        results = suite.evaluate(victim, label)
        clean = results[0].robustness_percent
        attacked = results[-1].robustness_percent
        print(
            f"{label:>5} {name:>14} {report.mae_percent:>7.3f} "
            f"{energy_per_mac_pj(name):>7.3f} {energy_saving_percent(name):>8.1f} "
            f"{clean:>7.1f} {attacked:>10.1f}"
        )

    print(
        "\nReading guide: moving down the energy-saving column is the reason to"
        " adopt approximation; the last column is the robustness price the"
        " paper warns about."
    )


if __name__ == "__main__":
    main()
