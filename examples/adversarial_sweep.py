"""Adversarial approximation analysis: a miniature of the paper's Figure 4/5.

Declares one panel :class:`~repro.experiments.ExperimentSpec` sweeping a
chosen attack over the full perturbation-budget range and the whole LeNet-5
multiplier set (M1..M9), runs it through the cached
:class:`~repro.experiments.Session`, prints the robustness heat-map and
compares its shape against the digitised grid from the paper.

Run:  python examples/adversarial_sweep.py --attack PGD_linf --samples 60
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    compare_with_paper_grid,
    format_robustness_grid,
    lenet_paper_grid,
)
from repro.attacks import PAPER_EPSILONS
from repro.experiments import ModelSpec, Session, panel_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", default="BIM_linf", help="attack registry key")
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument(
        "--multipliers",
        default="M1,M2,M3,M4,M5,M6,M7,M8,M9",
        help="comma-separated paper labels",
    )
    parser.add_argument("--workers", default="auto", help="worker count (results invariant)")
    args = parser.parse_args()

    spec = panel_spec(
        name=f"adversarial_sweep_{args.attack}",
        attacks=[args.attack],
        multipliers=args.multipliers.split(","),
        model=ModelSpec(architecture="lenet5", dataset="mnist", n_train=1500, n_test=300),
        epsilons=PAPER_EPSILONS,
        n_samples=args.samples,
    )
    result = Session(workers=args.workers).run(spec)
    grid = result.grids[0]
    print(format_robustness_grid(grid, title=f"measured: {args.attack}"))

    try:
        paper = lenet_paper_grid(args.attack)
    except KeyError:
        print(f"\n(no digitised paper grid for {args.attack})")
        return
    comparison = compare_with_paper_grid(grid, paper)
    print("\nshape comparison against the paper grid:")
    for key, value in comparison.items():
        print(f"  {key}: {value:.3f}")


if __name__ == "__main__":
    main()
