"""Adversarial approximation analysis: a miniature of the paper's Figure 4/5.

Sweeps a chosen attack over the full perturbation-budget range and the whole
LeNet-5 multiplier set (M1..M9), prints the resulting robustness heat-map and
compares its shape against the digitised grid from the paper.

Run:  python examples/adversarial_sweep.py --attack PGD_linf --samples 60
"""

from __future__ import annotations

import argparse

from repro.analysis import (
    compare_with_paper_grid,
    format_robustness_grid,
    lenet_paper_grid,
)
from repro.attacks import PAPER_EPSILONS, get_attack
from repro.models import trained_lenet5
from repro.robustness import build_victims, multiplier_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", default="BIM_linf", help="attack registry key")
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument(
        "--multipliers",
        default="M1,M2,M3,M4,M5,M6,M7,M8,M9",
        help="comma-separated paper labels",
    )
    args = parser.parse_args()

    trained = trained_lenet5(n_train=1500, n_test=300, epochs=4)
    dataset = trained.dataset
    calibration = dataset.train.images[:128]
    labels = args.multipliers.split(",")
    victims = build_victims(trained.model, labels, calibration)

    grid = multiplier_sweep(
        trained.model,
        victims,
        get_attack(args.attack),
        dataset.test.images[: args.samples],
        dataset.test.labels[: args.samples],
        PAPER_EPSILONS,
        dataset_name=dataset.name,
    )
    print(format_robustness_grid(grid, title=f"measured: {args.attack}"))

    try:
        paper = lenet_paper_grid(args.attack)
    except KeyError:
        print(f"\n(no digitised paper grid for {args.attack})")
        return
    comparison = compare_with_paper_grid(grid, paper)
    print("\nshape comparison against the paper grid:")
    for key, value in comparison.items():
        print(f"  {key}: {value:.3f}")


if __name__ == "__main__":
    main()
