"""Defence evaluation (extension beyond the paper).

The paper concludes that approximation alone is not a reliable defence.  This
example evaluates three defences with the same harness, all protecting an
AxDNN built with a high-error multiplier:

* an ensemble of AxDNNs with *different* approximate multipliers (majority
  vote over decorrelated error patterns);
* input feature squeezing (bit-depth reduction);
* adversarial training of the float model before quantization/approximation.

Run:  python examples/defense_evaluation.py --attack FGM_linf --epsilon 0.1
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.attacks import get_attack
from repro.axnn import build_axdnn
from repro.defenses import AdversarialTrainer, AxEnsemble, FeatureSqueezingDefense
from repro.experiments import ModelSpec, Session
from repro.models import build_lenet5
from repro.nn import Adam


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", default="FGM_linf")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--multiplier", default="M8")
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument("--adv-train-epochs", type=int, default=3)
    args = parser.parse_args()

    trained = Session().resolve_model(
        ModelSpec(architecture="lenet5", dataset="mnist", n_train=1500, n_test=300)
    )
    dataset = trained.dataset
    calibration = dataset.train.images[:128]
    x = dataset.test.images[: args.samples]
    y = dataset.test.labels[: args.samples]
    attack = get_attack(args.attack)
    adversarial = attack.generate(trained.model, x, y, args.epsilon)

    def robustness(victim) -> float:
        return float(np.mean(victim.predict_classes(adversarial) == y)) * 100.0

    print(f"attack: {args.attack} at eps = {args.epsilon}; {args.samples} test images\n")

    baseline = build_axdnn(trained.model, args.multiplier, calibration)
    print(f"undefended AxDNN ({baseline.multiplier.name}): {robustness(baseline):5.1f}%")

    ensemble = AxEnsemble(
        [build_axdnn(trained.model, label, calibration) for label in ("M4", "M7", args.multiplier)],
        name="diverse-multiplier ensemble",
    )
    print(f"ensemble of AxDNNs (M4, M7, {args.multiplier}):    {robustness(ensemble):5.1f}%")

    squeezer = FeatureSqueezingDefense(bit_depth=3)
    squeezed = squeezer.wrap(baseline)
    print(f"feature-squeezed AxDNN (3-bit input):     {robustness(squeezed):5.1f}%")

    print("\nadversarially training the float model before approximation ...")
    hardened_float = build_lenet5(seed=7)
    adv_trainer = AdversarialTrainer(
        hardened_float,
        attack=get_attack("FGM_linf"),
        epsilon=args.epsilon,
        optimizer=Adam(1e-3),
        seed=7,
    )
    adv_trainer.fit(
        dataset.train.images, dataset.train.labels, epochs=args.adv_train_epochs, batch_size=32
    )
    hardened_ax = build_axdnn(hardened_float, args.multiplier, calibration)
    hardened_adversarial = attack.generate(hardened_float, x, y, args.epsilon)
    hardened_robustness = (
        float(np.mean(hardened_ax.predict_classes(hardened_adversarial) == y)) * 100.0
    )
    print(f"adversarially-trained AxDNN:              {hardened_robustness:5.1f}%")
    print(
        "\n(each defence is evaluated against adversarial examples crafted on its"
        " own accurate source model, matching the paper's threat model)"
    )


if __name__ == "__main__":
    main()
