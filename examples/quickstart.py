"""Quickstart: train an accurate DNN, build an AxDNN, attack both.

This walks through the paper's full methodology (Fig. 3) in one script:

1. train the accurate LeNet-5 on the synthetic MNIST substitute;
2. quantize it to 8-bit fixed point (the "quantized accurate DNN") and build
   an approximate version (AxDNN) with an EvoApprox-style multiplier;
3. craft adversarial examples on the accurate float model;
4. report the percentage robustness of every victim.

Run:  python examples/quickstart.py  [--samples 60] [--multiplier M8]
"""

from __future__ import annotations

import argparse

from repro.attacks import get_attack
from repro.models import trained_lenet5
from repro.multipliers import error_report, get_multiplier
from repro.robustness import build_victims, multiplier_sweep
from repro.analysis import format_robustness_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=60, help="test images to evaluate")
    parser.add_argument("--multiplier", default="M8", help="paper label or library name")
    parser.add_argument("--attack", default="BIM_linf", help="attack registry key")
    parser.add_argument(
        "--epsilons", default="0,0.05,0.1,0.25,0.5", help="comma-separated budgets"
    )
    args = parser.parse_args()

    print("== 1. training the accurate LeNet-5 (cached after the first run) ==")
    trained = trained_lenet5(n_train=1500, n_test=300, epochs=4)
    print(f"clean test accuracy of AccL5: {trained.baseline_accuracy_percent:.1f}%")

    print("\n== 2. building the quantized accurate DNN and the AxDNN ==")
    multiplier = get_multiplier(args.multiplier)
    report = error_report(multiplier)
    print(
        f"multiplier {multiplier.name}: MAE = {report.mae_percent:.3f}%, "
        f"worst-case error = {report.wce_percent:.2f}%"
    )
    dataset = trained.dataset
    calibration = dataset.train.images[:128]
    victims = build_victims(trained.model, ["M1", args.multiplier], calibration)

    print("\n== 3./4. attacking and evaluating percentage robustness ==")
    epsilons = [float(value) for value in args.epsilons.split(",")]
    grid = multiplier_sweep(
        trained.model,
        victims,
        get_attack(args.attack),
        dataset.test.images[: args.samples],
        dataset.test.labels[: args.samples],
        epsilons,
        dataset_name=dataset.name,
    )
    print(format_robustness_grid(grid, title=f"{args.attack} robustness [%]"))
    print(
        "\ncolumns: M1 = 8-bit quantized accurate DNN, "
        f"{args.multiplier} = AxDNN with {multiplier.name}"
    )


if __name__ == "__main__":
    main()
