"""Quickstart: declare an experiment, run it, read the robustness grid.

This walks through the paper's full methodology (Fig. 3) with the
declarative experiment API:

1. an :class:`~repro.experiments.ExperimentSpec` describes the whole
   pipeline — train the accurate LeNet-5 on the synthetic MNIST substitute,
   quantize it, build the AxDNN victims, craft adversarial examples on the
   accurate float model and evaluate percentage robustness;
2. :class:`~repro.experiments.Session` runs the spec, caching the trained
   weights, the crafted adversarial suite and the finished grid in the
   content-addressed artifact store — re-running this script is a pure
   cache hit.

Run:  python examples/quickstart.py  [--samples 60] [--multiplier M8]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_robustness_grid
from repro.experiments import (
    AttackSpec,
    ExperimentSpec,
    ModelSpec,
    Session,
    SweepSpec,
    VictimSpec,
)
from repro.multipliers import error_report, get_multiplier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=60, help="test images to evaluate")
    parser.add_argument("--multiplier", default="M8", help="paper label or library name")
    parser.add_argument("--attack", default="BIM_linf", help="attack registry key")
    parser.add_argument(
        "--epsilons", default="0,0.05,0.1,0.25,0.5", help="comma-separated budgets"
    )
    parser.add_argument("--workers", default="auto", help="worker count (results invariant)")
    args = parser.parse_args()

    print("== 1. declaring the experiment ==")
    spec = ExperimentSpec(
        name="quickstart",
        model=ModelSpec(architecture="lenet5", dataset="mnist", n_train=1500, n_test=300),
        victims=VictimSpec(multipliers=("M1", args.multiplier)),
        attacks=(AttackSpec(attack=args.attack),),
        sweep=SweepSpec(
            epsilons=tuple(float(value) for value in args.epsilons.split(",")),
            n_samples=args.samples,
        ),
    )
    print(f"spec hash: {spec.content_hash()[:16]} (the artifact-store cache key)")

    multiplier = get_multiplier(args.multiplier)
    report = error_report(multiplier)
    print(
        f"multiplier {multiplier.name}: MAE = {report.mae_percent:.3f}%, "
        f"worst-case error = {report.wce_percent:.2f}%"
    )

    print("\n== 2. running it through the Session (cached after the first run) ==")
    session = Session(workers=args.workers)
    result = session.run(spec)
    source = "artifact store" if result.from_cache else "computed"
    print(f"result: {source} in {result.elapsed_s:.2f}s")
    for source_name, accuracy in result.source_accuracies.items():
        print(f"clean test accuracy of {source_name}: {accuracy * 100.0:.1f}%")

    print("\n== 3. the percentage-robustness grid ==")
    grid = result.grids[0]
    print(format_robustness_grid(grid, title=f"{args.attack} robustness [%]"))
    print(
        "\ncolumns: M1 = 8-bit quantized accurate DNN, "
        f"{args.multiplier} = AxDNN with {multiplier.name}"
    )


if __name__ == "__main__":
    main()
