"""Transferability study: the paper's Table II on the synthetic datasets.

Adversarial examples are crafted on an accurate source architecture and
evaluated on AxDNNs of both architectures — the scenario where the adversary
knows neither the victim's inexactness nor its model structure.

Run:  python examples/transferability_study.py --dataset mnist --epsilon 0.05
"""

from __future__ import annotations

import argparse

from repro.analysis import TABLE2_TRANSFERABILITY, format_transfer_table
from repro.attacks import get_attack
from repro.models import trained_model
from repro.robustness import build_victims, transferability_analysis


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="mnist", choices=["mnist", "cifar10"])
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--samples", type=int, default=48)
    parser.add_argument("--multiplier", default="M4")
    args = parser.parse_args()

    print(f"training LeNet-5 and AlexNet on synthetic {args.dataset} (cached)")
    lenet = trained_model("lenet5", args.dataset, n_train=1500, epochs=4)
    alexnet = trained_model("alexnet", args.dataset, n_train=1500, epochs=5)
    dataset = lenet.dataset
    calibration = dataset.train.images[:96]

    victims = {
        "AxL5": build_victims(lenet.model, [args.multiplier], calibration)[args.multiplier],
        "AxAlx": build_victims(alexnet.model, [args.multiplier], calibration)[args.multiplier],
    }
    sources = {"AccL5": lenet.model, "AccAlx": alexnet.model}

    cells = transferability_analysis(
        sources,
        victims,
        get_attack("BIM_linf"),
        dataset.test.images[: args.samples],
        dataset.test.labels[: args.samples],
        args.epsilon,
        dataset_name=args.dataset,
    )
    print(f"\nlinf BIM, eps = {args.epsilon}  (cells are accuracy before/after attack)")
    print(format_transfer_table(cells, [args.dataset], ["AxL5", "AxAlx"]))
    print("\npaper Table II (MNIST & CIFAR-10, eps = 0.05):")
    for (source, victim, dataset_name), (before, after) in TABLE2_TRANSFERABILITY.items():
        print(f"  {source:7s} -> {victim:6s} on {dataset_name:8s}: {before:.0f}/{after:.0f}")


if __name__ == "__main__":
    main()
