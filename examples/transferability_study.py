"""Transferability study: the paper's Table II on the synthetic datasets.

Adversarial examples are crafted on an accurate source architecture and
evaluated on AxDNNs of both architectures — the scenario where the adversary
knows neither the victim's inexactness nor its model structure.  The whole
study is one declarative ``kind="transfer"`` experiment: the session trains
(or loads) both source models, crafts one suite per source and fills the
table, caching every artifact.

Run:  python examples/transferability_study.py --dataset mnist --epsilon 0.05
"""

from __future__ import annotations

import argparse

from repro.analysis import TABLE2_TRANSFERABILITY, format_transfer_table
from repro.experiments import (
    AttackSpec,
    ExperimentSpec,
    ModelSpec,
    Session,
    SweepSpec,
    VictimSpec,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="mnist", choices=["mnist", "cifar10"])
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--samples", type=int, default=48)
    parser.add_argument("--multiplier", default="M4")
    parser.add_argument("--workers", default="auto", help="worker count (results invariant)")
    args = parser.parse_args()

    spec = ExperimentSpec(
        name=f"transferability_{args.dataset}",
        kind="transfer",
        model=ModelSpec(
            architecture="lenet5", dataset=args.dataset, n_train=1500, epochs=4
        ),
        transfer_sources=(
            ModelSpec(architecture="alexnet", dataset=args.dataset, n_train=1500, epochs=5),
        ),
        victims=VictimSpec(multipliers=(args.multiplier,), calibration_samples=96),
        attacks=(AttackSpec(attack="BIM_linf"),),
        sweep=SweepSpec(epsilons=(args.epsilon,), n_samples=args.samples),
    )
    print("running transfer experiment (cached after the first run)")
    result = Session(workers=args.workers).run(spec)
    table = result.table

    datasets = sorted({cell.dataset for cell in table.cells})
    print(f"\nlinf BIM, eps = {args.epsilon}  (cells are accuracy before/after attack)")
    print(format_transfer_table(table.cells, datasets, ["AxL5", "AxAlx"]))
    print("\npaper Table II (MNIST & CIFAR-10, eps = 0.05):")
    for (source, victim, dataset_name), (before, after) in TABLE2_TRANSFERABILITY.items():
        print(f"  {source:7s} -> {victim:6s} on {dataset_name:8s}: {before:.0f}/{after:.0f}")


if __name__ == "__main__":
    main()
