"""Quantization vs approximation under attack (the paper's Fig. 8 + Section IV.D).

Compares three inference configurations of the same trained LeNet-5 under a
chosen attack:

* the float accurate model,
* its 8-bit quantized version (quantization alone), and
* an AxDNN (quantization + an approximate multiplier).

The paper's conclusion — quantization improves robustness, approximation
takes the improvement back — corresponds to the quantized curve sitting on or
above the float curve, and the AxDNN curve sitting below both.

This example uses the mid-level Session building blocks directly: the
trained model and the crafted adversarial suite come from
:meth:`Session.resolve_model` / :meth:`Session.resolve_suite`, so both are
served from the artifact store on re-runs and shared with any other
experiment using the same model/attack configuration.

Run:  python examples/quantization_vs_approximation.py --attack PGD_linf
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.axnn import build_axdnn, build_quantized_accurate
from repro.experiments import AttackSpec, ModelSpec, Session, SweepSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", default="PGD_linf")
    parser.add_argument("--multiplier", default="M8")
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument(
        "--epsilons", default="0,0.05,0.1,0.15,0.2,0.25,0.5", help="comma-separated budgets"
    )
    args = parser.parse_args()

    session = Session()
    model_spec = ModelSpec(architecture="lenet5", dataset="mnist", n_train=1500, n_test=300)
    trained = session.resolve_model(model_spec)
    dataset = trained.dataset
    calibration = dataset.train.images[:128]
    epsilons = tuple(float(value) for value in args.epsilons.split(","))

    quantized = build_quantized_accurate(trained.model, calibration)
    approximate = build_axdnn(trained.model, args.multiplier, calibration)

    suite = session.resolve_suite(
        model_spec,
        AttackSpec(attack=args.attack),
        SweepSpec(epsilons=epsilons, n_samples=args.samples),
        trained=trained,
    )
    float_curve = [r.robustness_percent for r in suite.evaluate(trained.model, "float")]
    quant_curve = [r.robustness_percent for r in suite.evaluate(quantized, "quantized")]
    approx_curve = [r.robustness_percent for r in suite.evaluate(approximate, "axdnn")]

    print(f"attack: {args.attack}, AxDNN multiplier: {approximate.multiplier.name}")
    header = f"{'eps':>6} {'float':>8} {'quantized':>10} {'AxDNN':>8}"
    print(header)
    print("-" * len(header))
    for eps, f_val, q_val, a_val in zip(epsilons, float_curve, quant_curve, approx_curve):
        print(f"{eps:>6.2f} {f_val:>8.1f} {q_val:>10.1f} {a_val:>8.1f}")

    gain = float(np.mean(np.array(quant_curve) - np.array(float_curve)))
    loss = float(np.mean(np.array(quant_curve) - np.array(approx_curve)))
    print(f"\nmean robustness gain of quantization over float: {gain:+.1f} points")
    print(f"mean robustness given back by approximation:      {loss:+.1f} points")


if __name__ == "__main__":
    main()
