"""Tests for the pluggable store backends and the degradation ladder.

Covers the backend contract (every implementation), URL selection, the
chaos seams of the simulated remote, the resilience wrapper, the circuit
breaker state machine, the write journal, the store's remote tier
(write-through, restore, read-repair, degraded mode, quarantine TTL) and
— the acceptance property — a full ``Session.run`` under a scripted
fault plan completing bit-identically to a local-only run while the
breaker opens and re-closes and journaled writes flush.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    MissingArtifactError,
    PreconditionFailedError,
)
from repro.experiments import (
    ArtifactStore,
    AttackSpec,
    ExperimentSpec,
    ModelSpec,
    Session,
    SweepSpec,
    VictimSpec,
)
from repro.experiments.backends import (
    Blob,
    CircuitBreaker,
    InMemoryBackend,
    LocalDirBackend,
    ResilientBackend,
    SimulatedRemoteBackend,
    WriteJournal,
    backend_from_url,
    shared_memory_backend,
)
from repro.experiments.store import QUARANTINE_TTL_ENV_VAR, STORE_ENV_VAR
from repro.resilience import FaultRule, RetryPolicy, fault_plan

DIGEST = "a" * 64
OTHER = "b" * 64

_FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0, sleep=lambda _s: None)


class FakeClock:
    """A steppable monotonic clock for breaker tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FlakyBackend(InMemoryBackend):
    """An in-memory backend with a failure switch (partition simulator)."""

    def __init__(self) -> None:
        super().__init__(name="flaky")
        self.failing = False
        self.calls = 0

    def _maybe_fail(self) -> None:
        self.calls += 1
        if self.failing:
            raise OSError("simulated partition")

    def get(self, key):
        self._maybe_fail()
        return super().get(key)

    def put_atomic(self, key, data, if_match=None, if_none_match=False):
        self._maybe_fail()
        return super().put_atomic(
            key, data, if_match=if_match, if_none_match=if_none_match
        )

    def head(self, key):
        self._maybe_fail()
        return super().head(key)

    def delete(self, key):
        self._maybe_fail()
        return super().delete(key)


def remote_store(tmp_path, backend, name="store", breaker=None, clock=None):
    """An ArtifactStore over ``backend`` with fast retries and a fake clock."""
    clock = clock or FakeClock()
    breaker = breaker or CircuitBreaker(
        threshold=3, cooldown_s=30.0, probes=1, clock=clock
    )
    store = ArtifactStore(
        str(tmp_path / name),
        retry=_FAST_RETRY,
        backend=ResilientBackend(backend, retry=_FAST_RETRY),
        breaker=breaker,
    )
    return store, clock


def local_store(tmp_path, name="store"):
    """A store with no remote tier, even when ``$REPRO_STORE_URL`` is set
    in the surrounding environment (the CI remote-store-chaos job)."""
    return ArtifactStore(str(tmp_path / name), retry=_FAST_RETRY, store_url="")


# ----------------------------------------------------------- backend contract
@pytest.fixture(params=["file", "mem", "sim"])
def backend(request, tmp_path):
    if request.param == "file":
        return LocalDirBackend(str(tmp_path / "remote"), retry=_FAST_RETRY)
    if request.param == "mem":
        return InMemoryBackend()
    return SimulatedRemoteBackend()


class TestBackendContract:
    def test_round_trip_and_etag(self, backend):
        key = f"model/{DIGEST}.npz"
        assert backend.get(key) is None
        assert backend.head(key) is None
        etag = backend.put_atomic(key, b"payload")
        blob = backend.get(key)
        assert isinstance(blob, Blob)
        assert blob.data == b"payload"
        assert blob.etag == etag
        assert backend.head(key) == etag
        assert backend.list_kind("model") == [key]
        assert backend.list_kind("suite") == []
        assert backend.delete(key)
        assert not backend.delete(key)
        assert backend.get(key) is None

    def test_conditional_puts(self, backend):
        key = f"model/{DIGEST}.npz"
        etag = backend.put_atomic(key, b"one", if_none_match=True)
        with pytest.raises(PreconditionFailedError):
            backend.put_atomic(key, b"two", if_none_match=True)
        backend.put_atomic(key, b"two", if_match=etag)
        assert backend.get(key).data == b"two"
        with pytest.raises(PreconditionFailedError):
            backend.put_atomic(key, b"three", if_match=etag)  # now stale

    def test_key_validation(self, backend):
        for bad in ("noslash", "a/b/c", "../x/y", ".hidden/x", "kind/.dot"):
            with pytest.raises(ConfigurationError):
                backend.get(bad)

    def test_list_is_sorted(self, backend):
        backend.put_atomic(f"model/{OTHER}.npz", b"b")
        backend.put_atomic(f"model/{DIGEST}.npz", b"a")
        assert backend.list_kind("model") == [
            f"model/{DIGEST}.npz",
            f"model/{OTHER}.npz",
        ]


class TestLocalDirInterop:
    def test_file_backend_matches_store_layout(self, tmp_path):
        """A file:// backend and a store rooted at the same dir share bytes."""
        store = local_store(tmp_path, "shared")
        store.put_json("result", DIGEST, {"v": 1})
        backend = LocalDirBackend(store.root, retry=_FAST_RETRY)
        blob = backend.get(f"result/{DIGEST}.json")
        assert json.loads(blob.data) == {"v": 1}
        backend.put_atomic(f"result/{OTHER}.json", b'{"v": 2}')
        assert local_store(tmp_path, "shared").get_json("result", OTHER) == {
            "v": 2
        }


# ------------------------------------------------------------------ selection
class TestBackendFromUrl:
    def test_file_url(self, tmp_path):
        backend = backend_from_url(f"file://{tmp_path}/remote")
        assert isinstance(backend, LocalDirBackend)
        assert backend.root == str(tmp_path / "remote")

    def test_mem_url_shares_one_registry(self):
        one = backend_from_url("mem://alpha")
        two = backend_from_url("mem://alpha")
        other = backend_from_url("mem://beta")
        assert one is two
        assert one is not other
        assert one is shared_memory_backend("alpha")

    def test_sim_url_parameters(self):
        backend = backend_from_url(
            "sim://chaos?latency_ms=20&error_rate=0.25&seed=7"
        )
        assert isinstance(backend, SimulatedRemoteBackend)
        assert backend.latency_s == pytest.approx(0.020)
        assert backend.error_rate == 0.25
        assert backend.inner is shared_memory_backend("chaos")

    def test_bad_urls(self):
        for bad in ("nourl", "s3://bucket/x", "sim://x?error_rate=nope", "file://"):
            with pytest.raises(ConfigurationError):
                backend_from_url(bad)

    def test_store_env_url_attaches_remote(self, monkeypatch, tmp_path):
        from repro.experiments.backends import STORE_URL_ENV_VAR

        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "root"))
        monkeypatch.setenv(STORE_URL_ENV_VAR, "mem://envtest")
        store = ArtifactStore()
        assert store.remote is not None
        store.put_json("result", DIGEST, {"v": 9})
        assert shared_memory_backend("envtest").head(f"result/{DIGEST}.json")

    def test_no_url_means_local_only(self, monkeypatch, tmp_path):
        from repro.experiments.backends import STORE_URL_ENV_VAR

        monkeypatch.delenv(STORE_URL_ENV_VAR, raising=False)
        store = ArtifactStore(str(tmp_path / "root"))
        assert store.remote is None
        assert store.breaker_state_code() == 0
        assert store.journal_pending() == 0
        assert not store.degraded


# ----------------------------------------------------------- simulated remote
class TestSimulatedRemote:
    def test_seeded_error_rate_is_deterministic(self):
        def failure_pattern():
            backend = SimulatedRemoteBackend(error_rate=0.5, seed=42)
            backend.inner.put_atomic(f"model/{DIGEST}.npz", b"x")
            pattern = []
            for _ in range(20):
                try:
                    backend.get(f"model/{DIGEST}.npz")
                    pattern.append(False)
                except OSError:
                    pattern.append(True)
            return pattern

        first, second = failure_pattern(), failure_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_scripted_raise_burst(self):
        backend = SimulatedRemoteBackend()
        backend.inner.put_atomic(f"model/{DIGEST}.npz", b"x")
        with fault_plan([FaultRule(point="backend.get", index=0, count=2)]):
            with pytest.raises(OSError):
                backend.get(f"model/{DIGEST}.npz")
            with pytest.raises(OSError):
                backend.get(f"model/{DIGEST}.npz")
            assert backend.get(f"model/{DIGEST}.npz").data == b"x"

    def test_torn_write_reports_stale_etag(self):
        backend = SimulatedRemoteBackend()
        key = f"model/{DIGEST}.npz"
        with fault_plan(
            [FaultRule(point="backend.put", action="corrupt", corrupt_bytes=4)]
        ):
            reported = backend.put_atomic(key, b"intended-bytes")
        stored = backend.inner.get(key)
        assert stored.data != b"intended-bytes"  # torn upload landed
        assert reported != stored.etag  # ...under a stale ETag
        import hashlib

        assert reported == hashlib.sha256(b"intended-bytes").hexdigest()

    def test_corrupted_read_is_transient(self):
        backend = SimulatedRemoteBackend()
        key = f"model/{DIGEST}.npz"
        backend.put_atomic(key, b"clean-payload")
        with fault_plan(
            [FaultRule(point="backend.get", action="corrupt", corrupt_bytes=5)]
        ):
            first = backend.get(key)
            second = backend.get(key)
        assert first.data != b"clean-payload"
        assert first.etag == second.etag  # stale ETag alongside the bad bytes
        assert second.data == b"clean-payload"


# --------------------------------------------------------------- resilience
class TestResilientBackend:
    def test_retries_transient_errors(self):
        flaky = SimulatedRemoteBackend()
        flaky.inner.put_atomic(f"model/{DIGEST}.npz", b"x")
        wrapped = ResilientBackend(flaky, retry=_FAST_RETRY)
        with fault_plan([FaultRule(point="backend.get", index=0)]):
            assert wrapped.get(f"model/{DIGEST}.npz").data == b"x"

    def test_exhausted_retries_propagate(self):
        flaky = SimulatedRemoteBackend()
        wrapped = ResilientBackend(flaky, retry=_FAST_RETRY)
        with fault_plan([FaultRule(point="backend.get", index=0, count=10)]):
            with pytest.raises(OSError):
                wrapped.get(f"model/{DIGEST}.npz")

    def test_precondition_failures_do_not_retry(self):
        inner = InMemoryBackend()
        inner.put_atomic(f"model/{DIGEST}.npz", b"x")
        calls = []
        original = inner.put_atomic

        def counting(key, data, if_match=None, if_none_match=False):
            calls.append(key)
            return original(key, data, if_match=if_match, if_none_match=if_none_match)

        inner.put_atomic = counting
        wrapped = ResilientBackend(inner, retry=_FAST_RETRY)
        with pytest.raises(PreconditionFailedError):
            wrapped.put_atomic(f"model/{DIGEST}.npz", b"y", if_none_match=True)
        assert len(calls) == 1

    def test_hedged_read_races_a_second_request(self):
        slow = SimulatedRemoteBackend(latency_s=0.05)
        slow.inner.put_atomic(f"model/{DIGEST}.npz", b"x")
        wrapped = ResilientBackend(slow, retry=_FAST_RETRY, hedge_s=0.005)
        assert wrapped.get(f"model/{DIGEST}.npz").data == b"x"
        assert wrapped.hedged_reads >= 1

    def test_per_call_timeout(self):
        from repro.errors import DeadlineExceededError

        slow = SimulatedRemoteBackend(latency_s=0.2)
        wrapped = ResilientBackend(
            slow,
            retry=RetryPolicy(
                max_attempts=1,
                backoff_s=0.001,
                transient=(OSError, DeadlineExceededError),
            ),
            timeout_s=0.01,
        )
        with pytest.raises(DeadlineExceededError):
            wrapped.get(f"model/{DIGEST}.npz")


# ------------------------------------------------------------ circuit breaker
class TestCircuitBreaker:
    def test_threshold_opens_and_cooldown_probes_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, probes=2, clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # not yet at threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_total == 1
        clock.advance(10.1)
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "half_open"  # one of two probes
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.closed_total == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # never 3 *consecutive* failures

    def test_failed_probe_snaps_back_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, probes=2, clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_total == 2
        assert not breaker.allow()

    def test_state_codes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        assert breaker.state_code() == 0
        breaker.record_failure()
        assert breaker.state_code() == 2
        clock.advance(5.1)
        assert breaker.state_code() == 1

    def test_env_tuning(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "7")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "3.5")
        monkeypatch.setenv("REPRO_BREAKER_PROBES", "4")
        breaker = CircuitBreaker.from_env()
        assert (breaker.threshold, breaker.cooldown_s, breaker.probes) == (7, 3.5, 4)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(probes=0)


# -------------------------------------------------------------- write journal
class TestWriteJournal:
    def test_add_remove_persist(self, tmp_path):
        path = str(tmp_path / ".journal" / "pending.json")
        journal = WriteJournal(path)
        assert journal.add("model", DIGEST)
        assert not journal.add("model", DIGEST)  # dedupe
        assert journal.add("result", OTHER)
        assert len(journal) == 2
        reloaded = WriteJournal(path)
        assert reloaded.pending() == [("model", DIGEST), ("result", OTHER)]
        assert reloaded.remove("model", DIGEST)
        assert not reloaded.remove("model", DIGEST)
        assert WriteJournal(path).pending() == [("result", OTHER)]

    def test_malformed_journal_starts_empty(self, tmp_path):
        path = tmp_path / "pending.json"
        path.write_text("{torn")
        journal = WriteJournal(str(path))
        assert len(journal) == 0
        assert journal.add("model", DIGEST)


# ---------------------------------------------------------------- remote tier
class TestRemoteTier:
    def test_write_through_and_cross_store_restore(self, tmp_path):
        shared = InMemoryBackend()
        one, _ = remote_store(tmp_path, shared, name="one")
        one.put_arrays("model", DIGEST, {"w": np.arange(4.0)})
        assert one.stats.remote_puts == 1
        assert shared.head(f"model/{DIGEST}.npz") is not None
        assert shared.head(f"model/{DIGEST}.meta.json") is not None

        two, _ = remote_store(tmp_path, shared, name="two")
        arrays = two.get_arrays("model", DIGEST)
        np.testing.assert_array_equal(arrays["w"], np.arange(4.0))
        assert two.stats.remote_hits == 1
        assert two.stats.hits == 1
        assert two.has("model", DIGEST)  # restored into the local cache
        assert two.get_meta("model", DIGEST)["digest"] == DIGEST

    def test_read_repair_rejects_tampered_remote(self, tmp_path):
        shared = InMemoryBackend()
        one, _ = remote_store(tmp_path, shared, name="one")
        one.put_json("result", DIGEST, {"v": 1})
        shared.tamper(f"result/{DIGEST}.json")

        two, _ = remote_store(tmp_path, shared, name="two")
        assert two.get_json("result", DIGEST) is None
        assert two.stats.read_repairs == 1
        assert two.stats.remote_misses == 1  # persistent mismatch = miss
        # the bad fetched bytes are preserved for debugging
        quarantine = tmp_path / "two" / ".quarantine" / "result"
        assert any(
            name.endswith(".fetched") for name in os.listdir(quarantine)
        )

    def test_corrupt_local_heals_from_remote(self, tmp_path):
        shared = InMemoryBackend()
        store, _ = remote_store(tmp_path, shared)
        path = store.put_arrays("model", DIGEST, {"w": np.ones(3)})
        with open(path, "wb") as handle:
            handle.write(b"rotten")
        arrays = store.get_arrays("model", DIGEST)
        np.testing.assert_array_equal(arrays["w"], np.ones(3))
        assert store.stats.quarantined == 1
        assert store.stats.remote_hits == 1

    def test_evict_removes_remote_but_prune_does_not(self, tmp_path):
        shared = InMemoryBackend()
        store, _ = remote_store(tmp_path, shared)
        store.put_json("result", DIGEST, {"v": 1})
        store.evict("result", DIGEST)
        assert shared.head(f"result/{DIGEST}.json") is None

        store.put_json("result", OTHER, {"v": 2})
        store.prune(0)  # capacity trim must not destroy the remote tier
        assert not store.has("result", OTHER)
        assert shared.head(f"result/{OTHER}.json") is not None
        assert store.get_json("result", OTHER) == {"v": 2}  # refilled

    def test_warm_prefetches_and_counts_first_read(self, tmp_path):
        shared = InMemoryBackend()
        one, _ = remote_store(tmp_path, shared, name="one")
        one.put_arrays("suite", DIGEST, {"x": np.arange(2.0)})

        two, _ = remote_store(tmp_path, shared, name="two")
        assert two.warm("suite", DIGEST)
        assert two.stats.prefetched == 1
        assert two.warm("suite", DIGEST)  # already local: no extra traffic
        assert two.stats.prefetched == 1
        two.get_arrays("suite", DIGEST)
        assert two.stats.prefetch_hits == 1
        assert two.warm("model", OTHER) is False  # nowhere to warm from

    def test_degradation_ladder(self, tmp_path):
        backend = FlakyBackend()
        store, clock = remote_store(tmp_path, backend)
        store.put_arrays("model", DIGEST, {"w": np.ones(2)})

        backend.failing = True
        # three consecutive failed remote ops trip the breaker (threshold=3);
        # the third call records the opening failure and then — the circuit
        # now being open — raises the degraded-miss error itself
        for _ in range(2):
            assert store.get_json("result", OTHER) is None
        with pytest.raises(MissingArtifactError):
            store.get_json("result", OTHER)
        assert store.degraded
        assert store.breaker_state_code() == 2

        # degraded reads: local hits still served, misses raise typed errors
        assert store.get_arrays("model", DIGEST) is not None
        with pytest.raises(MissingArtifactError) as excinfo:
            store.get_json("result", OTHER)
        assert excinfo.value.backend_degraded
        # degraded writes: local put succeeds, upload journaled
        store.put_json("result", DIGEST, {"v": 1})
        assert store.journal_pending() == 1
        assert store.stats.journaled == 1
        backend.failing = False  # peek at the remote without tripping faults
        assert backend.head(f"result/{DIGEST}.json") is None
        backend.failing = True

        # heal the backend and let the cooldown elapse: the next remote op
        # is a half-open probe; success closes the breaker and the
        # opportunistic flush drains the journal
        backend.failing = False
        clock.advance(31.0)
        assert store.breaker_state_code() == 1
        flushed = store.flush_journal()
        assert flushed == 1
        assert store.journal_pending() == 0
        assert store.stats.flushed == 1
        assert not store.degraded
        assert store.breaker.closed_total == 1
        assert backend.head(f"result/{DIGEST}.json") is not None

    def test_journal_survives_restart(self, tmp_path):
        backend = FlakyBackend()
        store, _ = remote_store(tmp_path, backend)
        backend.failing = True
        # trip the breaker through puts: each failed upload journals its
        # artifact, and the third consecutive failure opens the circuit
        for index in range(3):
            store.put_json("result", f"{index:064x}", {"v": index})
        assert store.degraded
        assert store.journal_pending() == 3

        backend.failing = False
        revived, _ = remote_store(tmp_path, backend)  # same root: same journal
        assert revived.journal_pending() == 3
        assert revived.flush_journal() == 3
        assert revived.journal_pending() == 0
        assert backend.head("result/" + "0" * 64 + ".json") is not None


# ------------------------------------------------------- meta sidecar hygiene
class TestMalformedMeta:
    def test_get_json_treats_malformed_meta_as_corrupt(self, tmp_path):
        store = local_store(tmp_path)
        store.put_json("result", DIGEST, {"v": 1})
        meta_path = store._path("result", DIGEST, ".meta.json")
        with open(meta_path, "w") as handle:
            handle.write('{"payload_sha256": "tor')  # truncated sidecar
        assert store.get_json("result", DIGEST) is None
        assert store.stats.quarantined == 1
        assert not store.has("result", DIGEST)

    def test_get_arrays_treats_malformed_meta_as_corrupt(self, tmp_path):
        store = local_store(tmp_path)
        store.put_arrays("model", DIGEST, {"w": np.ones(2)})
        with open(store._path("model", DIGEST, ".meta.json"), "w") as handle:
            handle.write("not json")
        assert store.get_arrays("model", DIGEST) is None
        assert store.stats.quarantined == 1

    def test_get_meta_quarantines_malformed_sidecar(self, tmp_path):
        store = local_store(tmp_path)
        store.put_json("result", DIGEST, {"v": 1})
        with open(store._path("result", DIGEST, ".meta.json"), "w") as handle:
            handle.write("{")
        assert store.get_meta("result", DIGEST) is None
        assert store.stats.quarantined == 1
        assert store.get_meta("result", OTHER) is None  # absent is not corrupt
        assert store.stats.quarantined == 1

    def test_verify_reports_malformed_meta(self, tmp_path):
        store = local_store(tmp_path)
        store.put_json("result", DIGEST, {"v": 1})
        with open(store._path("result", DIGEST, ".meta.json"), "w") as handle:
            handle.write("][")
        findings = store.verify(repair=True)
        assert len(findings) == 1
        assert "malformed meta sidecar" in findings[0].problem
        assert findings[0].quarantined


# ------------------------------------------------------------- quarantine TTL
class TestQuarantineTTL:
    def _quarantine_one(self, store):
        path = store.put_json("result", DIGEST, {"v": 1})
        with open(path, "w") as handle:
            handle.write("{broken")
        assert store.get_json("result", DIGEST) is None
        quarantine = os.path.join(store.root, ".quarantine", "result")
        return [os.path.join(quarantine, name) for name in os.listdir(quarantine)]

    def test_verify_sweeps_expired_quarantine(self, tmp_path, monkeypatch):
        monkeypatch.setenv(QUARANTINE_TTL_ENV_VAR, "3600")
        store = local_store(tmp_path)
        files = self._quarantine_one(store)
        assert store.verify() == []
        assert all(os.path.exists(path) for path in files)  # fresh: kept
        for path in files:
            os.utime(path, (1.0, 1.0))  # backdate past any TTL
        assert store.verify() == []
        assert not any(os.path.exists(path) for path in files)
        assert store.stats.quarantine_swept == len(files)
        # the per-kind quarantine directory is pruned once empty
        assert not os.path.isdir(os.path.join(store.root, ".quarantine", "result"))

    def test_prune_sweeps_quarantine_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv(QUARANTINE_TTL_ENV_VAR, "3600")
        store = local_store(tmp_path)
        files = self._quarantine_one(store)
        for path in files:
            os.utime(path, (1.0, 1.0))
        store.prune(10**9)  # capacity untouched, sweep still runs
        assert not any(os.path.exists(path) for path in files)
        assert store.stats.quarantine_swept == len(files)

    def test_invalid_ttl_rejected(self, monkeypatch, tmp_path):
        from repro.experiments.store import default_quarantine_ttl_s

        monkeypatch.setenv(QUARANTINE_TTL_ENV_VAR, "-5")
        with pytest.raises(ConfigurationError):
            default_quarantine_ttl_s()


# --------------------------------------------------------- session + prefetch
TINY_MODEL = ModelSpec(
    architecture="lenet5", dataset="mnist", n_train=64, n_test=32, epochs=1
)


def tiny_spec(**overrides):
    defaults = dict(
        name="backend-chaos",
        model=TINY_MODEL,
        victims=VictimSpec(multipliers=("M1", "M4"), calibration_samples=32),
        attacks=(AttackSpec(attack="FGM_linf"),),
        sweep=SweepSpec(epsilons=(0.0, 0.1), n_samples=8),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSessionPrefetch:
    def test_prefetch_warms_deterministically(self, tmp_path):
        """Drive the prefetch machinery directly (no thread race)."""
        shared = InMemoryBackend()
        seeder, _ = remote_store(tmp_path, shared, name="seed")
        spec = tiny_spec()
        Session(store=seeder, prefetch=False).run(spec)

        cold, _ = remote_store(tmp_path, shared, name="cold")
        session = Session(store=cold, prefetch=True)
        digest = spec.model.content_hash()
        session._prefetch([("model", digest)] + session._suite_keys(spec, spec.model))
        session.wait_for_prefetch()
        assert cold.stats.prefetched == 2  # model + the one suite
        assert cold.has("model", digest)
        trained = session.resolve_model(spec.model)
        assert trained is not None
        assert cold.stats.prefetch_hits == 1  # the warmed model was read

    def test_cold_cache_run_is_served_remotely(self, tmp_path):
        shared = InMemoryBackend()
        seeder, _ = remote_store(tmp_path, shared, name="seed")
        spec = tiny_spec()
        baseline = Session(store=seeder, prefetch=False).run(spec).to_dict()

        cold, _ = remote_store(tmp_path, shared, name="cold")
        session = Session(store=cold, prefetch=True)
        result = session.run(spec)
        session.wait_for_prefetch()
        assert result.from_cache  # the result artifact itself was remote
        assert result.to_dict() == baseline

        # with the result evicted the run goes stage-by-stage: model and
        # suite come from the remote (via prefetch or the read path — the
        # winner of that race is irrelevant to the served bytes)
        colder, _ = remote_store(tmp_path, shared, name="colder")
        colder.evict("result", spec.content_hash(), remote=True)
        session = Session(store=colder, prefetch=True)
        result = session.run(spec)
        session.wait_for_prefetch()
        assert not result.from_cache
        assert result.to_dict() == baseline
        assert colder.stats.remote_hits >= 2  # model + suite restored

    def test_prefetch_env_toggle(self, monkeypatch, tmp_path):
        from repro.experiments.session import PREFETCH_ENV_VAR

        shared = InMemoryBackend()
        store, _ = remote_store(tmp_path, shared)
        monkeypatch.setenv(PREFETCH_ENV_VAR, "0")
        assert not Session(store=store).prefetch
        monkeypatch.setenv(PREFETCH_ENV_VAR, "1")
        assert Session(store=store).prefetch
        monkeypatch.delenv(PREFETCH_ENV_VAR)
        assert Session(store=store).prefetch  # default: on with a remote
        assert not Session(store=local_store(tmp_path)).prefetch  # ...off without one


class TestSessionDegradationLadder:
    """The acceptance property: chaos mid-run, bit-identical completion."""

    def test_run_under_scripted_faults_matches_local_only(self, tmp_path):
        spec = tiny_spec()
        local = Session(store=str(tmp_path / "local"))
        baseline = local.run(spec).to_dict()

        chaos_backend = SimulatedRemoteBackend(name="chaos")
        store, _ = remote_store(tmp_path, chaos_backend, name="chaos")
        # error bursts + torn writes + corrupted reads across the run
        plan = [
            FaultRule(point="backend.put", index=1, count=2),
            FaultRule(point="backend.put", action="corrupt", index=4, corrupt_bytes=12),
            FaultRule(point="backend.get", index=0, count=2),
            FaultRule(point="backend.get", action="corrupt", index=3, corrupt_bytes=6),
            FaultRule(point="backend.head", index=2, count=2),
        ]
        with fault_plan(plan):
            session = Session(store=store, prefetch=False)
            result = session.run(spec)
        assert result.to_dict() == baseline
        # whatever chaos did, the local cache must audit clean afterwards
        assert store.verify() == []

    def test_breaker_trips_mid_run_heals_and_flushes(self, tmp_path):
        spec = tiny_spec()
        baseline = Session(store=str(tmp_path / "local")).run(spec).to_dict()

        backend = FlakyBackend()
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=30.0, probes=1, clock=clock)
        store, _ = remote_store(
            tmp_path, backend, name="chaos", breaker=breaker, clock=clock
        )

        def sever_after_first_store(event):
            # the partition starts the moment the trained model is stored:
            # every later upload in the run must journal, not fail the run
            if (event.stage, event.status) == ("model", "store"):
                backend.failing = True

        session = Session(
            store=store, progress=sever_after_first_store, prefetch=False
        )
        result = session.run(spec)
        assert result.to_dict() == baseline  # bit-identical despite the outage
        assert store.breaker.opened_total >= 1
        assert store.degraded
        pending = store.journal_pending()
        assert pending >= 2  # suite + result journaled during the outage
        backend.failing = False  # peek at the remote without tripping faults
        assert backend.head(f"result/{spec.content_hash()}.json") is None
        backend.failing = True

        # repeated runs while degraded are served from the local cache
        rerun = Session(store=store, prefetch=False).run(spec)
        assert rerun.from_cache
        assert rerun.to_dict() == baseline

        # heal: cooldown elapses, the flush probe closes the breaker and
        # every journaled artifact reaches the remote
        backend.failing = False
        clock.advance(31.0)
        assert store.flush_journal() == pending
        assert store.journal_pending() == 0
        assert not store.degraded
        assert store.breaker.closed_total >= 1
        assert backend.head(f"result/{spec.content_hash()}.json") is not None

        # a third host with an empty cache now restores the result remotely
        fresh, _ = remote_store(tmp_path, backend, name="fresh")
        restored = Session(store=fresh, prefetch=False).run(spec)
        assert restored.from_cache
        assert restored.to_dict() == baseline

    def test_degraded_miss_raises_only_under_require_cached(self, tmp_path):
        backend = FlakyBackend()
        backend.failing = True
        store, _ = remote_store(tmp_path, backend)
        for _ in range(2):
            assert store.get_json("result", OTHER) is None
        with pytest.raises(MissingArtifactError):
            store.get_json("result", OTHER)  # the opening failure
        assert store.degraded

        spec = tiny_spec()
        with pytest.raises(MissingArtifactError) as excinfo:
            Session(store=store, require_cached=True, prefetch=False).run(spec)
        assert excinfo.value.backend_degraded

        # without require_cached the session recomputes and completes
        result = Session(store=store, prefetch=False).run(spec)
        assert not result.from_cache
        assert store.journal_pending() >= 1
