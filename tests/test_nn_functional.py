"""Tests for repro.nn.functional (im2col / col2im / softmax helpers)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)


class TestConvOutputSize:
    def test_valid_convolution(self):
        assert conv_output_size(28, 5, 1, 0) == 24

    def test_same_convolution(self):
        assert conv_output_size(28, 3, 1, 1) == 28

    def test_strided(self):
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_rejects_too_small_input(self):
        with pytest.raises(ShapeError):
            conv_output_size(3, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.arange(2 * 6 * 6 * 3, dtype=np.float64).reshape(2, 6, 6, 3)
        cols = im2col(x, 3, 3, 1, 0)
        assert cols.shape == (2, 4, 4, 27)

    def test_identity_kernel_1x1(self):
        x = np.random.default_rng(0).random((2, 5, 5, 4))
        cols = im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols, x)

    def test_patch_content_matches_manual_slice(self):
        x = np.arange(1 * 4 * 4 * 1, dtype=np.float64).reshape(1, 4, 4, 1)
        cols = im2col(x, 2, 2, 1, 0)
        # patch at output position (1, 2) covers rows 1-2, cols 2-3
        expected = x[0, 1:3, 2:4, 0].reshape(-1)
        assert np.allclose(cols[0, 1, 2], expected)

    def test_padding_adds_zeros(self):
        x = np.ones((1, 2, 2, 1))
        cols = im2col(x, 3, 3, 1, 1)
        # the centre patch sees the whole image; corner entries are zero-padded
        assert cols.shape == (1, 2, 2, 9)
        assert cols[0, 0, 0, 0] == 0.0  # top-left of top-left patch is padding

    def test_stride(self):
        x = np.random.default_rng(1).random((1, 6, 6, 2))
        cols = im2col(x, 2, 2, 2, 0)
        assert cols.shape == (1, 3, 3, 8)

    def test_conv_via_im2col_matches_direct(self):
        rng = np.random.default_rng(2)
        x = rng.random((2, 5, 5, 3))
        w = rng.random((3, 3, 3, 4))
        cols = im2col(x, 3, 3, 1, 0)
        result = cols.reshape(-1, 27) @ w.reshape(27, 4)
        result = result.reshape(2, 3, 3, 4)
        # direct (slow) convolution
        expected = np.zeros_like(result)
        for n in range(2):
            for i in range(3):
                for j in range(3):
                    patch = x[n, i : i + 3, j : j + 3, :]
                    for f in range(4):
                        expected[n, i, j, f] = np.sum(patch * w[:, :, :, f])
        assert np.allclose(result, expected)

    def test_rejects_non_nhwc(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 3)), 2, 2, 1, 0)


class TestCol2Im:
    def test_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random tensors (adjoint test)
        rng = np.random.default_rng(3)
        x = rng.random((2, 6, 6, 3))
        cols_shape = im2col(x, 3, 3, 1, 1).shape
        y = rng.random(cols_shape)
        lhs = np.sum(im2col(x, 3, 3, 1, 1) * y)
        rhs = np.sum(x * col2im(y, x.shape, 3, 3, 1, 1))
        assert lhs == pytest.approx(rhs)

    def test_counts_overlaps(self):
        x_shape = (1, 3, 3, 1)
        cols = np.ones((1, 2, 2, 4))
        image = col2im(cols, x_shape, 2, 2, 1, 0)
        # centre pixel is covered by all four 2x2 patches
        assert image[0, 1, 1, 0] == 4.0
        assert image[0, 0, 0, 0] == 1.0

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            col2im(np.zeros((1, 2, 2, 5)), (1, 3, 3, 1), 2, 2, 1, 0)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(4).normal(size=(10, 7))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_invariant_to_constant_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_handles_large_values(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(5).normal(size=(4, 6))
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(
            encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=np.float64)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_rejects_matrix_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)
