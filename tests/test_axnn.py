"""Tests for the approximate inference engine (approx ops, layers, engine)."""

import numpy as np
import pytest

from repro.axnn import (
    AxConv2D,
    AxDense,
    AxModel,
    approx_dot_general,
    approx_matmul,
    build_axdnn,
    build_quantized_accurate,
    exact_matmul,
    quantize_weights_sign_magnitude,
)
from repro.axnn.layers import PassthroughLayer
from repro.errors import ConfigurationError, ShapeError
from repro.multipliers import get_multiplier
from repro.multipliers.behavioral import ExactMultiplier, OperandTruncationMultiplier
from repro.nn import Conv2D, Dense, Flatten, ReLU, Sequential
from repro.quantization.schemes import AffineQuantization

RNG = np.random.default_rng(0)


class TestWeightQuantization:
    def test_roundtrip_error_bounded(self):
        weights = RNG.normal(scale=0.2, size=(20, 10))
        sign, magnitude, scale = quantize_weights_sign_magnitude(weights)
        recovered = sign * magnitude * scale
        assert np.abs(recovered - weights).max() <= scale / 2 + 1e-12

    def test_magnitude_range(self):
        weights = RNG.normal(size=(50, 5))
        _, magnitude, _ = quantize_weights_sign_magnitude(weights, bits=8)
        assert magnitude.min() >= 0
        assert magnitude.max() <= 255

    def test_sign_values(self):
        sign, _, _ = quantize_weights_sign_magnitude(np.array([[-1.0, 0.0, 1.0]]))
        assert set(np.unique(sign)).issubset({-1, 0, 1})

    def test_zero_weights(self):
        sign, magnitude, scale = quantize_weights_sign_magnitude(np.zeros((3, 3)))
        assert not np.any(magnitude)
        assert scale > 0


class TestApproxMatmul:
    def test_exact_lut_matches_integer_matmul(self):
        multiplier = ExactMultiplier()
        a = RNG.integers(0, 256, size=(7, 12))
        w = RNG.integers(-255, 256, size=(12, 5))
        sign, magnitude = np.sign(w), np.abs(w)
        via_lut = approx_matmul(a, sign, magnitude, multiplier.lut())
        assert np.array_equal(via_lut, a @ w)

    def test_exact_fastpath_matches_lut_path(self):
        a = RNG.integers(0, 256, size=(4, 9))
        w = RNG.integers(-255, 256, size=(9, 3))
        sign, magnitude = np.sign(w), np.abs(w)
        assert np.array_equal(
            exact_matmul(a, sign, magnitude),
            approx_matmul(a, sign, magnitude, ExactMultiplier().lut()),
        )

    def test_chunking_does_not_change_result(self):
        multiplier = ExactMultiplier()
        a = RNG.integers(0, 256, size=(40, 16))
        w = RNG.integers(-255, 256, size=(16, 8))
        sign, magnitude = np.sign(w), np.abs(w)
        full = approx_matmul(a, sign, magnitude, multiplier.lut())
        chunked = approx_matmul(a, sign, magnitude, multiplier.lut(), chunk_elements=64)
        assert np.array_equal(full, chunked)

    def test_approximate_multiplier_changes_products(self):
        multiplier = OperandTruncationMultiplier("t33", 3, 3)
        a = RNG.integers(0, 256, size=(6, 20))
        w = RNG.integers(-255, 256, size=(20, 4))
        sign, magnitude = np.sign(w), np.abs(w)
        approx = approx_matmul(a, sign, magnitude, multiplier.lut())
        assert not np.array_equal(approx, a @ w)

    def test_zero_point_correction(self):
        multiplier = ExactMultiplier()
        a = RNG.integers(0, 256, size=(5, 8))
        w = RNG.integers(-255, 256, size=(8, 3))
        sign, magnitude = np.sign(w), np.abs(w)
        zero_point = 7
        corrected = approx_dot_general(a, sign, magnitude, multiplier, zero_point)
        assert np.array_equal(corrected, (a - zero_point) @ w)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            approx_matmul(
                np.zeros((2, 3), dtype=int),
                np.zeros((4, 2), dtype=int),
                np.zeros((4, 2), dtype=int),
                ExactMultiplier().lut(),
            )


class TestAxLayers:
    def _dense_pair(self):
        layer = Dense(4)
        layer.build((6,), np.random.default_rng(0))
        scheme = AffineQuantization(scale=1.0 / 255.0, zero_point=0, bits=8)
        return layer, scheme

    def test_axdense_close_to_float_with_exact_multiplier(self):
        layer, scheme = self._dense_pair()
        ax = AxDense(layer, ExactMultiplier(), scheme)
        x = RNG.random((5, 6))
        float_out = layer.forward(x)
        ax_out = ax.forward(x)
        assert np.abs(float_out - ax_out).max() < 0.05

    def test_axdense_rejects_bad_rank(self):
        layer, scheme = self._dense_pair()
        ax = AxDense(layer, ExactMultiplier(), scheme)
        with pytest.raises(ShapeError):
            ax.forward(np.zeros((2, 3, 2)))

    def test_axconv_close_to_float_with_exact_multiplier(self):
        conv = Conv2D(3, kernel_size=3)
        conv.build((6, 6, 2), np.random.default_rng(0))
        scheme = AffineQuantization(scale=1.0 / 255.0, zero_point=0, bits=8)
        ax = AxConv2D(conv, ExactMultiplier(), scheme)
        x = RNG.random((2, 6, 6, 2))
        assert np.abs(conv.forward(x) - ax.forward(x)).max() < 0.1

    def test_axconv_preserves_geometry(self):
        conv = Conv2D(5, kernel_size=3, stride=2, padding="same")
        conv.build((8, 8, 3), np.random.default_rng(0))
        scheme = AffineQuantization(scale=1.0 / 255.0, zero_point=0, bits=8)
        ax = AxConv2D(conv, ExactMultiplier(), scheme)
        x = RNG.random((2, 8, 8, 3))
        assert ax.forward(x).shape == conv.forward(x).shape

    def test_passthrough_wraps_float_layer(self):
        relu = ReLU()
        wrapped = PassthroughLayer(relu)
        x = RNG.normal(size=(3, 4))
        assert np.array_equal(wrapped.forward(x), np.maximum(x, 0.0))


class TestEngine:
    def test_quantized_accurate_close_to_float(self, tiny_cnn, mnist_small, calibration_batch):
        quantized = build_quantized_accurate(tiny_cnn, calibration_batch)
        x = mnist_small.test.images[:40]
        y = mnist_small.test.labels[:40]
        float_acc = np.mean(tiny_cnn.predict_classes(x) == y)
        quant_acc = quantized.accuracy(x, y)
        assert abs(float_acc - quant_acc) <= 0.1

    def test_low_error_axdnn_close_to_quantized(self, tiny_cnn, mnist_small, calibration_batch):
        ax = build_axdnn(tiny_cnn, "M2", calibration_batch)
        quantized = build_quantized_accurate(tiny_cnn, calibration_batch)
        x = mnist_small.test.images[:40]
        y = mnist_small.test.labels[:40]
        assert abs(ax.accuracy(x, y) - quantized.accuracy(x, y)) <= 0.1

    def test_high_error_axdnn_degrades(self, tiny_cnn, mnist_small, calibration_batch, approx_tiny_m8):
        quantized = build_quantized_accurate(tiny_cnn, calibration_batch)
        x = mnist_small.test.images[:60]
        y = mnist_small.test.labels[:60]
        assert approx_tiny_m8.accuracy(x, y) <= quantized.accuracy(x, y) + 0.05

    def test_accepts_multiplier_instances_and_labels(self, tiny_cnn, calibration_batch):
        by_label = build_axdnn(tiny_cnn, "M4", calibration_batch)
        by_instance = build_axdnn(tiny_cnn, get_multiplier("M4"), calibration_batch)
        assert by_label.multiplier.name == by_instance.multiplier.name

    def test_compute_layers_replaced(self, tiny_cnn, calibration_batch):
        ax = build_axdnn(tiny_cnn, "M4", calibration_batch)
        n_compute_float = sum(
            isinstance(l, (Conv2D, Dense)) for l in tiny_cnn.layers
        )
        assert len(ax.compute_layers()) == n_compute_float
        assert len(ax.layers) == len(tiny_cnn.layers)

    def test_convolution_only_mode_keeps_dense_exact(self, tiny_cnn, calibration_batch):
        ax = build_axdnn(tiny_cnn, "M8", calibration_batch, convolution_only=True)
        dense_layers = [l for l in ax.compute_layers() if isinstance(l, AxDense)]
        conv_layers = [l for l in ax.compute_layers() if isinstance(l, AxConv2D)]
        assert all(l.multiplier.is_exact() for l in dense_layers)
        assert all(not l.multiplier.is_exact() for l in conv_layers)

    def test_per_layer_override(self, tiny_cnn, calibration_batch):
        first_conv = next(l for l in tiny_cnn.layers if isinstance(l, Conv2D))
        ax = build_axdnn(
            tiny_cnn,
            "M1",
            calibration_batch,
            per_layer_multipliers={first_conv.name: "M8"},
        )
        ax_first = next(l for l in ax.compute_layers() if l.name == f"ax_{first_conv.name}")
        assert not ax_first.multiplier.is_exact()

    def test_predict_batching_consistent(self, approx_tiny_m8, mnist_small):
        x = mnist_small.test.images[:30]
        a = approx_tiny_m8.predict(x, batch_size=7)
        b = approx_tiny_m8.predict(x, batch_size=30)
        assert np.allclose(a, b)

    def test_accuracy_percent_scaling(self, quantized_tiny, mnist_small):
        x = mnist_small.test.images[:20]
        y = mnist_small.test.labels[:20]
        assert quantized_tiny.accuracy_percent(x, y) == pytest.approx(
            quantized_tiny.accuracy(x, y) * 100.0
        )

    def test_requires_calibration_data(self, tiny_cnn):
        with pytest.raises(ConfigurationError):
            build_axdnn(tiny_cnn, "M1", np.empty((0, 28, 28, 1)))

    def test_axmodel_repr_mentions_multiplier(self, approx_tiny_m8):
        assert "mul8u" in repr(approx_tiny_m8)
        assert isinstance(approx_tiny_m8, AxModel)
