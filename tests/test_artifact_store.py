"""Tests for the content-addressed artifact store."""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import ArtifactStore, default_store_root
from repro.experiments.store import STORE_ENV_VAR

DIGEST = "a" * 64
OTHER = "b" * 64


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        assert default_store_root() == str(tmp_path / "env-store")
        store = ArtifactStore()
        assert store.root == str(tmp_path / "env-store")

    def test_default_root_under_home(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert default_store_root().endswith(os.path.join(".cache", "repro"))


class TestArrays:
    def test_miss_then_hit(self, store):
        assert store.get_arrays("model", DIGEST) is None
        assert store.stats.misses == 1
        store.put_arrays("model", DIGEST, {"w": np.arange(4.0)})
        assert store.has("model", DIGEST)
        arrays = store.get_arrays("model", DIGEST)
        assert store.stats.hits == 1
        np.testing.assert_array_equal(arrays["w"], np.arange(4.0))

    def test_arrays_round_trip_bitexact(self, store):
        payload = {
            "f64": np.random.default_rng(0).normal(size=(3, 5)),
            "i64": np.arange(7, dtype=np.int64),
        }
        store.put_arrays("suite", DIGEST, payload)
        arrays = store.get_arrays("suite", DIGEST)
        for key, value in payload.items():
            np.testing.assert_array_equal(arrays[key], value)
            assert arrays[key].dtype == value.dtype

    def test_empty_arrays_rejected(self, store):
        with pytest.raises(ConfigurationError, match="at least one array"):
            store.put_arrays("model", DIGEST, {})

    def test_corrupt_entry_is_a_miss_and_self_heals(self, store):
        path = store.put_arrays("model", DIGEST, {"w": np.ones(2)})
        with open(path, "wb") as handle:
            handle.write(b"not a zip archive")
        if store.remote is not None:
            # the write-through remote holds a clean copy: the corrupt
            # local entry is quarantined and restored in one read
            arrays = store.get_arrays("model", DIGEST)
            np.testing.assert_array_equal(arrays["w"], np.ones(2))
            assert store.has("model", DIGEST)
        else:
            assert store.get_arrays("model", DIGEST) is None
            assert not store.has("model", DIGEST)

    def test_truncated_zip_entry_is_a_miss(self, store):
        # a payload truncated after the zip magic raises BadZipFile inside
        # np.load — it must read as a miss, not crash the session
        path = store.put_arrays("model", DIGEST, {"w": np.ones(64)})
        with open(path, "rb") as handle:
            intact = handle.read()
        with open(path, "wb") as handle:
            handle.write(intact[:20])
        if store.remote is not None:
            arrays = store.get_arrays("model", DIGEST)
            np.testing.assert_array_equal(arrays["w"], np.ones(64))
        else:
            assert store.get_arrays("model", DIGEST) is None
            assert not store.has("model", DIGEST)


class TestJson:
    def test_round_trip(self, store):
        payload = {"grids": [{"values": [[1.0, 2.0]]}], "n": 3}
        store.put_json("result", DIGEST, payload, meta={"spec": "tiny"})
        assert store.get_json("result", DIGEST) == payload
        meta = store.get_meta("result", DIGEST)
        assert meta["meta"] == {"spec": "tiny"}
        assert meta["digest"] == DIGEST

    def test_miss(self, store):
        assert store.get_json("result", DIGEST) is None


class TestKeys:
    def test_bad_kind_rejected(self, store):
        with pytest.raises(ConfigurationError, match="kind"):
            store.has("../escape", DIGEST)

    def test_bad_digest_rejected(self, store):
        with pytest.raises(ConfigurationError, match="digest"):
            store.has("model", "ZZZZZZZZZZ")
        with pytest.raises(ConfigurationError, match="digest"):
            store.has("model", "abc")  # too short

    def test_kinds_are_namespaced(self, store):
        store.put_json("result", DIGEST, {"a": 1})
        assert store.get_json("other", DIGEST) is None


class TestEviction:
    def test_evict(self, store):
        store.put_arrays("model", DIGEST, {"w": np.ones(2)}, meta={"m": 1})
        assert store.evict("model", DIGEST)
        assert not store.has("model", DIGEST)
        assert store.get_meta("model", DIGEST) is None
        assert store.stats.evictions == 1
        assert not store.evict("model", DIGEST)

    def test_clear(self, store):
        store.put_arrays("model", DIGEST, {"w": np.ones(2)})
        store.put_json("result", OTHER, {"a": 1})
        assert store.clear() == 2
        assert store.entries() == []

    def test_entries_and_size(self, store):
        store.put_arrays("model", DIGEST, {"w": np.ones(8)})
        store.put_json("result", OTHER, {"a": 1})
        entries = store.entries()
        assert {(entry.kind, entry.digest) for entry in entries} == {
            ("model", DIGEST),
            ("result", OTHER),
        }
        assert store.size_bytes() == sum(entry.size_bytes for entry in entries)

    def test_prune_evicts_oldest_first(self, store):
        store.put_arrays("model", DIGEST, {"w": np.ones(64)})
        path = store.put_arrays("model", OTHER, {"w": np.ones(64)})
        # make the second entry strictly newer regardless of fs timestamp
        # granularity
        first = store._path("model", DIGEST, ".npz")
        os.utime(first, (1, 1))
        evicted = store.prune(os.path.getsize(path))
        assert [entry.digest for entry in evicted] == [DIGEST]
        assert store.has("model", OTHER)
        assert not store.has("model", DIGEST)

    def test_prune_zero_empties_store(self, store):
        store.put_json("result", DIGEST, {"a": 1})
        store.prune(0)
        assert store.entries() == []

    def test_prune_negative_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.prune(-1)
