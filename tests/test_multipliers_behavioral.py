"""Tests for the behavioural approximate-multiplier families."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multipliers.behavioral import (
    BrokenCarryMultiplier,
    DrumMultiplier,
    ExactMultiplier,
    LowerColumnOrMultiplier,
    MitchellLogMultiplier,
    NoisyLSBMultiplier,
    OperandTruncationMultiplier,
    PartialProductTruncationMultiplier,
)


def _exhaustive_pairs():
    return np.meshgrid(np.arange(256), np.arange(256), indexing="ij")


class TestOperandTruncation:
    def test_zero_truncation_is_exact(self):
        m = OperandTruncationMultiplier("t00", 0, 0)
        assert m.is_exact()

    def test_truncation_masks_low_bits(self):
        m = OperandTruncationMultiplier("t21", 2, 1)
        assert m.multiply(np.array([7]), np.array([5]))[0] == (7 & ~3) * (5 & ~1)

    def test_never_overestimates(self):
        m = OperandTruncationMultiplier("t22", 2, 2)
        assert np.all(m.error_lut() <= 0)

    def test_error_grows_with_truncation(self):
        small = np.abs(OperandTruncationMultiplier("s", 1, 1).error_lut()).mean()
        large = np.abs(OperandTruncationMultiplier("l", 3, 3).error_lut()).mean()
        assert large > small

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            OperandTruncationMultiplier("bad", 8, 0)


class TestPartialProductTruncation:
    def test_zero_cut_is_exact(self):
        assert PartialProductTruncationMultiplier("p0", 0).is_exact()

    def test_full_cut_is_zero(self):
        m = PartialProductTruncationMultiplier("pall", 16)
        assert not np.any(m.lut())

    def test_never_overestimates(self):
        m = PartialProductTruncationMultiplier("p4", 4)
        assert np.all(m.error_lut() <= 0)

    def test_error_bounded_by_cut_columns(self):
        cut = 5
        m = PartialProductTruncationMultiplier("p5", cut)
        # the dropped value is at most the sum of all bits in the cut columns
        a, b = _exhaustive_pairs()
        max_dropped = sum((min(j + 1, 8)) * (1 << j) for j in range(cut))
        assert np.abs(m.error_lut()).max() <= max_dropped

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            PartialProductTruncationMultiplier("bad", 17)


class TestLowerColumnOr:
    def test_zero_cut_is_exact(self):
        assert LowerColumnOrMultiplier("o0", 0).is_exact()

    def test_never_overestimates(self):
        # OR of column bits is <= their sum
        m = LowerColumnOrMultiplier("o8", 8)
        assert np.all(m.error_lut() <= 0)

    def test_exact_when_columns_sparse(self):
        m = LowerColumnOrMultiplier("o8b", 8)
        # powers of two have a single partial product per column
        assert m.multiply(np.array([16]), np.array([8]))[0] == 128


class TestBrokenCarry:
    def test_low_segment_has_small_errors(self):
        # with a low cut the dropped carries are frequent but light-weight
        m = BrokenCarryMultiplier("bc9", 9)
        assert np.abs(m.error_lut()).mean() < 0.02 * m.product_max

    def test_errors_are_multiples_of_segment_weight(self):
        segment = 8
        m = BrokenCarryMultiplier("bc8", segment)
        errors = np.unique(m.error_lut())
        assert np.all(errors % (1 << segment) == 0)

    def test_never_overestimates(self):
        m = BrokenCarryMultiplier("bc9", 9)
        assert np.all(m.error_lut() <= 0)

    def test_rejects_bad_segment(self):
        with pytest.raises(ConfigurationError):
            BrokenCarryMultiplier("bad", 0)


class TestMitchellLog:
    def test_zero_operands_exact(self):
        m = MitchellLogMultiplier()
        assert m.multiply(np.array([0]), np.array([123]))[0] == 0

    def test_powers_of_two_exact(self):
        m = MitchellLogMultiplier()
        a = np.array([1, 2, 4, 8, 16, 32, 64, 128])
        b = np.array([2, 4, 8, 16, 2, 4, 2, 2])
        assert np.array_equal(m.multiply(a, b), a * b)

    def test_never_overestimates(self):
        m = MitchellLogMultiplier()
        assert np.all(m.error_lut() <= 0)

    def test_relative_error_bounded(self):
        # Mitchell's worst-case relative error is about 11.1%
        m = MitchellLogMultiplier()
        exact = m.exact_lut().astype(np.float64)
        error = np.abs(m.error_lut().astype(np.float64))
        mask = exact > 0
        assert (error[mask] / exact[mask]).max() < 0.13


class TestDrum:
    def test_large_k_is_exact(self):
        assert DrumMultiplier("d8", k=8).is_exact()

    def test_small_operands_exact(self):
        m = DrumMultiplier("d4", k=4)
        a, b = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        assert np.array_equal(m.multiply(a, b), a * b)

    def test_roughly_unbiased(self):
        m = DrumMultiplier("d4b", k=4)
        bias = m.error_lut().astype(np.float64).mean() / m.product_max
        assert abs(bias) < 0.01

    def test_relative_error_bounded(self):
        # per-operand error of DRUM-4 is ~12.5%, so the product error stays
        # below ~28%
        m = DrumMultiplier("d4c", k=4)
        exact = m.exact_lut().astype(np.float64)
        error = np.abs(m.error_lut().astype(np.float64))
        mask = exact > 0
        assert (error[mask] / exact[mask]).max() < 0.28

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            DrumMultiplier("bad", k=1)


class TestNoisyLSB:
    def test_deterministic(self):
        a = NoisyLSBMultiplier("n1", max_error=64)
        b = NoisyLSBMultiplier("n2", max_error=64)
        assert np.array_equal(a.lut(), b.lut())

    def test_zero_operands_exact(self):
        m = NoisyLSBMultiplier("n3", max_error=64)
        assert m.multiply(np.array([0]), np.array([200]))[0] == 0
        assert m.multiply(np.array([200]), np.array([0]))[0] == 0

    def test_error_bounded(self):
        m = NoisyLSBMultiplier("n4", max_error=64)
        assert np.abs(m.error_lut()).max() <= 64

    def test_nonnegative_products(self):
        m = NoisyLSBMultiplier("n5", max_error=200)
        assert m.lut().min() >= 0

    def test_seed_changes_pattern(self):
        a = NoisyLSBMultiplier("n6", max_error=64, seed=1)
        b = NoisyLSBMultiplier("n7", max_error=64, seed=2)
        assert not np.array_equal(a.lut(), b.lut())

    def test_rejects_bad_max_error(self):
        with pytest.raises(ConfigurationError):
            NoisyLSBMultiplier("bad", max_error=0)


class TestExactReference:
    def test_exact_multiplier_name_default(self):
        assert ExactMultiplier().name == "exact"
