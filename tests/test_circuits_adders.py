"""Tests for the one-bit adder cells."""

import numpy as np
import pytest

from repro.circuits.adders import (
    ADDER_CELLS,
    ApproximateMirrorAdder1,
    ApproximateMirrorAdder2,
    ApproximateMirrorAdder3,
    ApproximateMirrorAdder4,
    ApproximateMirrorAdder5,
    ExactFullAdder,
    LowerOrCell,
    get_adder_cell,
)


class TestExactFullAdder:
    def test_truth_table_sums(self):
        table = ExactFullAdder().truth_table()
        for a, b, cin, s, cout in table:
            assert a + b + cin == s + 2 * cout

    def test_no_errors(self):
        assert ExactFullAdder().error_count() == (0, 0)

    def test_vectorised(self):
        adder = ExactFullAdder()
        a = np.array([0, 1, 1, 1])
        b = np.array([0, 1, 0, 1])
        cin = np.array([0, 1, 1, 0])
        s, cout = adder.add(a, b, cin)
        assert np.array_equal(s + 2 * cout, a + b + cin)


class TestApproximateAdders:
    def test_ama1_errors(self):
        sum_errors, carry_errors = ApproximateMirrorAdder1().error_count()
        assert sum_errors == 2
        assert carry_errors == 0

    def test_ama1_carry_is_exact(self):
        exact = ExactFullAdder().truth_table()
        approx = ApproximateMirrorAdder1().truth_table()
        assert np.array_equal(exact[:, 4], approx[:, 4])

    def test_ama2_errors(self):
        sum_errors, carry_errors = ApproximateMirrorAdder2().error_count()
        assert sum_errors == 4
        assert carry_errors == 2

    def test_ama3_errors(self):
        sum_errors, carry_errors = ApproximateMirrorAdder3().error_count()
        assert sum_errors == 4
        assert carry_errors == 2

    def test_ama4_ignores_carry_in(self):
        adder = ApproximateMirrorAdder4()
        s0, c0 = adder.add(np.array([1]), np.array([0]), np.array([0]))
        s1, c1 = adder.add(np.array([1]), np.array([0]), np.array([1]))
        assert int(s0[0]) == int(s1[0])
        assert int(c0[0]) == int(c1[0])

    def test_ama5_single_carry_error(self):
        sum_errors, carry_errors = ApproximateMirrorAdder5().error_count()
        assert sum_errors == 0
        assert carry_errors == 1

    def test_lower_or_never_carries(self):
        table = LowerOrCell().truth_table()
        assert np.all(table[:, 4] == 0)

    def test_lower_or_sum_is_or(self):
        table = LowerOrCell().truth_table()
        for a, b, _cin, s, _cout in table:
            assert s == (a | b)

    @pytest.mark.parametrize("name", sorted(ADDER_CELLS))
    def test_outputs_are_bits(self, name):
        table = ADDER_CELLS[name].truth_table()
        assert set(np.unique(table[:, 3:])).issubset({0, 1})


class TestRegistry:
    def test_registry_contains_exact(self):
        assert "exact" in ADDER_CELLS

    def test_registry_has_all_ama_variants(self):
        for variant in ("ama1", "ama2", "ama3", "ama4", "ama5"):
            assert variant in ADDER_CELLS

    def test_get_adder_cell(self):
        assert isinstance(get_adder_cell("ama2"), ApproximateMirrorAdder2)

    def test_get_adder_cell_unknown(self):
        with pytest.raises(KeyError):
            get_adder_cell("does-not-exist")
