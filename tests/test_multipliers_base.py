"""Tests for the Multiplier base classes and LUT machinery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multipliers.base import CircuitMultiplier, LUTMultiplier, Multiplier
from repro.multipliers.behavioral import ExactMultiplier, OperandTruncationMultiplier


class TestExactMultiplier:
    def test_multiply_matches_numpy(self):
        m = ExactMultiplier()
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, size=100)
        b = rng.integers(0, 256, size=100)
        assert np.array_equal(m.multiply(a, b), a * b)

    def test_is_exact(self):
        assert ExactMultiplier().is_exact()

    def test_lut_shape_and_dtype(self):
        lut = ExactMultiplier().lut()
        assert lut.shape == (256, 256)
        assert lut.dtype == np.int32

    def test_lut_matches_exact_lut(self):
        m = ExactMultiplier()
        assert np.array_equal(m.lut(), m.exact_lut())

    def test_error_lut_all_zero(self):
        assert not np.any(ExactMultiplier().error_lut())

    def test_callable(self):
        m = ExactMultiplier()
        assert m(np.array([3]), np.array([4]))[0] == 12

    def test_operand_and_product_max(self):
        m = ExactMultiplier()
        assert m.operand_max == 255
        assert m.product_max == 255 * 255

    def test_smaller_bit_width(self):
        m = ExactMultiplier("exact4", bit_width=4)
        assert m.lut().shape == (16, 16)

    def test_lut_cache_reused(self):
        m = ExactMultiplier()
        assert m.lut() is m.lut()

    def test_clear_cache_reattaches_shared_lut(self):
        # clear_cache drops the instance reference only; the process-wide
        # cache keeps the table, so the next lut() call re-attaches it.
        m = ExactMultiplier()
        first = m.lut()
        m.clear_cache()
        assert m.lut() is first

    def test_global_clear_forces_rebuild(self):
        from repro.multipliers.base import clear_global_lut_cache

        m = ExactMultiplier()
        first = m.lut()
        m.clear_cache()
        clear_global_lut_cache()
        rebuilt = m.lut()
        assert rebuilt is not first
        assert np.array_equal(rebuilt, first)


class TestValidation:
    def test_rejects_negative_operands(self):
        with pytest.raises(ConfigurationError):
            ExactMultiplier().multiply(np.array([-1]), np.array([2]))

    def test_rejects_out_of_range_operands(self):
        with pytest.raises(ConfigurationError):
            ExactMultiplier().multiply(np.array([256]), np.array([2]))

    def test_rejects_huge_bit_width(self):
        with pytest.raises(ConfigurationError):
            ExactMultiplier("too-big", bit_width=13)


class TestLUTMultiplier:
    def test_from_exact_table(self):
        table = ExactMultiplier().lut()
        m = LUTMultiplier("from-table", table)
        assert m.bit_width == 8
        assert m.is_exact()

    def test_lookup_values(self):
        table = np.arange(16).reshape(4, 4)
        m = LUTMultiplier("tiny", table)
        assert m.multiply(np.array([2]), np.array([3]))[0] == 11

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            LUTMultiplier("bad", np.zeros((4, 8)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            LUTMultiplier("bad", np.zeros((6, 6)))


class TestCircuitMultiplier:
    def test_wraps_circuit(self):
        from repro.circuits.array_multiplier import ArrayMultiplierCircuit

        m = CircuitMultiplier("wrapped", ArrayMultiplierCircuit(width=8))
        assert m.is_exact()

    def test_rejects_width_mismatch(self):
        from repro.circuits.array_multiplier import ArrayMultiplierCircuit

        with pytest.raises(ConfigurationError):
            CircuitMultiplier("bad", ArrayMultiplierCircuit(width=4), bit_width=8)


class TestApproximateInvariants:
    def test_truncation_never_overestimates(self):
        m = OperandTruncationMultiplier("t", 2, 2)
        assert np.all(m.error_lut() <= 0)

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Multiplier("abstract")  # type: ignore[abstract]
